"""Fleet-facing client: routes by content address, survives dead shards.

:class:`ClusterClient` holds one blocking :class:`~repro.serve.client.
ServeClient` connection per shard (opened lazily, reopened after
failures) and routes every operation by the job's content address —
computed client-side with the *same* keyer the schedulers use, so client,
gateway and every shard agree on placement with no coordination.

Failover is health-probe driven re-execution, not state migration: when
the primary for a key is unreachable, the client marks it down, probes,
and retries on the next shard in the key's preference order.  Because
job ids are content addresses and every executor is deterministic, the
replica re-executes the point and returns the byte-identical record the
dead shard would have produced — the fleet changes *where* a point runs,
never its physics.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.cluster.ring import HashRing
from repro.serve.client import ServeClient, ServeError
from repro.serve.jobs import make_point
from repro.sweep.cache import SweepCache, code_fingerprint

#: Submit specs remembered for resubmit-on-failover, per client (bounded
#: so a long-lived gateway cannot grow without limit).
MAX_SPEC_MEMO = 65536


class ShardDown(ConnectionError):
    """A shard was unreachable (connect refused, reset, or timed out)."""


class ClusterDown(ConnectionError):
    """Every shard in a key's preference list is unreachable."""


@dataclass(frozen=True)
class ShardSpec:
    """Address of one ``repro.serve`` instance in the fleet."""

    id: str
    host: str
    port: int

    @staticmethod
    def from_ready_file(path) -> "ShardSpec":
        """The shard a ``--ready-file`` announced (id defaults to host:port)."""
        address = json.loads(Path(path).read_text())
        return ShardSpec(
            id=address.get("shard") or f"{address['host']}:{address['port']}",
            host=address["host"],
            port=address["port"],
        )


class ClusterClient:
    """Blocking fan-out client for a fleet of ``repro.serve`` shards."""

    def __init__(
        self,
        shards: Sequence[ShardSpec],
        replicas: int = 2,
        timeout: float = 60.0,
        keyer: Optional[SweepCache] = None,
    ) -> None:
        self.shards = {spec.id: spec for spec in shards}
        if len(self.shards) != len(shards):
            raise ValueError(f"duplicate shard ids: {[s.id for s in shards]}")
        self.ring = HashRing(list(self.shards))
        self.replicas = max(1, int(replicas))
        self.timeout = timeout
        self._keyer = keyer or SweepCache(
            Path("."), code_hash=code_fingerprint()
        )
        self._conns: Dict[str, ServeClient] = {}
        self._down: set = set()
        self._specs: Dict[str, Dict[str, Any]] = {}

    # -- placement -------------------------------------------------------------
    def key_for(
        self,
        kind: str,
        params: Optional[Dict[str, Any]] = None,
        seed: Optional[int] = None,
    ) -> str:
        """The job's content address — identical to every scheduler's."""
        return self._keyer.key(make_point(kind, params, seed))

    def owners(self, key: str) -> List[str]:
        """The key's preference list (primary first, then replicas)."""
        return self.ring.owners(key, self.replicas)

    # -- connections -----------------------------------------------------------
    def _conn(self, shard_id: str) -> ServeClient:
        conn = self._conns.get(shard_id)
        if conn is not None:
            return conn
        spec = self.shards[shard_id]
        try:
            conn = ServeClient(spec.host, spec.port, timeout=self.timeout)
        except (ConnectionError, OSError) as exc:
            self._mark_down(shard_id)
            raise ShardDown(f"shard {shard_id} unreachable: {exc}") from exc
        self._conns[shard_id] = conn
        self._down.discard(shard_id)
        return conn

    def _mark_down(self, shard_id: str) -> None:
        self._down.add(shard_id)
        conn = self._conns.pop(shard_id, None)
        if conn is not None:
            try:
                conn.close()
            except OSError:  # pragma: no cover - best-effort teardown
                pass

    def probe(self, shard_id: str) -> bool:
        """One fresh health round trip; revives the shard on success."""
        self._mark_down(shard_id)
        try:
            self._conn(shard_id).health()
        except (ShardDown, ConnectionError, OSError, ServeError):
            self._mark_down(shard_id)
            return False
        self._down.discard(shard_id)
        return True

    @property
    def down(self) -> List[str]:
        return sorted(self._down)

    # -- routed calls ----------------------------------------------------------
    def _route(self, key: str) -> List[str]:
        """Live shards to try for ``key``, probing the down ones if needed."""
        owners = self.owners(key)
        live = [s for s in owners if s not in self._down]
        if not live:
            live = [s for s in owners if self.probe(s)]
        if not live:
            raise ClusterDown(
                f"all shards for key {key[:16]}... are down: {owners}"
            )
        return live

    def _call(self, key: str, fn, attempts: Optional[int] = None) -> Tuple[str, Dict[str, Any]]:
        """Run ``fn(conn)`` on the key's first reachable owner.

        Returns ``(shard_id, response)``.  A transport-level failure marks
        the shard down and falls through to the next owner; protocol-level
        rejections (:class:`ServeError`) propagate untouched.
        """
        last: Optional[BaseException] = None
        for shard_id in list(self._route(key)):
            try:
                return shard_id, fn(self._conn(shard_id))
            except ShardDown as exc:
                last = exc
            except (ConnectionError, OSError) as exc:
                self._mark_down(shard_id)
                last = exc
        raise ClusterDown(
            f"no shard answered for key {key[:16]}...: {last}"
        ) from last

    # -- verbs ----------------------------------------------------------------
    def submit(
        self,
        kind: str,
        params: Optional[Dict[str, Any]] = None,
        seed: Optional[int] = None,
        priority: Optional[int] = None,
        client: Optional[str] = None,
    ) -> Dict[str, Any]:
        """Submit one point to its primary (or next live replica).

        The response carries the usual submit fields plus ``shard``, the
        id of the instance that accepted it.
        """
        key = self.key_for(kind, params, seed)
        self._memo(key, kind=kind, params=params, seed=seed, priority=priority,
                   client=client)
        shard_id, response = self._call(
            key,
            lambda conn: conn.submit(
                kind, params, seed=seed, priority=priority, client=client
            ),
        )
        response["shard"] = shard_id
        return response

    def _memo(self, key: str, **spec: Any) -> None:
        self._specs.pop(key, None)
        self._specs[key] = spec
        while len(self._specs) > MAX_SPEC_MEMO:
            del self._specs[next(iter(self._specs))]

    def result(
        self, job: str, wait: bool = True, timeout: Optional[float] = None
    ) -> Dict[str, Any]:
        """Fetch a job's record, failing over (and re-executing) as needed.

        If the shard holding the job dies mid-wait, the job is resubmitted
        on the next owner from the remembered spec — determinism makes the
        re-execution byte-identical.  Without a remembered spec a replica
        that never saw the job answers ``unknown_job``, which propagates.
        """

        def fetch(conn: ServeClient) -> Dict[str, Any]:
            try:
                return conn.result(job, wait=wait, timeout=timeout)
            except ServeError as exc:
                if exc.code == "unknown_job" and job in self._specs:
                    spec = self._specs[job]
                    conn.submit(
                        spec["kind"],
                        spec["params"],
                        seed=spec["seed"],
                        priority=spec["priority"],
                        client=spec["client"],
                    )
                    return conn.result(job, wait=wait, timeout=timeout)
                raise

        return self._call(job, fetch)[1]

    def submit_and_wait(
        self,
        kind: str,
        params: Optional[Dict[str, Any]] = None,
        seed: Optional[int] = None,
        priority: Optional[int] = None,
        client: Optional[str] = None,
        timeout: Optional[float] = None,
    ) -> Dict[str, Any]:
        """Submit and block for the record — the one-call happy path."""
        submitted = self.submit(
            kind, params, seed=seed, priority=priority, client=client
        )
        return self.result(submitted["job"], wait=True, timeout=timeout)[
            "record"
        ]

    def status(self, job: str) -> Dict[str, Any]:
        return self._call(job, lambda conn: conn.status(job))[1]

    def cancel(self, job: str) -> Dict[str, Any]:
        return self._call(job, lambda conn: conn.cancel(job))[1]

    # -- sweeps ----------------------------------------------------------------
    def run_points(
        self, points: Sequence, timeout: Optional[float] = None
    ) -> List[Dict[str, Any]]:
        """Fan a list of :class:`~repro.sweep.spec.SweepPoint` out, collect in order.

        Submits everything up front so all shards work concurrently, then
        collects records in point order (so the result is byte-identical
        to :func:`repro.sweep.runner.run_sweep` on the same points,
        shard deaths and failovers included).
        """
        jobs = [
            self.submit(point.kind, point.params, seed=point.seed)["job"]
            for point in points
        ]
        return [
            self.result(job, wait=True, timeout=timeout)["record"]
            for job in jobs
        ]

    def run_spec(self, spec, timeout: Optional[float] = None) -> List[Dict[str, Any]]:
        """All records of a :class:`~repro.sweep.spec.SweepSpec`, in point order."""
        return self.run_points(spec.points(), timeout=timeout)

    # -- fleet introspection -----------------------------------------------------
    def health(self) -> Dict[str, Any]:
        """Probe every shard; per-shard health plus an aggregate status."""
        shards: Dict[str, Any] = {}
        for shard_id in sorted(self.shards):
            try:
                if not self.probe(shard_id):
                    raise ShardDown(shard_id)
                shards[shard_id] = self._conn(shard_id).health()
            except (ShardDown, ConnectionError, OSError):
                self._mark_down(shard_id)
                shards[shard_id] = {"status": "down"}
        alive = sum(1 for body in shards.values() if body.get("status") == "ok")
        status = "ok" if alive == len(shards) else (
            "degraded" if alive else "down"
        )
        return {
            "status": status,
            "shards_total": len(shards),
            "shards_alive": alive,
            "shards": shards,
        }

    def metrics(self) -> Dict[str, Any]:
        """One fleet-wide snapshot: per-shard snapshots merged in id order.

        Down shards contribute nothing.  The merge is the deterministic
        :func:`repro.obs.merge_snapshots`, so the result validates like
        any single-instance snapshot.
        """
        from repro.obs import merge_snapshots

        snapshots = []
        for shard_id in sorted(self.shards):
            if shard_id in self._down and not self.probe(shard_id):
                continue
            try:
                snapshots.append(self._conn(shard_id).metrics())
            except (ShardDown, ConnectionError, OSError):
                self._mark_down(shard_id)
        return merge_snapshots(snapshots)

    # -- life cycle -----------------------------------------------------------
    def close(self) -> None:
        for shard_id in list(self._conns):
            conn = self._conns.pop(shard_id)
            try:
                conn.close()
            except OSError:  # pragma: no cover - best-effort teardown
                pass

    def __enter__(self) -> "ClusterClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
