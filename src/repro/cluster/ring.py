"""Consistent-hash ring over the content-addressed job-id space.

Job ids are already location-independent — they are the
:class:`~repro.sweep.cache.SweepCache` keys, ``sha256(code | kind |
params | seed)`` — so *any* shard can compute any job and produce the
byte-identical record.  The ring only decides which shard computes it
*first*, to maximize dedup/coalescing and cache locality: identical
submits from every gateway/client land on the same shard, and adding a
shard remaps only ``~1/N`` of the key space (classic consistent hashing
with virtual nodes).

Placement is derived purely from SHA-256 of shard ids and job keys, so
every client process agrees on the mapping with no coordination and no
dependence on ``PYTHONHASHSEED``.
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Dict, List, Sequence

#: Ring points per shard.  64 vnodes keeps the max/min key-share ratio of
#: small fleets near 1 while the ring stays a few hundred entries.
DEFAULT_VNODES = 64


def _position(label: str) -> int:
    """A point on the ``2**64`` ring for an arbitrary string label."""
    return int.from_bytes(
        hashlib.sha256(label.encode()).digest()[:8], "big"
    )


class HashRing:
    """Deterministic consistent-hash ring over named shards."""

    def __init__(self, shard_ids: Sequence[str], vnodes: int = DEFAULT_VNODES):
        ids = list(shard_ids)
        if not ids:
            raise ValueError("HashRing needs at least one shard id")
        if len(set(ids)) != len(ids):
            raise ValueError(f"duplicate shard ids: {ids}")
        self.shard_ids = ids
        self.vnodes = int(vnodes)
        points: List[tuple] = []
        for shard in ids:
            for vnode in range(self.vnodes):
                # The shard-id/vnode separator cannot appear in a vnode
                # index, so distinct (shard, vnode) pairs cannot collide
                # on the label even with adversarial shard names.
                points.append((_position(f"{shard}\x00{vnode}"), shard))
        points.sort()
        self._points = points
        self._positions = [p[0] for p in points]

    def owners(self, key: str, count: int = 1) -> List[str]:
        """The first ``count`` distinct shards clockwise from ``key``.

        ``owners(key, 1)[0]`` is the primary; the rest are the replica
        preference order a client walks when shards die.  ``count`` is
        clamped to the fleet size.
        """
        count = max(1, min(int(count), len(self.shard_ids)))
        start = bisect.bisect_right(self._positions, _position(key))
        owners: List[str] = []
        for offset in range(len(self._points)):
            shard = self._points[(start + offset) % len(self._points)][1]
            if shard not in owners:
                owners.append(shard)
                if len(owners) == count:
                    break
        return owners

    def primary(self, key: str) -> str:
        return self.owners(key, 1)[0]

    def shares(self, samples: int = 4096) -> Dict[str, float]:
        """Fraction of a deterministic key sample owned by each shard.

        A balance diagnostic (used by tests and ``repro.cluster``'s CLI
        banner), not a routing primitive.
        """
        counts = {shard: 0 for shard in self.shard_ids}
        for i in range(samples):
            counts[self.primary(f"sample-{i}")] += 1
        return {shard: counts[shard] / samples for shard in self.shard_ids}
