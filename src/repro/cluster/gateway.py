"""Asyncio HTTP/1.1 JSON gateway in front of the NDJSON-TCP fleet.

Browsers, curl and load balancers speak HTTP, the shards speak
newline-delimited JSON over TCP; this module is the translation layer —
stdlib only, one event loop, no threads per request.  Each HTTP request
maps to exactly one protocol verb:

====================================  =====================================
HTTP                                  NDJSON-TCP
====================================  =====================================
``POST /submit`` (JSON body)          ``{"op": "submit", ...}``
``GET /result/{id}?wait=1&timeout=N`` ``{"op": "result", ...}``
``GET /status/{id}``                  ``{"op": "status", ...}``
``POST /cancel/{id}``                 ``{"op": "cancel", ...}``
``GET /health``                       fleet-merged ``{"op": "health"}``
``GET /metrics``                      fleet-merged ``{"op": "metrics"}``
====================================  =====================================

Routing follows the same consistent-hash preference order as
:class:`~repro.cluster.client.ClusterClient` (the gateway computes job
keys with the shared keyer), with the same failover move: an unreachable
shard is marked down and the next owner tried; a replica that never saw
a job gets it resubmitted from the gateway's bounded spec memo, and
determinism makes the re-execution byte-identical.

Protocol error codes map onto HTTP status codes (`overloaded` → 503,
``rate_limited`` → 429, ``unknown_job`` → 404, ...); every response body
is the raw JSON the protocol layer produced, so an HTTP client sees
exactly what a TCP client would.
"""

from __future__ import annotations

import asyncio
import json
import threading
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple
from urllib.parse import parse_qs, urlsplit

from repro.cluster.client import MAX_SPEC_MEMO, ShardSpec
from repro.cluster.ring import HashRing
from repro.serve import protocol
from repro.serve.jobs import make_point
from repro.sweep.cache import SweepCache, code_fingerprint

#: Cap on one HTTP header line / body (reuses the NDJSON line budget).
MAX_BODY_BYTES = protocol.MAX_LINE_BYTES

#: Seconds allowed for connect + greeting on a shard connection.
CONNECT_TIMEOUT = 10.0

#: Slack added to a ``wait`` park before the gateway-side read deadline.
WAIT_SLACK = 15.0

#: HTTP status for each protocol error code (default 400).
STATUS_FOR_ERROR = {
    "bad_request": 400,
    "unknown_op": 400,
    "unknown_kind": 400,
    "unknown_job": 404,
    "not_cancellable": 409,
    "pending": 202,
    "failed": 500,
    "cancelled": 410,
    "timeout": 504,
    "overloaded": 503,
    "rate_limited": 429,
    "cluster_down": 503,
}


class _BadRequest(ValueError):
    """A malformed HTTP request (answered with a 400 and a JSON body)."""


class ClusterGateway:
    """One HTTP listening socket fronting a fleet of serve shards."""

    def __init__(
        self,
        shards: Sequence[ShardSpec],
        replicas: int = 2,
        host: str = "127.0.0.1",
        port: int = 0,
        keyer: Optional[SweepCache] = None,
        wait_cap: float = 300.0,
    ) -> None:
        self.shards = {spec.id: spec for spec in shards}
        if len(self.shards) != len(shards):
            raise ValueError(f"duplicate shard ids: {[s.id for s in shards]}")
        self.ring = HashRing(list(self.shards))
        self.replicas = max(1, int(replicas))
        self.host = host
        self.port = port
        self.wait_cap = float(wait_cap)
        self._keyer = keyer or SweepCache(
            Path("."), code_hash=code_fingerprint()
        )
        self._down: set = set()
        self._specs: Dict[str, Dict[str, Any]] = {}
        self._server: Optional[asyncio.base_events.Server] = None

    # -- life cycle -----------------------------------------------------------
    async def start(self) -> Tuple[str, int]:
        self._server = await asyncio.start_server(
            self._handle_connection,
            self.host,
            self.port,
            limit=MAX_BODY_BYTES,
        )
        sock = self._server.sockets[0]
        self.host, self.port = sock.getsockname()[:2]
        return self.host, self.port

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    # -- shard transport --------------------------------------------------------
    async def _shard_call(
        self,
        shard_id: str,
        message: Dict[str, Any],
        read_timeout: Optional[float],
    ) -> Dict[str, Any]:
        """One NDJSON round trip to ``shard_id`` on a fresh connection."""
        spec = self.shards[shard_id]
        reader, writer = await asyncio.wait_for(
            asyncio.open_connection(
                spec.host, spec.port, limit=protocol.MAX_LINE_BYTES
            ),
            timeout=CONNECT_TIMEOUT,
        )
        try:
            greeting = await asyncio.wait_for(
                reader.readline(), timeout=CONNECT_TIMEOUT
            )
            if not greeting:
                raise ConnectionError(f"shard {shard_id} closed on greeting")
            responses = []
            requests = message if isinstance(message, list) else [message]
            for request in requests:
                writer.write(protocol.encode_message(request))
            await writer.drain()
            for _request in requests:
                line = await asyncio.wait_for(
                    reader.readline(), timeout=read_timeout
                )
                if not line:
                    raise ConnectionError(f"shard {shard_id} closed mid-call")
                responses.append(protocol.decode_message(line))
            return responses[-1]
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover
                pass

    def mark_down(self, shard_id: str) -> None:
        """Tell the router a shard is gone (e.g. its process exited)."""
        self._down.add(shard_id)

    async def _probe(self, shard_id: str) -> bool:
        try:
            response = await self._shard_call(
                shard_id, {"op": "health"}, read_timeout=CONNECT_TIMEOUT
            )
        except (ConnectionError, OSError, asyncio.TimeoutError):
            self._down.add(shard_id)
            return False
        if response.get("ok"):
            self._down.discard(shard_id)
            return True
        self._down.add(shard_id)
        return False

    async def _routed_call(
        self,
        key: str,
        message: Dict[str, Any],
        read_timeout: Optional[float],
    ) -> Dict[str, Any]:
        """``_shard_call`` on the key's first reachable owner, with failover."""
        owners = self.ring.owners(key, self.replicas)
        live = [s for s in owners if s not in self._down]
        if not live:
            live = [s for s in owners if await self._probe(s)]
        last: Optional[BaseException] = None
        for shard_id in live:
            try:
                response = await self._shard_call(
                    shard_id, message, read_timeout
                )
                if (
                    response.get("error") == "unknown_job"
                    and key in self._specs
                ):
                    # Failover landed on a replica that never saw the job:
                    # pipeline a resubmit ahead of the original verb.  The
                    # content address is the same, the executor is
                    # deterministic, so the record is byte-identical.
                    response = await self._shard_call(
                        shard_id,
                        [self._submit_message(self._specs[key]), message],
                        read_timeout,
                    )
                response.setdefault("shard", shard_id)
                return response
            except (ConnectionError, OSError, asyncio.TimeoutError) as exc:
                self._down.add(shard_id)
                last = exc
        return protocol.error_response(
            "cluster_down",
            f"no live shard for key {key[:16]}... (owners {owners}): {last}",
        )

    @staticmethod
    def _submit_message(spec: Dict[str, Any]) -> Dict[str, Any]:
        message = {"op": "submit", "kind": spec["kind"]}
        for field in ("params", "seed", "priority", "client"):
            if spec.get(field) is not None:
                message[field] = spec[field]
        return message

    def _memo(self, key: str, spec: Dict[str, Any]) -> None:
        self._specs.pop(key, None)
        self._specs[key] = spec
        while len(self._specs) > MAX_SPEC_MEMO:
            del self._specs[next(iter(self._specs))]

    # -- HTTP plumbing -----------------------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                try:
                    request = await self._read_request(reader)
                except _BadRequest as exc:
                    await self._respond(
                        writer,
                        400,
                        protocol.error_response("bad_request", str(exc)),
                        close=True,
                    )
                    break
                if request is None:
                    break
                method, target, headers, body = request
                status, payload = await self._dispatch(method, target, body)
                keep = headers.get("connection", "").lower() != "close"
                await self._respond(writer, status, payload, close=not keep)
                if not keep:
                    break
        except (ConnectionResetError, BrokenPipeError, asyncio.TimeoutError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover
                pass

    async def _read_request(
        self, reader: asyncio.StreamReader
    ) -> Optional[Tuple[str, str, Dict[str, str], bytes]]:
        """Parse one HTTP/1.1 request; None on clean EOF."""
        try:
            request_line = await reader.readline()
        except (ValueError, asyncio.LimitOverrunError):
            raise _BadRequest("request line too long") from None
        if not request_line:
            return None
        parts = request_line.decode("latin-1").strip().split()
        if len(parts) != 3 or not parts[2].startswith("HTTP/"):
            raise _BadRequest(f"malformed request line {request_line!r}")
        method, target, _version = parts
        headers: Dict[str, str] = {}
        while True:
            try:
                line = await reader.readline()
            except (ValueError, asyncio.LimitOverrunError):
                raise _BadRequest("header line too long") from None
            if not line:
                raise _BadRequest("connection closed inside headers")
            text = line.decode("latin-1").strip()
            if not text:
                break
            name, _sep, value = text.partition(":")
            headers[name.strip().lower()] = value.strip()
        length_text = headers.get("content-length", "0")
        try:
            length = int(length_text)
        except ValueError:
            raise _BadRequest(f"bad Content-Length {length_text!r}") from None
        if length < 0 or length > MAX_BODY_BYTES:
            raise _BadRequest(
                f"body of {length} bytes exceeds {MAX_BODY_BYTES}"
            )
        body = b""
        if length:
            try:
                body = await reader.readexactly(length)
            except asyncio.IncompleteReadError:
                raise _BadRequest("connection closed inside body") from None
        return method.upper(), target, headers, body

    async def _respond(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        payload: Dict[str, Any],
        close: bool,
    ) -> None:
        body = (
            json.dumps(
                payload, sort_keys=True, separators=(",", ":"), allow_nan=False
            )
            + "\n"
        ).encode()
        reason = {200: "OK", 202: "Accepted", 400: "Bad Request"}.get(
            status, "Status"
        )
        head = (
            f"HTTP/1.1 {status} {reason}\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: {'close' if close else 'keep-alive'}\r\n"
            f"\r\n"
        ).encode("latin-1")
        writer.write(head + body)
        await writer.drain()

    # -- dispatch ---------------------------------------------------------------
    async def _dispatch(
        self, method: str, target: str, body: bytes
    ) -> Tuple[int, Dict[str, Any]]:
        url = urlsplit(target)
        path = [part for part in url.path.split("/") if part]
        query = {
            name: values[-1] for name, values in parse_qs(url.query).items()
        }
        try:
            if method == "POST" and path == ["submit"]:
                return await self._http_submit(body)
            if method == "GET" and len(path) == 2 and path[0] == "result":
                return await self._http_result(path[1], query)
            if method == "GET" and len(path) == 2 and path[0] == "status":
                return self._status_of(
                    await self._routed_call(
                        path[1],
                        {"op": "status", "job": path[1]},
                        read_timeout=CONNECT_TIMEOUT,
                    )
                )
            if method == "POST" and len(path) == 2 and path[0] == "cancel":
                return self._status_of(
                    await self._routed_call(
                        path[1],
                        {"op": "cancel", "job": path[1]},
                        read_timeout=CONNECT_TIMEOUT,
                    )
                )
            if method == "GET" and path == ["health"]:
                return await self._http_health()
            if method == "GET" and path == ["metrics"]:
                return await self._http_metrics()
        except _BadRequest as exc:
            return 400, protocol.error_response("bad_request", str(exc))
        return 404, protocol.error_response(
            "bad_request", f"no route for {method} {url.path}"
        )

    @staticmethod
    def _status_of(response: Dict[str, Any]) -> Tuple[int, Dict[str, Any]]:
        if response.get("ok"):
            return 200, response
        return STATUS_FOR_ERROR.get(response.get("error"), 400), response

    async def _http_submit(self, body: bytes) -> Tuple[int, Dict[str, Any]]:
        try:
            spec = json.loads(body or b"{}")
        except json.JSONDecodeError as exc:
            raise _BadRequest(f"invalid JSON body: {exc}") from None
        if not isinstance(spec, dict) or not isinstance(spec.get("kind"), str):
            raise _BadRequest("body must be a JSON object with a 'kind'")
        params = spec.get("params")
        if params is not None and not isinstance(params, dict):
            raise _BadRequest("'params' must be a JSON object")
        seed = spec.get("seed")
        if seed is not None and not isinstance(seed, int):
            raise _BadRequest("'seed' must be an integer")
        memo = {
            "kind": spec["kind"],
            "params": params,
            "seed": seed,
            "priority": spec.get("priority"),
            "client": spec.get("client"),
        }
        key = self._keyer.key(make_point(spec["kind"], params, seed))
        self._memo(key, memo)
        response = await self._routed_call(
            key, self._submit_message(memo), read_timeout=CONNECT_TIMEOUT
        )
        return self._status_of(response)

    async def _http_result(
        self, job: str, query: Dict[str, str]
    ) -> Tuple[int, Dict[str, Any]]:
        wait = query.get("wait", "0").lower() in ("1", "true", "yes")
        timeout: Optional[float] = None
        if "timeout" in query:
            try:
                timeout = float(query["timeout"])
            except ValueError:
                raise _BadRequest(
                    f"bad timeout {query['timeout']!r}"
                ) from None
        message: Dict[str, Any] = {"op": "result", "job": job}
        read_timeout: Optional[float] = CONNECT_TIMEOUT
        if wait:
            message["wait"] = True
            wait_s = min(
                timeout if timeout is not None else self.wait_cap,
                self.wait_cap,
            )
            message["timeout"] = wait_s
            read_timeout = wait_s + WAIT_SLACK
        response = await self._routed_call(job, message, read_timeout)
        return self._status_of(response)

    async def _http_health(self) -> Tuple[int, Dict[str, Any]]:
        shards: Dict[str, Any] = {}
        for shard_id in sorted(self.shards):
            if await self._probe(shard_id):
                response = await self._shard_call(
                    shard_id, {"op": "health"}, read_timeout=CONNECT_TIMEOUT
                )
                response.pop("ok", None)
                shards[shard_id] = response
            else:
                shards[shard_id] = {"status": "down"}
        alive = sum(
            1 for body in shards.values() if body.get("status") == "ok"
        )
        status = (
            "ok" if alive == len(shards) else ("degraded" if alive else "down")
        )
        payload = protocol.ok_response(
            status=status,
            shards_total=len(shards),
            shards_alive=alive,
            shards=shards,
        )
        return (200 if alive else 503), payload

    async def _http_metrics(self) -> Tuple[int, Dict[str, Any]]:
        from repro.obs import merge_snapshots

        snapshots: List[Dict[str, Any]] = []
        for shard_id in sorted(self.shards):
            if shard_id in self._down and not await self._probe(shard_id):
                continue
            try:
                response = await self._shard_call(
                    shard_id, {"op": "metrics"}, read_timeout=CONNECT_TIMEOUT
                )
            except (ConnectionError, OSError, asyncio.TimeoutError):
                self._down.add(shard_id)
                continue
            if response.get("ok"):
                snapshots.append(response["snapshot"])
        return 200, protocol.ok_response(
            snapshot=merge_snapshots(snapshots), shards_merged=len(snapshots)
        )


class GatewayThread:
    """A live gateway on a private event loop in a daemon thread.

    The HTTP analogue of :class:`repro.serve.server.ServerThread`::

        gateway = GatewayThread(shard_specs)
        host, port = gateway.start()
        ... urllib / curl against http://host:port ...
        gateway.stop()
    """

    def __init__(
        self,
        shards: Sequence[ShardSpec],
        replicas: int = 2,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self.shards = list(shards)
        self.replicas = replicas
        self.host = host
        self.port = port
        self.gateway: Optional[ClusterGateway] = None
        self._thread: Optional[threading.Thread] = None
        self._ready = threading.Event()
        self._stop: Optional[asyncio.Event] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._startup_error: Optional[BaseException] = None

    def start(self, timeout: float = 30.0) -> Tuple[str, int]:
        self._thread = threading.Thread(
            target=self._run, name="repro-cluster-gateway", daemon=True
        )
        self._thread.start()
        if not self._ready.wait(timeout):
            raise RuntimeError("gateway thread failed to start in time")
        if self._startup_error is not None:
            raise RuntimeError(
                "gateway thread failed"
            ) from self._startup_error
        return self.host, self.port

    def _run(self) -> None:
        try:
            asyncio.run(self._main())
        except BaseException as exc:  # noqa: BLE001 - surfaced via start()
            self._startup_error = exc
            self._ready.set()

    async def _main(self) -> None:
        self.gateway = ClusterGateway(
            self.shards,
            replicas=self.replicas,
            host=self.host,
            port=self.port,
        )
        self._loop = asyncio.get_running_loop()
        self._stop = asyncio.Event()
        self.host, self.port = await self.gateway.start()
        self._ready.set()
        await self._stop.wait()
        await self.gateway.stop()

    def stop(self, timeout: float = 30.0) -> None:
        if self._loop is not None and self._stop is not None:
            try:
                self._loop.call_soon_threadsafe(self._stop.set)
            except RuntimeError:  # pragma: no cover - loop already closed
                pass
        if self._thread is not None:
            self._thread.join(timeout)

    def __enter__(self) -> "GatewayThread":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()
