"""Launch and supervise a local fleet of ``repro.serve`` shard processes.

Each shard is one ``python -m repro.serve`` OS process on an ephemeral
port with a ``--ready-file`` (the same contract :mod:`scripts.serve_smoke`
uses); :class:`LocalFleet` collects the announced addresses into
:class:`~repro.cluster.client.ShardSpec` entries for the client/gateway,
and exposes ``kill``/``poll`` so harnesses (and the chaos half of the
cluster smoke test) can take shards down mid-run.

Shards deliberately share one ``--cache-dir`` when given: the job-id
space is content-addressed, so any shard's write-through is every
shard's read-through — a failover re-execution is usually a disk hit.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import time
from pathlib import Path
from typing import Dict, List, Optional

from repro.cluster.client import ShardSpec


class FleetError(RuntimeError):
    """A shard failed to launch or announce itself in time."""


class LocalFleet:
    """N supervised ``repro.serve`` processes on one machine."""

    def __init__(
        self,
        shards: int = 3,
        workers: int = 1,
        run_dir: Optional[Path] = None,
        host: str = "127.0.0.1",
        cache_dir: Optional[Path] = None,
        extra_args: Optional[List[str]] = None,
        python: Optional[str] = None,
    ) -> None:
        if shards < 1:
            raise ValueError("a fleet needs at least one shard")
        self.count = int(shards)
        self.workers = int(workers)
        self.host = host
        self.run_dir = Path(run_dir) if run_dir else Path("results/cluster")
        self.cache_dir = Path(cache_dir) if cache_dir else None
        self.extra_args = list(extra_args or [])
        self.python = python or sys.executable
        self.processes: Dict[str, subprocess.Popen] = {}
        self.specs: List[ShardSpec] = []

    @staticmethod
    def shard_name(index: int) -> str:
        return f"shard{index}"

    def _spawn(self, shard_id: str) -> subprocess.Popen:
        shard_dir = self.run_dir / shard_id
        shard_dir.mkdir(parents=True, exist_ok=True)
        ready = shard_dir / "ready.json"
        ready.unlink(missing_ok=True)
        command = [
            self.python, "-m", "repro.serve",
            "--host", self.host,
            "--port", "0",
            "--workers", str(self.workers),
            "--shard-id", shard_id,
            "--ready-file", str(ready),
            "--quiet",
        ]
        if self.cache_dir is not None:
            command += ["--cache-dir", str(self.cache_dir)]
        command += self.extra_args
        env = dict(os.environ)
        src = Path(__file__).resolve().parents[2]
        env["PYTHONPATH"] = (
            f"{src}{os.pathsep}{env['PYTHONPATH']}"
            if env.get("PYTHONPATH")
            else str(src)
        )
        return subprocess.Popen(command, env=env)

    def start(self, timeout: float = 60.0) -> List[ShardSpec]:
        """Launch every shard and wait for all ready files."""
        for index in range(self.count):
            shard_id = self.shard_name(index)
            self.processes[shard_id] = self._spawn(shard_id)
        deadline = time.monotonic() + timeout
        self.specs = []
        for index in range(self.count):
            shard_id = self.shard_name(index)
            ready = self.run_dir / shard_id / "ready.json"
            process = self.processes[shard_id]
            while True:
                if process.poll() is not None:
                    self.stop()
                    raise FleetError(
                        f"{shard_id} exited with {process.returncode} "
                        f"before announcing readiness"
                    )
                if ready.is_file():
                    try:
                        address = json.loads(ready.read_text())
                        break
                    except json.JSONDecodeError:
                        pass  # mid-write; retry
                if time.monotonic() > deadline:
                    self.stop()
                    raise FleetError(f"{shard_id} not ready within {timeout}s")
                time.sleep(0.05)
            self.specs.append(
                ShardSpec(
                    id=shard_id, host=address["host"], port=address["port"]
                )
            )
        return self.specs

    def poll(self) -> Dict[str, Optional[int]]:
        """Exit code per shard (None = still running)."""
        return {
            shard_id: process.poll()
            for shard_id, process in self.processes.items()
        }

    def kill(self, shard_id: str, timeout: float = 10.0) -> None:
        """Terminate one shard (simulated death; it is *not* respawned)."""
        process = self.processes[shard_id]
        if process.poll() is None:
            process.terminate()
            try:
                process.wait(timeout=timeout)
            except subprocess.TimeoutExpired:  # pragma: no cover - stuck
                process.kill()
                process.wait(timeout=timeout)

    def stop(self, timeout: float = 10.0) -> None:
        """Terminate every shard process."""
        for shard_id in list(self.processes):
            self.kill(shard_id, timeout=timeout)
        self.processes = {}

    def __enter__(self) -> "LocalFleet":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()
