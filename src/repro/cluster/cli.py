"""``python -m repro.cluster`` — launch a local fleet plus HTTP gateway.

Examples
--------
A 3-shard fleet behind an ephemeral HTTP port, address in a ready file::

    python -m repro.cluster --shards 3 --http-port 0 \\
        --ready-file /tmp/cluster_ready.json

Then, from any HTTP client::

    curl -s -X POST http://HOST:PORT/submit \\
        -d '{"kind": "nap", "params": {"duration": 0.0}}'
    curl -s "http://HOST:PORT/result/JOB?wait=1&timeout=30"

The ready file holds ``{"host", "port", "shards": [{id, host, port}...],
"pid"}`` and is written only once every shard announced itself and the
gateway socket is listening.  The supervisor loop watches the shard
processes; a dead shard is reported (and served around via replica
failover) but not respawned — restart policy belongs to real process
managers, the gateway's job is to keep answering while degraded.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import os
import signal
from pathlib import Path
from typing import List, Optional

from repro.cluster.fleet import LocalFleet
from repro.cluster.gateway import ClusterGateway

#: Seconds between shard-process liveness polls in the supervisor loop.
SUPERVISE_INTERVAL = 1.0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.cluster",
        description="Sharded simulation fleet with an HTTP/JSON gateway.",
    )
    parser.add_argument(
        "--shards", type=int, default=3, help="serve instances to launch"
    )
    parser.add_argument(
        "--workers", type=int, default=1,
        help="worker processes per shard",
    )
    parser.add_argument(
        "--replicas", type=int, default=2,
        help="length of each key's failover preference list",
    )
    parser.add_argument("--host", default="127.0.0.1", help="bind address")
    parser.add_argument(
        "--http-port", type=int, default=7410,
        help="gateway HTTP port (0 = ephemeral)",
    )
    parser.add_argument(
        "--run-dir", type=Path, default=Path("results/cluster"),
        help="per-shard ready files and scratch space",
    )
    parser.add_argument(
        "--cache-dir", type=Path, default=None,
        help="shared SweepCache directory (all shards read/write through it)",
    )
    parser.add_argument(
        "--ready-file", type=Path, default=None,
        help="write the gateway+fleet addresses JSON here once listening",
    )
    parser.add_argument(
        "--quiet", action="store_true", help="suppress the startup banner"
    )
    return parser


async def _run(args: argparse.Namespace) -> int:
    fleet = LocalFleet(
        shards=args.shards,
        workers=args.workers,
        run_dir=args.run_dir,
        host=args.host,
        cache_dir=args.cache_dir,
    )
    specs = await asyncio.get_running_loop().run_in_executor(None, fleet.start)
    gateway = ClusterGateway(
        specs, replicas=args.replicas, host=args.host, port=args.http_port
    )
    stop = asyncio.Event()
    loop = asyncio.get_running_loop()
    for signum in (signal.SIGINT, signal.SIGTERM):
        try:
            loop.add_signal_handler(signum, stop.set)
        except NotImplementedError:  # pragma: no cover - non-unix
            pass
    try:
        host, port = await gateway.start()
        if args.ready_file is not None:
            args.ready_file.parent.mkdir(parents=True, exist_ok=True)
            args.ready_file.write_text(
                json.dumps(
                    {
                        "host": host,
                        "port": port,
                        "pid": os.getpid(),
                        "shards": [
                            {"id": s.id, "host": s.host, "port": s.port}
                            for s in specs
                        ],
                    }
                )
            )
        if not args.quiet:
            shares = gateway.ring.shares(1024)
            print(
                f"repro.cluster gateway on http://{host}:{port} "
                f"({len(specs)} shards, replicas={args.replicas}, "
                f"key shares "
                f"{'/'.join(f'{shares[s.id]:.2f}' for s in specs)})",
                flush=True,
            )
        reported: set = set()
        while not stop.is_set():
            try:
                await asyncio.wait_for(
                    stop.wait(), timeout=SUPERVISE_INTERVAL
                )
            except asyncio.TimeoutError:
                pass
            dead = [
                shard_id
                for shard_id, code in fleet.poll().items()
                if code is not None
            ]
            for shard_id in dead:
                if shard_id not in reported:
                    reported.add(shard_id)
                    if not args.quiet:
                        print(
                            f"repro.cluster: {shard_id} exited; "
                            f"serving degraded via replicas",
                            flush=True,
                        )
                gateway.mark_down(shard_id)
    finally:
        await gateway.stop()
        await asyncio.get_running_loop().run_in_executor(None, fleet.stop)
    if not args.quiet:
        print("repro.cluster stopped", flush=True)
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return asyncio.run(_run(args))
    except KeyboardInterrupt:  # pragma: no cover - interactive teardown
        return 0
