"""A fleet of simulation servers: sharding, failover, HTTP front door.

:mod:`repro.serve` made one instance answer many concurrent scenario
queries; this package makes *N* instances answer internet-scale traffic
as one service:

* :mod:`~repro.cluster.ring` — consistent hashing over the
  content-addressed job-id space (the ids are
  :class:`~repro.sweep.cache.SweepCache` keys, so they are
  location-independent by construction: any shard computes any job to
  the byte-identical record);
* :mod:`~repro.cluster.client` — :class:`ClusterClient` fans submits
  out by key, retries on replicas when a shard dies (health-probe driven
  failover by deterministic *re-execution*, not state migration), and
  merges ``health``/``metrics`` across the fleet;
* :mod:`~repro.cluster.gateway` — a stdlib-only asyncio HTTP/1.1 JSON
  gateway translating ``POST /submit`` / ``GET /result/{id}`` / ... into
  the NDJSON-TCP protocol so curl and browsers work;
* :mod:`~repro.cluster.fleet` — :class:`LocalFleet` launches and
  supervises ``python -m repro.serve`` shard processes;
* :mod:`~repro.cluster.cli` — ``python -m repro.cluster`` stands the
  whole thing up with a ``--ready-file``.

The sharding changes *where* a point runs, never its physics: a sweep
through the cluster — shard deaths included — returns records
byte-identical to :func:`repro.sweep.runner.run_sweep`.
"""

from repro.cluster.client import (
    ClusterClient,
    ClusterDown,
    ShardDown,
    ShardSpec,
)
from repro.cluster.fleet import FleetError, LocalFleet
from repro.cluster.gateway import ClusterGateway
from repro.cluster.ring import HashRing

__all__ = [
    "ClusterClient",
    "ClusterDown",
    "ClusterGateway",
    "FleetError",
    "HashRing",
    "LocalFleet",
    "ShardDown",
    "ShardSpec",
]
