"""Tables for fault-campaign records (the robustness experiments).

The campaign runners in :mod:`repro.faults.campaign` return plain dict
records; these formatters turn a list of them into the aligned ASCII
tables the CLI and examples print.
"""

from __future__ import annotations

from typing import Any, Dict, Sequence

from repro.analysis.results import format_table


def format_availability_table(records: Sequence[Dict[str, Any]]) -> str:
    """One row per fault-campaign point: degradation vs injected faults."""
    headers = [
        "load",
        "failures",
        "delivery",
        "orphaned",
        "reconfigs",
        "reconv(mean)",
        "reconv(max)",
        "deadlock-free",
    ]
    rows = []
    for record in records:
        params = record.get("params", {})
        metrics = record.get("metrics", {})
        deadlock_free = record.get("deadlock_free")
        rows.append(
            [
                f"{params.get('load', 0.0):.3f}",
                params.get("link_failures", 0),
                f"{metrics.get('delivery_ratio', 1.0):.4f}",
                metrics.get("orphaned_worms", 0),
                metrics.get("reconfigurations", 0),
                f"{metrics.get('mean_reconvergence_time', 0.0):.0f}",
                f"{metrics.get('max_reconvergence_time', 0.0):.0f}",
                "-" if deadlock_free is None else ("yes" if deadlock_free else "NO"),
            ]
        )
    return format_table(headers, rows)


def format_repair_table(records: Sequence[Dict[str, Any]]) -> str:
    """One row per repair-campaign point: recovery completeness and cost."""
    headers = [
        "drops",
        "recv_faults",
        "losses",
        "recovered",
        "requests",
        "damped",
        "repairs",
        "overhead",
    ]
    rows = []
    for record in records:
        params = record.get("params", {})
        overhead = (record.get("metrics") or {}).get("repair_overhead") or {}
        rows.append(
            [
                params.get("drops", 0),
                params.get("recv_faults", 0),
                record.get("losses_injected", 0),
                "all" if record.get("recovered_all") else "PARTIAL",
                overhead.get("requests_sent", 0),
                overhead.get("requests_damped", 0),
                overhead.get("repairs_sent", 0),
                f"{overhead.get('overhead_ratio', 0.0):.4f}",
            ]
        )
    return format_table(headers, rows)
