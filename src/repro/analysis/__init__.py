"""Result formatting and output analysis shared by examples and benches."""

from repro.analysis.ascii_chart import ascii_chart
from repro.analysis.availability import (
    format_availability_table,
    format_repair_table,
)
from repro.analysis.persistence import load_meta, load_results, save_results
from repro.analysis.results import (
    crossover_point,
    format_results_table,
    format_table,
    series_by_scheme,
)

__all__ = [
    "ascii_chart",
    "crossover_point",
    "format_availability_table",
    "format_repair_table",
    "format_results_table",
    "format_table",
    "load_meta",
    "load_results",
    "save_results",
    "series_by_scheme",
]
