"""Save and reload experiment results as JSON.

The reproduction driver (``examples/reproduce_figures.py``) records every
regenerated figure under ``results/`` so runs can be diffed across code
changes or REPRO_SCALE settings.
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path
from typing import List, Union

from repro.traffic.workloads import ExperimentResult


def save_results(
    results: List[ExperimentResult], path: Union[str, Path], meta: dict = None
) -> Path:
    """Write results (plus free-form metadata) to a JSON file."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    payload = {
        "meta": meta or {},
        "results": [dataclasses.asdict(result) for result in results],
    }
    path.write_text(json.dumps(payload, indent=2, sort_keys=True))
    return path


def load_results(path: Union[str, Path]) -> List[ExperimentResult]:
    """Reload results written by :func:`save_results`."""
    payload = json.loads(Path(path).read_text())
    fields = {f.name for f in dataclasses.fields(ExperimentResult)}
    results = []
    for entry in payload["results"]:
        unknown = set(entry) - fields
        if unknown:
            raise ValueError(f"unknown result fields in {path}: {sorted(unknown)}")
        results.append(ExperimentResult(**entry))
    return results


def load_meta(path: Union[str, Path]) -> dict:
    """The metadata block of a saved results file."""
    return json.loads(Path(path).read_text()).get("meta", {})
