"""Terminal line charts for experiment series.

The paper's figures are latency-vs-load curves; these helpers render the
same series as ASCII so examples and the reproduction driver can show the
curve shapes without any plotting dependency.
"""

from __future__ import annotations

import math
from typing import Dict, List, Sequence, Tuple

Series = Sequence[Tuple[float, float]]

#: Plot glyphs assigned to series in order.
_MARKS = "ox+*#@%&"


def ascii_chart(
    series: Dict[str, Series],
    width: int = 64,
    height: int = 16,
    x_label: str = "",
    y_label: str = "",
    logy: bool = False,
) -> str:
    """Render named (x, y) series on a shared-axis ASCII grid.

    Points are plotted with one glyph per series; collisions show the
    later series' glyph.  ``logy`` uses a log10 y-axis (useful for the
    saturation blow-ups of Figure 10).
    """
    cleaned = {
        name: [(x, y) for x, y in points if _finite(x) and _finite(y)]
        for name, points in series.items()
    }
    cleaned = {name: pts for name, pts in cleaned.items() if pts}
    if not cleaned:
        return "(no data)"
    if logy and any(y <= 0 for pts in cleaned.values() for _, y in pts):
        raise ValueError("log y-axis requires positive values")

    xs = [x for pts in cleaned.values() for x, _ in pts]
    ys = [y for pts in cleaned.values() for _, y in pts]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    if logy:
        y_lo, y_hi = math.log10(y_lo), math.log10(y_hi)
    x_span = (x_hi - x_lo) or 1.0
    y_span = (y_hi - y_lo) or 1.0

    grid = [[" "] * width for _ in range(height)]
    for index, (name, points) in enumerate(cleaned.items()):
        mark = _MARKS[index % len(_MARKS)]
        for x, y in points:
            yv = math.log10(y) if logy else y
            col = round((x - x_lo) / x_span * (width - 1))
            row = round((yv - y_lo) / y_span * (height - 1))
            grid[height - 1 - row][col] = mark

    y_hi_label = f"{10 ** y_hi:.3g}" if logy else f"{y_hi:.3g}"
    y_lo_label = f"{10 ** y_lo:.3g}" if logy else f"{y_lo:.3g}"
    margin = max(len(y_hi_label), len(y_lo_label), len(y_label)) + 1
    lines: List[str] = []
    if y_label:
        lines.append(f"{y_label}")
    for row_index, row in enumerate(grid):
        if row_index == 0:
            prefix = y_hi_label.rjust(margin)
        elif row_index == height - 1:
            prefix = y_lo_label.rjust(margin)
        else:
            prefix = " " * margin
        lines.append(f"{prefix}|{''.join(row)}")
    lines.append(" " * margin + "+" + "-" * width)
    x_axis = f"{x_lo:.3g}".ljust(width - 8) + f"{x_hi:.3g}".rjust(8)
    lines.append(" " * (margin + 1) + x_axis)
    if x_label:
        lines.append(" " * (margin + 1) + x_label.center(width))
    legend = "   ".join(
        f"{_MARKS[i % len(_MARKS)]} {name}" for i, name in enumerate(cleaned)
    )
    lines.append(" " * (margin + 1) + legend)
    return "\n".join(lines)


def _finite(value: float) -> bool:
    return isinstance(value, (int, float)) and math.isfinite(value)
