"""Plain-text tables and simple curve analysis for experiment results.

The benchmark harness prints the same rows/series the paper's figures
report; these helpers keep that formatting in one place.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.traffic.workloads import ExperimentResult


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Align ``rows`` under ``headers`` (numbers right-aligned)."""
    rendered = [[_render(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rendered:
        if len(row) != len(headers):
            raise ValueError("row width does not match headers")
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = [
        "  ".join(h.rjust(widths[i]) for i, h in enumerate(headers)),
        "  ".join("-" * w for w in widths),
    ]
    for row in rendered:
        lines.append("  ".join(cell.rjust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def _render(cell: object) -> str:
    if isinstance(cell, float):
        return f"{cell:.1f}" if abs(cell) >= 100 else f"{cell:.3f}"
    return str(cell)


def series_by_scheme(
    results: Sequence[ExperimentResult],
) -> Dict[str, List[Tuple[float, float]]]:
    """Group (offered load, mean multicast latency) points per scheme."""
    series: Dict[str, List[Tuple[float, float]]] = {}
    for result in results:
        series.setdefault(result.scheme, []).append(
            (result.offered_load, result.mean_multicast_latency)
        )
    for points in series.values():
        points.sort()
    return series


def format_results_table(results: Sequence[ExperimentResult]) -> str:
    """The standard experiment table (one row per (scheme, load) point)."""
    headers = [
        "scheme",
        "load",
        "mc_frac",
        "mcast_latency",
        "completion",
        "unicast",
        "utilization",
        "deliveries",
    ]
    rows = []
    for r in results:
        rows.append(
            [
                r.scheme,
                f"{r.offered_load:.2f}",
                f"{r.multicast_fraction:.2f}",
                f"{r.mean_multicast_latency:.0f}",
                f"{r.mean_completion_latency:.0f}",
                f"{r.mean_unicast_latency:.0f}",
                f"{r.mean_channel_utilization:.3f}",
                r.deliveries,
            ]
        )
    return format_table(headers, rows)


def crossover_point(
    series_a: Sequence[Tuple[float, float]],
    series_b: Sequence[Tuple[float, float]],
    direction: str = "up",
) -> Optional[float]:
    """The first x where curve ``a`` crosses curve ``b``.

    Used to locate the cut-through / tree crossover the paper predicts in
    Figure 10 (linear interpolation between sample points; None when the
    curves never cross on the common domain).

    Direction contract
    ------------------
    ``direction="up"`` (the default) detects ``a`` passing from *strictly
    below* ``b`` to *strictly above* it; ``"down"`` the reverse; ``"any"``
    either.  Points where ``a == b`` are treated as *touches*, not sides: a
    curve that touches and recedes (e.g. below → equal → below, or above →
    equal → above) is **not** a crossover.  When the curves meet exactly
    and then continue to the other side (below → equal → above), the
    crossover is the first touching x.  Otherwise the crossing x is
    linearly interpolated between the two strictly-signed samples.
    """
    if direction not in ("up", "down", "any"):
        raise ValueError(f"unknown direction {direction!r}")
    xs = sorted(set(x for x, _ in series_a) & set(x for x, _ in series_b))
    if len(xs) < 2:
        return None
    a = dict(series_a)
    b = dict(series_b)
    previous_index: Optional[int] = None  # last strictly-signed sample
    for index, x in enumerate(xs):
        diff = a[x] - b[x]
        if diff == 0:
            continue
        sign = diff > 0
        if previous_index is not None:
            x0 = xs[previous_index]
            d0 = a[x0] - b[x0]
            crossed = sign != (d0 > 0)
            wanted = (
                direction == "any"
                or (direction == "up" and sign)
                or (direction == "down" and not sign)
            )
            if crossed and wanted:
                if index - previous_index > 1:
                    # The curves met exactly on the intervening point(s);
                    # they first cross where they first touch.
                    return xs[previous_index + 1]
                return x0 + (x - x0) * (-d0) / (diff - d0)
        previous_index = index
    return None
