"""Parallel sweep execution.

Independent (scheme, load, seed, topology) points fan out across a
``multiprocessing`` pool; because every point builds its own simulator from
its own deterministic seed, a parallel run produces records byte-identical
to a sequential run — the pool only changes wall-clock time.  Results come
back in point order regardless of completion order.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.sweep.cache import SweepCache
from repro.sweep.points import execute_point
from repro.sweep.spec import SweepPoint, SweepSpec


def default_jobs() -> int:
    """Worker count: ``REPRO_JOBS`` env override, else the CPU count."""
    env = os.environ.get("REPRO_JOBS")
    if env:
        try:
            return max(1, int(env))
        except ValueError:
            raise ValueError(
                f"REPRO_JOBS must be an integer worker count, got {env!r}"
            ) from None
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-linux
        return os.cpu_count() or 1


def _execute(payload: Tuple[str, Dict[str, Any]]) -> Dict[str, Any]:
    """Pool worker entry (module-level so it pickles under fork/spawn)."""
    kind, params = payload
    return execute_point(kind, params)


@dataclass
class SweepOutcome:
    """Everything a sweep run produced, plus its execution footprint."""

    spec: SweepSpec
    records: List[Dict[str, Any]]
    points: List[SweepPoint] = field(repr=False, default_factory=list)
    executed: int = 0
    cached: int = 0
    workers: int = 1
    wall_time: float = 0.0

    @property
    def points_per_second(self) -> float:
        return len(self.records) / self.wall_time if self.wall_time > 0 else 0.0

    def merged_obs(self) -> Optional[Dict[str, Any]]:
        """Merge the per-point ``"obs"`` snapshots, in record order.

        Record order equals point order regardless of worker count, so a
        parallel sweep merges to the byte-identical aggregate a sequential
        sweep produces (floating-point merges are order-sensitive; fixing
        the order fixes the result).  Returns None when no record carries a
        snapshot (points run without ``obs: true``).
        """
        from repro.obs import merge_snapshots

        snapshots = [r.get("obs") for r in self.records]
        snapshots = [s for s in snapshots if s]
        if not snapshots:
            return None
        return merge_snapshots(snapshots)

    def bench_entry(self, label: str, **extra: Any) -> Dict[str, Any]:
        """A machine-readable trajectory entry for ``BENCH_*.json`` files."""
        entry = {
            "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
            "label": label,
            "kind": self.spec.kind,
            "points": len(self.records),
            "executed": self.executed,
            "cached": self.cached,
            "workers": self.workers,
            "wall_time_s": round(self.wall_time, 3),
            "points_per_s": round(self.points_per_second, 4),
        }
        entry.update(extra)
        return entry


def run_sweep(
    spec: SweepSpec,
    jobs: Optional[int] = None,
    cache: Optional[SweepCache] = None,
    progress: Optional[Callable[[str], None]] = None,
) -> SweepOutcome:
    """Execute every point of ``spec``; returns records in point order.

    Parameters
    ----------
    jobs:
        Worker processes.  ``None`` uses :func:`default_jobs`; 1 runs
        in-process (no pool, easier to debug/profile).  The worker count is
        clamped to the number of points that actually need simulating.
    cache:
        Optional :class:`~repro.sweep.cache.SweepCache`; hits skip
        simulation entirely, misses are stored after execution.
    progress:
        Optional callable receiving human-readable progress lines.
    """
    say = progress or (lambda _line: None)
    points = spec.points()
    start = time.perf_counter()

    records: List[Optional[Dict[str, Any]]] = [None] * len(points)
    pending: List[SweepPoint] = []
    for point in points:
        hit = cache.get(point) if cache is not None else None
        if hit is not None:
            records[point.index] = hit
        else:
            pending.append(point)
    cached = len(points) - len(pending)
    if cached:
        say(f"cache: {cached}/{len(points)} points reused")

    workers = default_jobs() if jobs is None else max(1, jobs)
    workers = min(workers, len(pending)) if pending else 1

    payloads = [(p.kind, p.executor_params()) for p in pending]
    if workers <= 1:
        say(f"running {len(pending)} points sequentially")
        fresh = [_execute(payload) for payload in payloads]
    else:
        import multiprocessing

        say(f"running {len(pending)} points on {workers} workers")
        with multiprocessing.Pool(workers) as pool:
            fresh = pool.map(_execute, payloads, chunksize=1)

    for point, record in zip(pending, fresh):
        records[point.index] = record
        if cache is not None:
            cache.put(point, record)

    return SweepOutcome(
        spec=spec,
        records=[r for r in records if r is not None],
        points=points,
        executed=len(pending),
        cached=cached,
        workers=workers,
        wall_time=time.perf_counter() - start,
    )


def records_to_results(records: List[Dict[str, Any]]) -> list:
    """Rehydrate ``load_point`` records into ``ExperimentResult`` objects.

    Executors serialize NaN as ``None`` (see
    :func:`repro.sweep.points.sanitize_record`); undo that here so the
    dataclasses look exactly as if ``run_load_point`` had been called
    directly.
    """
    import math

    from repro.traffic.workloads import ExperimentResult

    results = []
    for record in records:
        fixed = {
            # Only scalar measurement fields encode NaN as None; the obs
            # snapshot and extras are containers where None means "absent".
            key: math.nan if value is None and key not in ("obs", "extras") else value
            for key, value in record.items()
        }
        results.append(ExperimentResult(**fixed))
    return results


def records_to_testbed_results(records: List[Dict[str, Any]]) -> list:
    """Rehydrate ``myrinet_throughput`` records into ``TestbedResult``."""
    from repro.myrinet.testbed import TestbedResult

    results = []
    for record in records:
        fixed = dict(record)
        # JSON round-trips turn int dict keys into strings; restore them.
        for field_name in ("per_host_throughput", "per_host_loss"):
            if field_name in fixed and isinstance(fixed[field_name], dict):
                fixed[field_name] = {
                    int(k): v for k, v in fixed[field_name].items()
                }
        results.append(TestbedResult(**fixed))
    return results


def append_trajectory(
    path: Path, entry: Dict[str, Any], dedup_on: tuple = ()
) -> Path:
    """Append ``entry`` to the trajectory file at ``path`` (created lazily).

    The file holds ``{"entries": [...]}`` so PR-over-PR perf history stays
    one ``json.load`` away.

    ``dedup_on`` names keys (e.g. ``("code", "label", "note")``) on which
    prior entries are considered duplicates of ``entry``: any existing
    entry matching on *all* of them is replaced instead of accumulated, so
    re-running the benchmarks on unchanged code refreshes the numbers
    rather than bloating the history.
    """
    path = Path(path)
    try:
        data = json.loads(path.read_text())
    except (FileNotFoundError, json.JSONDecodeError):
        data = {"entries": []}
    if dedup_on:
        data["entries"] = [
            old
            for old in data["entries"]
            if any(old.get(k) != entry.get(k) for k in dedup_on)
        ]
    data["entries"].append(entry)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(data, indent=2, sort_keys=True))
    return path
