"""Point executors: the functions a sweep fans out across workers.

Executors are registered by name and take/return plain JSON-serializable
dicts, which keeps sweep points picklable for ``multiprocessing`` and
hashable for the on-disk result cache.  Two kinds cover the paper's
figures:

* ``load_point`` -- one (scheme, load) steady-state measurement on the
  worm-level network (Figures 10 and 11; any topology the workload layer
  can build).
* ``myrinet_throughput`` -- one (packet size, sender pattern) point on the
  Myrinet testbed model (Figures 12 and 13).
* ``vc_lanes`` -- one (topology family, lanes, scheme) flit-level run of
  the virtual-channel fabric, recording completion and per-lane
  occupancy (the lanes-vs-scheme grid).
"""

from __future__ import annotations

import dataclasses
import math
from typing import Any, Callable, Dict

PointFn = Callable[[Dict[str, Any]], Dict[str, Any]]


def sanitize_record(obj: Any) -> Any:
    """Canonicalize a record to its strict-JSON form.

    NaN becomes None (NaN breaks strict JSON and equality — ``nan != nan``
    would make byte-identical runs look different), tuples become lists,
    and dict keys become strings, so a record compares equal whether it
    came straight from an executor or round-tripped through the on-disk
    cache.  The ``records_to_*`` helpers in :mod:`repro.sweep.runner`
    restore native types on rehydration.
    """
    if isinstance(obj, float) and math.isnan(obj):
        return None
    if isinstance(obj, dict):
        return {str(key): sanitize_record(value) for key, value in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [sanitize_record(value) for value in obj]
    return obj


POINT_KINDS: Dict[str, PointFn] = {}


def _point_obs(params: Dict[str, Any]):
    """Metrics-only observability bundle when the point asks for one.

    Sweep points run in worker processes, so the trace ring and kernel
    counters stay off (``params["obs"]`` only buys the mergeable metric
    snapshot embedded in the record); all hooks remain passive, so records
    are byte-identical with and without it.
    """
    if not params.get("obs"):
        return None
    from repro.obs import Observability

    return Observability(tracer=None, kernel=False)


def point_kind(name: str) -> Callable[[PointFn], PointFn]:
    """Register an executor under ``name``."""

    def register(fn: PointFn) -> PointFn:
        if name in POINT_KINDS:
            raise ValueError(f"point kind {name!r} already registered")
        POINT_KINDS[name] = fn
        return fn

    return register


def execute_point(kind: str, params: Dict[str, Any]) -> Dict[str, Any]:
    """Run one point; the module-level entry used by pool workers."""
    try:
        fn = POINT_KINDS[kind]
    except KeyError:
        raise ValueError(
            f"unknown point kind {kind!r}; known: {sorted(POINT_KINDS)}"
        ) from None
    return fn(params)


@point_kind("nap")
def _nap(params: Dict[str, Any]) -> Dict[str, Any]:
    """Sleep-then-echo point: plumbing exerciser, not a simulation.

    Used by the serving layer's tests and benchmarks to occupy a worker for
    a controlled wall-clock duration (``duration`` seconds) — e.g. to
    provoke per-job timeouts or fill a queue — while staying fully
    deterministic in its *output* (the record depends only on the params).
    """
    import time as _time

    duration = float(params.get("duration", 0.0))
    if duration > 0.0:
        _time.sleep(duration)
    return sanitize_record(
        {
            "napped": duration,
            "tag": params.get("tag"),
            "seed": int(params.get("seed", 1)),
        }
    )


@point_kind("load_point")
def _load_point(params: Dict[str, Any]) -> Dict[str, Any]:
    """One steady-state (scheme, load) measurement.

    Required params: ``topology`` (plus its shape parameters), ``scheme``
    (a name from :data:`repro.traffic.workloads.SCHEMES_BY_NAME`), ``load``.
    Optional: ``multicast_fraction``, ``mean_length``, ``group_count``,
    ``group_size``, ``warmup_deliveries``, ``measure_deliveries``,
    ``max_sim_time``, ``seed``, ``obs`` (embed a metrics snapshot).
    """
    from repro.traffic.workloads import (
        GroupPlan,
        run_load_point,
        scheme_by_name,
    )

    setup = {
        "topology": params["topology"],
        "groups": GroupPlan(
            count=int(params.get("group_count", 10)),
            size=int(params.get("group_size", 10)),
        ),
        "mean_length": float(params.get("mean_length", 400.0)),
        "multicast_fraction": float(params.get("multicast_fraction", 0.1)),
    }
    for key in ("rows", "cols", "p", "k", "prop_delay"):
        if key in params:
            setup[key] = params[key]

    result = run_load_point(
        scheme_by_name(params["scheme"]),
        float(params["load"]),
        setup=setup,
        multicast_fraction=float(params.get("multicast_fraction", 0.1)),
        seed=int(params.get("seed", 1)),
        warmup_deliveries=int(params.get("warmup_deliveries", 300)),
        measure_deliveries=int(params.get("measure_deliveries", 2000)),
        max_sim_time=float(params.get("max_sim_time", 5e7)),
        obs=_point_obs(params),
    )
    return sanitize_record(dataclasses.asdict(result))


@point_kind("fault_campaign")
def _fault_campaign(params: Dict[str, Any]) -> Dict[str, Any]:
    """One availability-under-faults measurement (multicast workload on a
    torus with injected link failures and Autonet-style recovery).

    Required params: ``link_failures``.  Optional: ``rows``, ``cols``,
    ``scheme``, ``load``, ``multicast_fraction``, ``mean_length``,
    ``group_count``, ``group_size``, ``downtime``, ``warmup_time``,
    ``measure_time``, ``detection_delay``, ``seed``.
    """
    from repro.faults.campaign import run_fault_campaign

    record = run_fault_campaign(
        rows=int(params.get("rows", 8)),
        cols=int(params.get("cols", 8)),
        scheme=params.get("scheme", "hamiltonian-sf"),
        load=float(params.get("load", 0.06)),
        multicast_fraction=float(params.get("multicast_fraction", 0.1)),
        mean_length=float(params.get("mean_length", 400.0)),
        group_count=int(params.get("group_count", 10)),
        group_size=int(params.get("group_size", 10)),
        link_failures=int(params["link_failures"]),
        downtime=float(params.get("downtime", 100_000.0)),
        warmup_time=float(params.get("warmup_time", 100_000.0)),
        measure_time=float(params.get("measure_time", 400_000.0)),
        detection_delay=float(params.get("detection_delay", 100.0)),
        seed=int(params.get("seed", 1)),
        obs=_point_obs(params),
    )
    return sanitize_record(record)


@point_kind("repair_campaign")
def _repair_campaign(params: Dict[str, Any]) -> Dict[str, Any]:
    """One transport-repair recovery measurement (repair chain under
    injected worm drops and adapter-buffer faults).

    Required params: ``drops``.  Optional: ``rows``, ``cols``,
    ``members_count``, ``messages``, ``spacing``, ``length``,
    ``recv_faults``, ``request_timeout``, ``heartbeat_period``,
    ``max_sim_time``, ``seed``.
    """
    from repro.faults.campaign import run_repair_campaign

    record = run_repair_campaign(
        rows=int(params.get("rows", 4)),
        cols=int(params.get("cols", 4)),
        members_count=int(params.get("members_count", 6)),
        messages=int(params.get("messages", 20)),
        spacing=float(params.get("spacing", 2_000.0)),
        length=int(params.get("length", 400)),
        drops=int(params["drops"]),
        recv_faults=int(params.get("recv_faults", 0)),
        seed=int(params.get("seed", 1)),
        request_timeout=float(params.get("request_timeout", 3_000.0)),
        heartbeat_period=float(params.get("heartbeat_period", 10_000.0)),
        max_sim_time=float(params.get("max_sim_time", 5e6)),
        obs=_point_obs(params),
    )
    return sanitize_record(record)


@point_kind("myrinet_throughput")
def _myrinet_throughput(params: Dict[str, Any]) -> Dict[str, Any]:
    """One Myrinet testbed point (Figures 12/13).

    Required params: ``packet_size``.  Optional: ``all_send``, ``n_hosts``,
    ``warmup_us``, ``measure_us``.
    """
    from repro.myrinet import run_throughput_experiment

    result = run_throughput_experiment(
        int(params["packet_size"]),
        all_send=bool(params.get("all_send", False)),
        n_hosts=int(params.get("n_hosts", 8)),
        warmup_us=float(params.get("warmup_us", 50_000.0)),
        measure_us=float(params.get("measure_us", 500_000.0)),
        obs=_point_obs(params),
    )
    return sanitize_record(dataclasses.asdict(result))


@point_kind("fig3_offsets")
def _fig3_offsets(params: Dict[str, Any]) -> Dict[str, Any]:
    """One Figure 3 injection-offset grid on the flit-level engine.

    Required params: ``scheme`` (a :class:`SwitchScheme` value string).
    Optional: ``mc_delays``/``uc_delays`` (exclusive range bounds, default
    6), ``worm_bytes``, ``max_ticks``, ``seed``, and ``engine``
    (``"active"``/``"dense"`` -- byte-identical results, different speed).
    """
    from repro.core.switch_mcast import (
        SwitchScheme,
        deadlock_rate,
        sweep_fig3_offsets,
    )

    outcomes = sweep_fig3_offsets(
        SwitchScheme(params["scheme"]),
        mc_delays=range(int(params.get("mc_delays", 6))),
        uc_delays=range(int(params.get("uc_delays", 6))),
        worm_bytes=int(params.get("worm_bytes", 400)),
        max_ticks=int(params.get("max_ticks", 100_000)),
        seed=int(params.get("seed", 3)),
        engine=str(params.get("engine", "active")),
    )
    return sanitize_record(
        {
            "scheme": str(SwitchScheme(params["scheme"]).value),
            "engine": str(params.get("engine", "active")),
            "points": len(outcomes),
            "deadlock_rate": deadlock_rate(outcomes),
            "delivered": sum(1 for o in outcomes if o.status == "delivered"),
            "deadlocked": sum(1 for o in outcomes if o.status == "deadlock"),
            "flushes": sum(o.flushes for o in outcomes),
            "total_ticks": sum(o.ticks for o in outcomes),
            "statuses": [o.status for o in outcomes],
        }
    )


def _vc_topology(params: Dict[str, Any]):
    """Build the topology a ``vc_lanes`` point asked for.

    Families cover the paper's direct networks (``torus``,
    ``bshufflenet``) and the multistage interconnects (``clos``,
    ``benes``, ``butterfly``); each takes its own shape parameters with
    small defaults so a grid can name just the family.
    """
    from repro.net import topology as T

    name = params["topology"]
    if name == "torus":
        return T.torus(int(params.get("rows", 4)), int(params.get("cols", 4)))
    if name == "bshufflenet":
        return T.bidirectional_shufflenet(
            int(params.get("p", 2)), int(params.get("k", 3))
        )
    if name == "clos":
        return T.clos(
            spines=int(params.get("spines", 4)),
            leaves=int(params.get("leaves", 8)),
            hosts_per_leaf=int(params.get("hosts_per_leaf", 2)),
        )
    if name == "benes":
        return T.benes(terminals=int(params.get("terminals", 16)))
    if name == "butterfly":
        return T.butterfly(
            k=int(params.get("ary", 2)), n=int(params.get("stages", 4))
        )
    raise ValueError(
        f"unknown vc_lanes topology {name!r}; known: torus, bshufflenet, "
        "clos, benes, butterfly"
    )


@point_kind("vc_lanes")
def _vc_lanes(params: Dict[str, Any]) -> Dict[str, Any]:
    """One flit-level run of the virtual-channel fabric.

    A multicast from the first host to ``fanout`` spread-out destinations
    plus ``unicast_pairs`` staggered cross-traffic unicasts, on one
    (topology family, lanes, multicast scheme) grid point.  Required
    params: ``topology`` (see :func:`_vc_topology`), ``lanes``.
    Optional: the family's shape parameters, ``mode`` (``idle_fill`` /
    ``interrupt`` / ``idle_flush``), ``vc_policy``, ``strategy``
    (``tree``/``path``), ``engine``, ``fanout``, ``unicast_pairs``,
    ``payload_bytes``, ``max_ticks``, ``seed``, ``obs``.

    The record carries the canonical timeline digest (so byte-identity
    across engines/configs is checkable straight from sweep artifacts)
    and per-lane flit/idle totals summed over all multi-lane links --
    the occupancy split the lanes-vs-scheme figure plots.
    """
    from repro.net.flitlevel.crosscheck import timeline_digest, worm_timeline
    from repro.net.flitlevel.network import FlitNetwork

    topo = _vc_topology(params)
    lanes = int(params.get("lanes", 1))
    net = FlitNetwork(
        topo,
        mode=str(params.get("mode", "idle_fill")),
        lanes=lanes,
        vc_policy=str(params.get("vc_policy", "first_free")),
        seed=int(params.get("seed", 1)),
        engine=str(params.get("engine", "active")),
        obs=_point_obs(params),
    )
    hosts = topo.hosts
    fanout = min(int(params.get("fanout", 4)), len(hosts) - 1)
    payload = int(params.get("payload_bytes", 120))
    src = hosts[0]
    stride = max(1, len(hosts) // (fanout + 1))
    dests: list = []
    for i in range(1, len(hosts)):
        cand = hosts[(i * stride) % len(hosts)]
        if cand != src and cand not in dests:
            dests.append(cand)
        if len(dests) == fanout:
            break
    net.send_multicast(
        src, dests, payload_bytes=payload,
        strategy=str(params.get("strategy", "tree")),
    )
    n = len(hosts)
    for i in range(int(params.get("unicast_pairs", 4))):
        u_src = hosts[(2 * i + 1) % n]
        u_dst = hosts[(2 * i + 1 + n // 2) % n]
        if u_src == u_dst:
            continue
        net.send_unicast(
            u_src, u_dst, payload_bytes=payload // 2, start_delay=13 * i
        )
    status = net.run(
        max_ticks=int(params.get("max_ticks", 200_000)),
        raise_on_deadlock=False,
    )
    lane_flits = [0] * lanes
    lane_idles = [0] * lanes
    switch_set = set(topo.switches)
    for lid, wires in net._link_wires.items():
        link = topo.links[lid]
        if link.a not in switch_set or link.b not in switch_set:
            continue  # host-adapter links stay single-lane
        for lane in range(lanes):
            for wire in wires[2 * lane : 2 * lane + 2]:
                lane_flits[lane] += wire.carried
                lane_idles[lane] += wire.idles
    return sanitize_record(
        {
            "topology": params["topology"],
            "switches": len(topo.switches),
            "hosts": len(hosts),
            "lanes": lanes,
            "vc_policy": str(params.get("vc_policy", "first_free")),
            "mode": str(params.get("mode", "idle_fill")),
            "strategy": str(params.get("strategy", "tree")),
            "engine": str(params.get("engine", "active")),
            "fanout": len(dests),
            "status": status,
            "ticks": net.now,
            "flushes": net.flushes,
            "worms_injected": net.worms_injected,
            "worm_deliveries": net.worm_deliveries,
            "digest": timeline_digest(worm_timeline(net, status)),
            "lane_flits": lane_flits,
            "lane_idles": lane_idles,
        }
    )


@point_kind("partitioned_run")
def _partitioned_run(params: Dict[str, Any]) -> Dict[str, Any]:
    """One K-way-partitioned run of a registered :mod:`repro.par` scenario.

    Required params: ``scenario``.  Optional: ``partitions`` (default 2),
    ``engine`` (default ``"array"``), ``backend`` (``"inline"`` /
    ``"process"``), ``verify`` (default True: also run the sequential
    reference and record whether the merged timeline matched it byte for
    byte), ``timing`` (default False: include wall-clock fields, which
    makes the record non-deterministic and therefore cache-unfriendly).
    The sweep layer's injected top-level ``seed`` is ignored -- a
    scenario's seed is part of its registered definition.
    """
    from repro.net.flitlevel.crosscheck import timeline_digest, worm_timeline
    from repro.par import run_partitioned, run_sequential

    name = params["scenario"]
    k = int(params.get("partitions", 2))
    engine = str(params.get("engine", "array"))
    result = run_partitioned(
        name, k, engine=engine, backend=str(params.get("backend", "inline"))
    )
    record = {
        "scenario": name,
        "partitions": k,
        "engine": engine,
        "backend": result.backend,
        "scheme": result.scheme,
        "cut_links": result.cut_links,
        "window": result.window,
        "windows_run": result.windows_run,
        "status": result.status,
        "now": result.now,
        "events": result.events,
        "flits_exchanged": result.flits_exchanged,
        "worm_deliveries": result.timeline["worm_deliveries"],
        "worms_lost": result.timeline["worms_lost"],
        "digest": timeline_digest(result.timeline),
    }
    if params.get("verify", True):
        net, status = run_sequential(name, engine)
        record["sequential_digest"] = timeline_digest(
            worm_timeline(net, status)
        )
        record["match"] = record["digest"] == record["sequential_digest"]
    if params.get("timing"):
        record["wall_seconds"] = result.wall_seconds
        record["critical_path_seconds"] = result.critical_path_seconds
    return sanitize_record(record)


@point_kind("stress_search")
def _stress_search(params: Dict[str, Any]) -> Dict[str, Any]:
    """One shard of a systematic stress search (see :mod:`repro.stress`).

    ``params`` is a :class:`~repro.stress.search.StressConfig` as a dict
    (``scenario``, ``depth``, ``budget``, ``shard_index``/``shard_count``,
    ...).  Registering this as a point kind makes every serve worker a
    model-checking shard: :func:`repro.stress.distributed.run_search_distributed`
    fans the shards across the pool and merges the records with the same
    function the in-process path uses, so the merged report is
    byte-identical either way.  The sweep layer's injected top-level
    ``seed`` is ignored -- a search is already fully determined by its
    config.
    """
    from repro.stress.search import StressConfig, run_search

    config = StressConfig.from_dict(params)
    return sanitize_record(run_search(config))
