"""Parallel sweep execution for the paper's figure reproductions.

Every figure in the evaluation (Figs. 10-13) is a sweep over independent
(scheme × load × proportion) points; this package turns those sweeps from
a serial for-loop into a cached, parallel, deterministic subsystem:

* :class:`~repro.sweep.spec.SweepSpec` -- a cartesian parameter grid with
  deterministic per-point seed derivation;
* :func:`~repro.sweep.runner.run_sweep` -- fans points out over a
  ``multiprocessing`` pool; parallel records are byte-identical to a
  sequential run because every point owns its simulator and seed;
* :class:`~repro.sweep.cache.SweepCache` -- an on-disk result cache keyed
  by config **and** a fingerprint of the simulator sources, so re-runs
  after a code change only simulate what the change could affect;
* :mod:`~repro.sweep.figures` -- the figure grids (shared by benchmarks
  and the CLI);
* ``python -m repro.sweep`` -- the command-line front end, which also
  appends machine-readable entries to ``BENCH_*.json`` trajectory files.
"""

from repro.sweep.cache import SweepCache, code_fingerprint
from repro.sweep.figures import fig10_spec, fig11_spec, fig12_spec
from repro.sweep.points import POINT_KINDS, execute_point, point_kind
from repro.sweep.runner import (
    SweepOutcome,
    append_trajectory,
    default_jobs,
    records_to_results,
    records_to_testbed_results,
    run_sweep,
)
from repro.sweep.spec import SweepPoint, SweepSpec, canonical_key, derive_seed

__all__ = [
    "POINT_KINDS",
    "SweepCache",
    "SweepOutcome",
    "SweepPoint",
    "SweepSpec",
    "append_trajectory",
    "canonical_key",
    "code_fingerprint",
    "default_jobs",
    "derive_seed",
    "execute_point",
    "fig10_spec",
    "fig11_spec",
    "fig12_spec",
    "point_kind",
    "records_to_results",
    "records_to_testbed_results",
    "run_sweep",
]
