"""Sweep specifications for the paper's figures.

Each builder returns the :class:`~repro.sweep.spec.SweepSpec` that
reproduces one figure's parameter grid; the benchmarks and the
``python -m repro.sweep`` CLI share these so there is exactly one
definition of every figure's sweep.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.sweep.spec import SweepSpec

#: Full figure grids (the reduced benchmark grids pass ``loads=`` etc.).
FIG10_LOADS = [0.04, 0.05, 0.06, 0.07, 0.08, 0.09, 0.10, 0.11, 0.12]
FIG10_SCHEME_NAMES = ["hamiltonian-sf", "hamiltonian-ct", "tree-sf"]
FIG11_LOADS = [0.03, 0.04, 0.05, 0.06, 0.07]
FIG11_FRACTIONS = [0.05, 0.10, 0.15, 0.20]
FIG11_SCHEME_NAMES = ["tree", "hamiltonian"]
FIG12_SIZES = [1024, 2048, 4096, 6144, 8192]


def scaled(base: int, scale: float = 1.0, minimum: int = 20) -> int:
    """Scale an effort knob by REPRO_SCALE-style factor with a floor."""
    return max(minimum, int(base * scale))


def fig10_spec(
    loads: Optional[Sequence[float]] = None,
    schemes: Optional[Sequence[str]] = None,
    scale: float = 1.0,
    seed: int = 1,
) -> SweepSpec:
    """Figure 10: three schemes over offered load on the 8x8 torus."""
    return SweepSpec(
        kind="load_point",
        grid={
            "scheme": list(schemes or FIG10_SCHEME_NAMES),
            "load": list(loads or FIG10_LOADS),
        },
        base={
            "topology": "torus",
            "rows": 8,
            "cols": 8,
            "group_count": 10,
            "group_size": 10,
            "multicast_fraction": 0.1,
            "mean_length": 400.0,
            "warmup_deliveries": scaled(150, scale),
            "measure_deliveries": scaled(600, scale, minimum=50),
        },
        base_seed=seed,
    )


def fig11_spec(
    loads: Optional[Sequence[float]] = None,
    fractions: Optional[Sequence[float]] = None,
    schemes: Optional[Sequence[str]] = None,
    scale: float = 1.0,
    seed: int = 1,
) -> SweepSpec:
    """Figure 11: multicast proportions on the 24-node shufflenet."""
    return SweepSpec(
        kind="load_point",
        grid={
            "multicast_fraction": list(fractions or FIG11_FRACTIONS),
            "scheme": list(schemes or FIG11_SCHEME_NAMES),
            "load": list(loads or FIG11_LOADS),
        },
        base={
            "topology": "bidirectional_shufflenet",
            "p": 2,
            "k": 3,
            "prop_delay": 1000.0,
            "group_count": 4,
            "group_size": 6,
            "mean_length": 400.0,
            "warmup_deliveries": scaled(100, scale),
            "measure_deliveries": scaled(400, scale, minimum=50),
        },
        base_seed=seed,
    )


def fig12_spec(
    sizes: Optional[Sequence[int]] = None,
    scale: float = 1.0,
) -> SweepSpec:
    """Figures 12/13: testbed throughput+loss over packet size and senders.

    One spec covers both figures: every point records throughput *and*
    loss, Figure 12 reads the former and Figure 13 the latter.
    """
    return SweepSpec(
        kind="myrinet_throughput",
        grid={
            "packet_size": list(sizes or FIG12_SIZES),
            "all_send": [False, True],
        },
        base={
            "measure_us": 300_000.0 * max(0.2, scale),
        },
    )


FIGURE_SPECS = {
    "fig10": fig10_spec,
    "fig11": fig11_spec,
    "fig12": fig12_spec,
    "fig13": fig12_spec,  # same sweep; Figure 13 reads the loss column
}
