"""Sweep specifications for the paper's figures.

Each builder returns the :class:`~repro.sweep.spec.SweepSpec` that
reproduces one figure's parameter grid; the benchmarks and the
``python -m repro.sweep`` CLI share these so there is exactly one
definition of every figure's sweep.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.sweep.spec import SweepSpec

#: Full figure grids (the reduced benchmark grids pass ``loads=`` etc.).
FIG10_LOADS = [0.04, 0.05, 0.06, 0.07, 0.08, 0.09, 0.10, 0.11, 0.12]
FIG10_SCHEME_NAMES = ["hamiltonian-sf", "hamiltonian-ct", "tree-sf"]
FIG11_LOADS = [0.03, 0.04, 0.05, 0.06, 0.07]
FIG11_FRACTIONS = [0.05, 0.10, 0.15, 0.20]
FIG11_SCHEME_NAMES = ["tree", "hamiltonian"]
FIG12_SIZES = [1024, 2048, 4096, 6144, 8192]


def scaled(base: int, scale: float = 1.0, minimum: int = 20) -> int:
    """Scale an effort knob by REPRO_SCALE-style factor with a floor."""
    return max(minimum, int(base * scale))


def fig10_spec(
    loads: Optional[Sequence[float]] = None,
    schemes: Optional[Sequence[str]] = None,
    scale: float = 1.0,
    seed: int = 1,
) -> SweepSpec:
    """Figure 10: three schemes over offered load on the 8x8 torus."""
    return SweepSpec(
        kind="load_point",
        grid={
            "scheme": list(schemes or FIG10_SCHEME_NAMES),
            "load": list(loads or FIG10_LOADS),
        },
        base={
            "topology": "torus",
            "rows": 8,
            "cols": 8,
            "group_count": 10,
            "group_size": 10,
            "multicast_fraction": 0.1,
            "mean_length": 400.0,
            "warmup_deliveries": scaled(150, scale),
            "measure_deliveries": scaled(600, scale, minimum=50),
        },
        base_seed=seed,
    )


def fig11_spec(
    loads: Optional[Sequence[float]] = None,
    fractions: Optional[Sequence[float]] = None,
    schemes: Optional[Sequence[str]] = None,
    scale: float = 1.0,
    seed: int = 1,
) -> SweepSpec:
    """Figure 11: multicast proportions on the 24-node shufflenet."""
    return SweepSpec(
        kind="load_point",
        grid={
            "multicast_fraction": list(fractions or FIG11_FRACTIONS),
            "scheme": list(schemes or FIG11_SCHEME_NAMES),
            "load": list(loads or FIG11_LOADS),
        },
        base={
            "topology": "bidirectional_shufflenet",
            "p": 2,
            "k": 3,
            "prop_delay": 1000.0,
            "group_count": 4,
            "group_size": 6,
            "mean_length": 400.0,
            "warmup_deliveries": scaled(100, scale),
            "measure_deliveries": scaled(400, scale, minimum=50),
        },
        base_seed=seed,
    )


def fig12_spec(
    sizes: Optional[Sequence[int]] = None,
    scale: float = 1.0,
) -> SweepSpec:
    """Figures 12/13: testbed throughput+loss over packet size and senders.

    One spec covers both figures: every point records throughput *and*
    loss, Figure 12 reads the former and Figure 13 the latter.
    """
    return SweepSpec(
        kind="myrinet_throughput",
        grid={
            "packet_size": list(sizes or FIG12_SIZES),
            "all_send": [False, True],
        },
        base={
            "measure_us": 300_000.0 * max(0.2, scale),
        },
    )


#: Fault-campaign grid: availability over load as link failures mount.
FAULTS_LOADS = [0.04, 0.06, 0.08]
FAULTS_LINK_FAILURES = [0, 1, 2]
#: Repair-campaign grid: recovery cost as injected losses mount.
REPAIR_DROPS = [0, 3, 6, 9]


def faults_spec(
    loads: Optional[Sequence[float]] = None,
    link_failures: Optional[Sequence[int]] = None,
    scale: float = 1.0,
    seed: int = 1,
) -> SweepSpec:
    """Availability campaign: delivery ratio / reconvergence over load and
    injected link-failure count on the 8x8 torus (the robustness
    counterpart of the Figure 10 grid)."""
    return SweepSpec(
        kind="fault_campaign",
        grid={
            "link_failures": list(link_failures or FAULTS_LINK_FAILURES),
            "load": list(loads or FAULTS_LOADS),
        },
        base={
            "rows": 8,
            "cols": 8,
            "scheme": "hamiltonian-sf",
            "multicast_fraction": 0.1,
            "mean_length": 400.0,
            "group_count": 10,
            "group_size": 10,
            "downtime": 100_000.0,
            "warmup_time": 50_000.0 * max(0.4, scale),
            "measure_time": 400_000.0 * max(0.2, scale),
        },
        base_seed=seed,
    )


def repair_spec(
    drops: Optional[Sequence[int]] = None,
    scale: float = 1.0,
    seed: int = 1,
) -> SweepSpec:
    """Loss-recovery campaign: [FJM+95] transport repair under injected
    worm drops, measuring total recovery and repair-byte overhead."""
    return SweepSpec(
        kind="repair_campaign",
        grid={
            "drops": list(drops or REPAIR_DROPS),
        },
        base={
            "rows": 4,
            "cols": 4,
            "members_count": 6,
            "messages": scaled(20, scale, minimum=10),
            "recv_faults": 1,
        },
        base_seed=seed,
    )


#: Virtual-channel grid: lanes vs switch-level multicast scheme.
VC_LANES = [1, 2, 4]
VC_MODES = ["idle_fill", "interrupt", "idle_flush"]
VC_TOPOLOGIES = ["torus", "clos", "butterfly"]


def vc_lanes_spec(
    lanes: Optional[Sequence[int]] = None,
    modes: Optional[Sequence[str]] = None,
    topologies: Optional[Sequence[str]] = None,
    engine: str = "active",
    vc_policy: str = "first_free",
    scale: float = 1.0,
    seed: int = 7,
) -> SweepSpec:
    """Lanes-vs-scheme grid: one multicast plus cross traffic per point,
    swept over virtual-channel count, switch-level multicast scheme, and
    topology family (direct torus vs multistage Clos/butterfly).  The
    figure reads completion ticks by (lanes, mode) and the per-lane
    occupancy split that shows the extra lanes actually carrying flits."""
    return SweepSpec(
        kind="vc_lanes",
        grid={
            "topology": list(topologies or VC_TOPOLOGIES),
            "mode": list(modes or VC_MODES),
            "lanes": list(lanes or VC_LANES),
        },
        base={
            "engine": engine,
            "vc_policy": vc_policy,
            "fanout": 4,
            "unicast_pairs": 6,
            "payload_bytes": scaled(120, scale, minimum=40),
            "max_ticks": 200_000,
        },
        base_seed=seed,
    )


FIGURE_SPECS = {
    "fig10": fig10_spec,
    "fig11": fig11_spec,
    "fig12": fig12_spec,
    "fig13": fig12_spec,  # same sweep; Figure 13 reads the loss column
    "faults": faults_spec,
    "repair": repair_spec,
    "vc": vc_lanes_spec,
}
