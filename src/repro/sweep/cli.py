"""``python -m repro.sweep`` — run figure sweeps in parallel from the shell.

Examples
--------
Run the full Figure 10 grid on all cores, save records + trajectory::

    python -m repro.sweep --figure fig10 --out results/fig10.json

Re-run after a code change (only changed points simulate, thanks to the
cache)::

    python -m repro.sweep --figure fig10 --cache-dir results/sweep_cache

Check the parallel path against the sequential one point-for-point::

    python -m repro.sweep --figure fig11 --scale 0.2 --verify-sequential
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional

from repro.sweep.cache import SweepCache, code_fingerprint
from repro.sweep.figures import FIGURE_SPECS
from repro.sweep.runner import (
    append_trajectory,
    default_jobs,
    records_to_results,
    records_to_testbed_results,
    run_sweep,
)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.sweep",
        description="Parallel sweep runner for the paper's figure grids.",
    )
    parser.add_argument(
        "--figure",
        required=True,
        choices=sorted(FIGURE_SPECS),
        help="which figure's sweep to run",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        help="worker processes (default: REPRO_JOBS env or CPU count)",
    )
    parser.add_argument(
        "--scale",
        type=float,
        default=1.0,
        help="REPRO_SCALE-style effort multiplier (default 1.0)",
    )
    parser.add_argument("--seed", type=int, default=1, help="master seed")
    parser.add_argument(
        "--out",
        type=Path,
        default=None,
        help="write result records to this JSON file",
    )
    parser.add_argument(
        "--bench-out",
        type=Path,
        default=Path("BENCH_sweep.json"),
        help="trajectory file to append a run entry to (default BENCH_sweep.json)",
    )
    parser.add_argument(
        "--no-bench",
        action="store_true",
        help="skip writing the trajectory entry",
    )
    parser.add_argument(
        "--cache-dir",
        type=Path,
        default=None,
        help="enable the on-disk result cache rooted here",
    )
    parser.add_argument(
        "--dry-run",
        action="store_true",
        help="list the sweep's points without simulating",
    )
    parser.add_argument(
        "--verify-sequential",
        action="store_true",
        help="re-run sequentially and fail unless records match byte-for-byte",
    )
    parser.add_argument(
        "--obs",
        action="store_true",
        help="embed a per-point observability metrics snapshot in each "
        "record and a record-order merge in the --out payload",
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    builder = FIGURE_SPECS[args.figure]
    if args.figure in ("fig12", "fig13"):
        spec = builder(scale=args.scale)  # testbed sweep is deterministic, no seed
    else:
        spec = builder(scale=args.scale, seed=args.seed)
    if args.obs:
        spec.base["obs"] = True
    print(spec.describe())

    if args.dry_run:
        for point in spec.points():
            print(f"  [{point.index:3d}] seed={point.seed} {point.key}")
        return 0

    cache = None
    if args.cache_dir is not None:
        cache = SweepCache(args.cache_dir)
        print(f"cache: {cache.root} (code {cache.code_hash[:12]})")

    outcome = run_sweep(spec, jobs=args.jobs, cache=cache, progress=print)
    print(
        f"done: {len(outcome.records)} points in {outcome.wall_time:.2f}s "
        f"({outcome.workers} workers, {outcome.cached} cached)"
    )

    if args.verify_sequential:
        sequential = run_sweep(spec, jobs=1, progress=print)
        if sequential.records != outcome.records:
            print("FAIL: parallel records differ from sequential records")
            return 1
        print(
            f"verified: parallel == sequential, speedup "
            f"{sequential.wall_time / outcome.wall_time:.2f}x"
        )

    if spec.kind == "load_point":
        from repro.analysis import format_results_table

        print(format_results_table(records_to_results(outcome.records)))
    elif spec.kind == "fault_campaign":
        from repro.analysis import format_availability_table

        print(format_availability_table(outcome.records))
    elif spec.kind == "repair_campaign":
        from repro.analysis import format_repair_table

        print(format_repair_table(outcome.records))
    elif spec.kind == "vc_lanes":
        from repro.analysis import format_table

        rows = [
            [
                r["topology"],
                r["mode"],
                r["lanes"],
                r["status"],
                r["ticks"],
                "/".join(str(n) for n in r["lane_flits"]),
            ]
            for r in outcome.records
        ]
        print(format_table(
            ["topology", "scheme", "lanes", "status", "ticks", "lane flits"],
            rows,
        ))
    else:
        from repro.analysis import format_table

        results = records_to_testbed_results(outcome.records)
        rows = [
            [
                r.packet_size,
                "all" if r.all_send else "single",
                f"{r.throughput_mbps_per_host:.1f}",
                f"{r.loss_rate_per_host:.1%}",
            ]
            for r in results
        ]
        print(format_table(["bytes", "senders", "Mb/s per host", "loss"], rows))

    if args.out is not None:
        args.out.parent.mkdir(parents=True, exist_ok=True)
        payload = {
            "meta": {
                "figure": args.figure,
                "scale": args.scale,
                "seed": args.seed,
                "code": code_fingerprint(),
                "workers": outcome.workers,
                "wall_time_s": round(outcome.wall_time, 3),
            },
            "results": outcome.records,
        }
        if args.obs:
            payload["obs"] = outcome.merged_obs()
        args.out.write_text(json.dumps(payload, indent=2, sort_keys=True))
        print(f"records written to {args.out}")

    if not args.no_bench:
        path = append_trajectory(
            args.bench_out,
            outcome.bench_entry(label=args.figure, scale=args.scale),
        )
        print(f"trajectory entry appended to {path}")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
