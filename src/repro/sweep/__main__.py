"""Entry point for ``python -m repro.sweep``."""

import sys

from repro.sweep.cli import main

sys.exit(main())
