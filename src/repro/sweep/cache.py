"""On-disk sweep result cache keyed by configuration *and* code.

A cache entry's key hashes three things: the point's canonical parameter
key (config), its seed, and a fingerprint of every ``repro`` source file
(code).  Re-running a sweep after editing only docs or unrelated repos hits
the cache for every point; editing any simulator source invalidates all
entries at once — conservative, but it can never serve results produced by
stale physics.

Entries are one small JSON file each, sharded by key prefix, so the cache
is safe to prune with ``rm`` and friendly to incremental rsync/CI caching.
"""

from __future__ import annotations

import hashlib
import json
import os
import uuid
from pathlib import Path
from typing import Any, Dict, Optional

from repro.sweep.spec import SweepPoint

_code_fingerprint: Optional[str] = None


def code_fingerprint() -> str:
    """SHA-256 over all ``repro`` package sources (memoized per process)."""
    global _code_fingerprint
    if _code_fingerprint is None:
        import repro

        root = Path(repro.__file__).resolve().parent
        digest = hashlib.sha256()
        for path in sorted(root.rglob("*.py")):
            digest.update(str(path.relative_to(root)).encode())
            digest.update(b"\0")
            digest.update(path.read_bytes())
            digest.update(b"\0")
        _code_fingerprint = digest.hexdigest()
    return _code_fingerprint


class SweepCache:
    """Point-result cache rooted at a directory."""

    def __init__(self, root: Path, code_hash: Optional[str] = None) -> None:
        self.root = Path(root)
        self.code_hash = code_hash or code_fingerprint()
        self.hits = 0
        self.misses = 0

    def key(self, point: SweepPoint) -> str:
        payload = f"{self.code_hash}|{point.kind}|{point.key}|{point.seed}"
        return hashlib.sha256(payload.encode()).hexdigest()

    def _path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    def get(self, point: SweepPoint) -> Optional[Dict[str, Any]]:
        """The cached record for ``point``, or None."""
        path = self._path(self.key(point))
        try:
            payload = json.loads(path.read_text())
            record = payload["record"]
        except (FileNotFoundError, json.JSONDecodeError, KeyError, TypeError):
            # A structurally wrong payload (valid JSON but no "record" key,
            # or not a dict at all) is as much a miss as a corrupt file.
            self.misses += 1
            return None
        self.hits += 1
        return record

    def put(self, point: SweepPoint, record: Dict[str, Any]) -> None:
        """Store the result record for ``point``."""
        path = self._path(self.key(point))
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = {
            "kind": point.kind,
            "params": point.params,
            "seed": point.seed,
            "code": self.code_hash,
            "record": record,
        }
        # Unique per-writer staging name: concurrent processes (sweep pools,
        # serve workers) writing the same key must not interleave partial
        # writes in a shared .tmp before the atomic replace.
        tmp = path.with_name(f"{path.name}.{os.getpid()}.{uuid.uuid4().hex[:8]}.tmp")
        tmp.write_text(json.dumps(payload, sort_keys=True, default=repr))
        tmp.replace(path)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<SweepCache {self.root} hits={self.hits} misses={self.misses}>"
