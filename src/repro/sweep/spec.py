"""Sweep specifications: cartesian parameter grids with deterministic seeds.

A :class:`SweepSpec` names a point *kind* (an executor registered in
:mod:`repro.sweep.points`), a set of fixed base parameters, and a grid of
axes whose cartesian product enumerates the sweep's points.  Every point
gets a stable string *key* (canonical JSON of its parameters) and a
deterministic seed, so the same spec always produces the same points in the
same order — regardless of how many workers later execute them.
"""

from __future__ import annotations

import hashlib
import itertools
import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Sequence


def canonical_key(params: Mapping[str, Any]) -> str:
    """A stable, order-independent string identity for a parameter dict."""
    return json.dumps(params, sort_keys=True, separators=(",", ":"), default=repr)


def derive_seed(base_seed: int, key: str) -> int:
    """Deterministic per-point seed: hash of the master seed and point key.

    Mirrors the substream discipline of :class:`repro.sim.rng.RandomStreams`
    (hash-derived, order-independent), so adding, removing or reordering
    points never perturbs the seed — and hence the sample path — of any
    other point.
    """
    digest = hashlib.sha256(f"{base_seed}|{key}".encode()).digest()
    return int.from_bytes(digest[:8], "big") & (2**63 - 1)


@dataclass(frozen=True)
class SweepPoint:
    """One executable point of a sweep."""

    index: int
    kind: str
    params: Dict[str, Any]
    seed: int
    key: str

    def executor_params(self) -> Dict[str, Any]:
        """Parameters handed to the point executor (seed folded in)."""
        merged = dict(self.params)
        merged["seed"] = self.seed
        return merged


@dataclass
class SweepSpec:
    """A cartesian sweep over simulation parameters.

    Parameters
    ----------
    kind:
        Name of the point executor (see :mod:`repro.sweep.points`).
    grid:
        Axis name -> sequence of values.  Points enumerate the cartesian
        product with the *first* axis varying slowest (insertion order), so
        ``{"scheme": [...], "load": [...]}`` reproduces the classic
        scheme-outer / load-inner sweep loop.
    base:
        Parameters shared by every point.
    base_seed:
        Master seed.  With ``derive_seeds=False`` (the default) every point
        runs with ``base_seed`` directly — the paper's common-random-numbers
        discipline, where different schemes at the same seed see identical
        group layouts.  With ``derive_seeds=True`` each point's seed is
        hashed from ``(base_seed, point key)`` for independent replications.
    derive_seeds:
        Select the per-point seed derivation described above.  A point may
        always override its seed explicitly via a ``seed`` grid axis or
        base parameter.
    """

    kind: str
    grid: Dict[str, Sequence[Any]] = field(default_factory=dict)
    base: Dict[str, Any] = field(default_factory=dict)
    base_seed: int = 1
    derive_seeds: bool = False

    def __post_init__(self) -> None:
        overlap = set(self.grid) & set(self.base)
        if overlap:
            raise ValueError(f"axes shadow base parameters: {sorted(overlap)}")
        for axis, values in self.grid.items():
            if not isinstance(values, (list, tuple)):
                raise TypeError(f"grid axis {axis!r} must be a list/tuple")
            if not values:
                raise ValueError(f"grid axis {axis!r} is empty")

    def __len__(self) -> int:
        count = 1
        for values in self.grid.values():
            count *= len(values)
        return count

    def points(self) -> List[SweepPoint]:
        """Enumerate all points, deterministically ordered and seeded."""
        axes = list(self.grid)
        combos = itertools.product(*(self.grid[axis] for axis in axes))
        points = []
        for index, combo in enumerate(combos):
            params = dict(self.base)
            params.update(zip(axes, combo))
            key = canonical_key(params)
            if "seed" in params:
                seed = int(params["seed"])
            elif self.derive_seeds:
                seed = derive_seed(self.base_seed, key)
            else:
                seed = self.base_seed
            points.append(
                SweepPoint(index=index, kind=self.kind, params=params, seed=seed, key=key)
            )
        return points

    def describe(self) -> str:
        """One-line summary for logs and CLI dry runs."""
        axes = ", ".join(f"{axis}×{len(vals)}" for axis, vals in self.grid.items())
        return f"SweepSpec(kind={self.kind!r}, {len(self)} points: {axes or 'single'})"
