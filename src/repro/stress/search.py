"""The systematic fault/timing search driver.

Forward search over *scheduled event times*: starting from the fault-free
baseline, the driver extends partial fault schedules one event at a time,
drawing injection times from the scenario's protocol-phase anchors (plus
phase-relative extension times derived from already-injected events) and
event types from its fault vocabulary.  Each node -- one complete
schedule -- is executed from scratch on the deterministic simulator, so
a node's outcome depends only on its schedule, never on search order.

Pruning: a node's *frontier digest* summarizes protocol state at its
last fault.  Extensions only add events at later times, so two nodes
with equal digests have equivalent futures; only the first is expanded
(see :mod:`repro.stress.state`).  Violating nodes are recorded and never
expanded (the violation is the point), then shrunk to minimal
counterexamples via :mod:`repro.stress.shrink`.

Sharding: depth-1 root events are dealt round-robin across
``shard_count`` shards; each shard explores its roots' full subtrees
under its own budget.  The in-process entry point
(:func:`run_search_sharded`) runs shards sequentially and merges with
:func:`merge_shard_reports` -- the *same* merge the serve-distributed
path uses -- so both paths produce byte-identical reports.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.faults.schedule import FaultEvent, FaultSchedule
from repro.stress.scenarios import build_scenario
from repro.stress.shrink import shrink_counterexample
from repro.stress.state import Violation

REPORT_FORMAT = "repro.stress.report/v1"


@dataclass(frozen=True)
class StressConfig:
    """Everything that determines a search (and hence its report bytes)."""

    scenario: str
    params: Optional[Mapping[str, Any]] = None
    depth: int = 2
    budget: int = 400
    order: str = "dfs"  # dfs | bfs
    prune: bool = True
    shrink: bool = True
    narrow: bool = True
    max_counterexamples: int = 16
    shard_index: int = 0
    shard_count: int = 1

    def __post_init__(self) -> None:
        if self.order not in ("dfs", "bfs"):
            raise ValueError(f"order must be 'dfs' or 'bfs', got {self.order!r}")
        if self.depth < 1:
            raise ValueError(f"depth must be >= 1, got {self.depth}")
        if self.budget < 1:
            raise ValueError(f"budget must be >= 1, got {self.budget}")
        if not 0 <= self.shard_index < self.shard_count:
            raise ValueError(
                f"shard_index {self.shard_index} outside [0, {self.shard_count})"
            )

    def to_dict(self) -> Dict[str, Any]:
        # Params go through a canonical-JSON round trip so the in-process
        # and serve-distributed paths (whose params cross an HTTP/JSON
        # boundary) echo byte-identical structures in their reports.
        import json

        from repro.stress.state import canonical_json

        return {
            "scenario": self.scenario,
            "params": json.loads(canonical_json(dict(self.params)))
            if self.params
            else {},
            "depth": self.depth,
            "budget": self.budget,
            "order": self.order,
            "prune": self.prune,
            "shrink": self.shrink,
            "narrow": self.narrow,
            "max_counterexamples": self.max_counterexamples,
            "shard_index": self.shard_index,
            "shard_count": self.shard_count,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "StressConfig":
        known = {f for f in cls.__dataclass_fields__}  # noqa: C416
        return cls(**{k: v for k, v in data.items() if k in known})


@dataclass
class _Node:
    events: Tuple[FaultEvent, ...]
    extra_times: Tuple[float, ...] = ()

    @property
    def last_time(self) -> float:
        return self.events[-1].time if self.events else 0.0


def _events_json(events: Sequence[FaultEvent]) -> List[Dict[str, Any]]:
    return [ev.to_dict() for ev in FaultSchedule(events).events]


def run_search(config: StressConfig, obs=None) -> Dict[str, Any]:
    """Explore one shard of the search space; returns the shard report."""
    scenario = build_scenario(config.scenario, config.params)
    probe = scenario.probe()
    anchors = probe.anchors
    candidates = probe.candidates

    # Depth-1 roots, in deterministic (time, vocabulary) order, dealt
    # round-robin to shards.
    roots: List[_Node] = []
    for i, (t, cand) in enumerate(
        (t, cand) for t in anchors for cand in candidates
    ):
        if i % config.shard_count != config.shard_index:
            continue
        event = FaultEvent(t, cand.kind, cand.target, cand.param)
        roots.append(
            _Node((event,), tuple(scenario.extension_times(event)))
        )

    # DFS pops from the right: reverse so the earliest root is explored
    # first (BFS pops from the left and keeps the natural order).
    frontier: deque = deque(
        reversed(roots) if config.order == "dfs" else roots
    )
    seen = {probe.baseline.frontier_digest}
    explored = 0
    pruned = 0
    truncated = False
    found: Dict[Tuple[str, str], Dict[str, Any]] = {}

    while frontier:
        if explored >= config.budget:
            truncated = True
            break
        node = frontier.popleft() if config.order == "bfs" else frontier.pop()
        outcome = scenario.execute(FaultSchedule(node.events))
        explored += 1
        if outcome.violations:
            if obs is not None:
                obs.stress_state(False)
            for violation in outcome.violations:
                if violation.key() in found:
                    continue
                if obs is not None:
                    obs.stress_violation(violation.invariant)
                found[violation.key()] = {
                    "violation": violation,
                    "discovery": list(node.events),
                    "trace": list(outcome.trace),
                }
            continue  # violating nodes are not expanded
        digest = outcome.frontier_digest
        if config.prune and digest in seen:
            pruned += 1
            if obs is not None:
                obs.stress_state(True)
            continue
        seen.add(digest)
        if obs is not None:
            obs.stress_state(False)
        if len(node.events) >= config.depth:
            continue
        children: List[_Node] = []
        times = sorted(
            {t for t in anchors if t >= node.last_time}
            | {t for t in node.extra_times if t >= node.last_time}
        )
        for t in times:
            for cand in candidates:
                event = FaultEvent(t, cand.kind, cand.target, cand.param)
                children.append(
                    _Node(
                        node.events + (event,),
                        node.extra_times
                        + tuple(scenario.extension_times(event)),
                    )
                )
        if config.order == "bfs":
            frontier.extend(children)
        else:
            # Reversed so the earliest candidate is popped first.
            frontier.extend(reversed(children))
    shrink_runs = 0
    counterexamples: List[Dict[str, Any]] = []
    for key in sorted(found):
        entry = found[key]
        discovery = entry["discovery"]
        minimal = list(discovery)
        if config.shrink and len(counterexamples) < config.max_counterexamples:
            minimal, runs = shrink_counterexample(
                scenario,
                discovery,
                key,
                anchors,
                narrow=config.narrow,
            )
            shrink_runs += runs
        replay = scenario.execute(FaultSchedule(minimal))
        violation: Violation = entry["violation"]
        counterexamples.append(
            {
                "violation": violation.to_dict(),
                "discovery": _events_json(discovery),
                "discovery_events": len(discovery),
                "schedule": _events_json(minimal),
                "schedule_events": len(minimal),
                "final_digest": replay.final_digest,
                "trace": list(replay.trace),
            }
        )

    return {
        "format": REPORT_FORMAT,
        "config": config.to_dict(),
        "scenario_params": scenario.canonical_params(),
        "anchors": [float(t) for t in anchors],
        "candidates": [[c.kind, c.target, c.param] for c in candidates],
        "baseline_digest": probe.baseline.final_digest,
        "explored": explored,
        "pruned": pruned,
        "distinct_states": len(seen),
        "truncated": truncated,
        "shrink_runs": shrink_runs,
        "violations": counterexamples,
    }


def merge_shard_reports(reports: Sequence[Dict[str, Any]]) -> Dict[str, Any]:
    """Deterministically merge shard reports into the final report.

    Counters add; violations deduplicate by (invariant, subject) key,
    keeping the entry from the lowest shard index, and sort by key.  The
    in-process and serve-distributed paths both finish here, which is
    what makes their reports byte-identical.
    """
    if not reports:
        raise ValueError("no shard reports to merge")
    ordered = sorted(reports, key=lambda r: r["config"]["shard_index"])
    base = ordered[0]
    merged_violations: Dict[Tuple[str, str], Dict[str, Any]] = {}
    for report in ordered:
        if report["format"] != REPORT_FORMAT:
            raise ValueError(f"unexpected report format {report['format']!r}")
        for entry in report["violations"]:
            key = (entry["violation"]["invariant"], entry["violation"]["subject"])
            if key not in merged_violations:
                merged_violations[key] = entry
    config = dict(base["config"])
    config.pop("shard_index")
    return {
        "format": REPORT_FORMAT,
        "config": config,
        "scenario_params": base["scenario_params"],
        "anchors": base["anchors"],
        "candidates": base["candidates"],
        "baseline_digest": base["baseline_digest"],
        "explored": sum(r["explored"] for r in ordered),
        "pruned": sum(r["pruned"] for r in ordered),
        "distinct_states": sum(r["distinct_states"] for r in ordered),
        "truncated": any(r["truncated"] for r in ordered),
        "shrink_runs": sum(r["shrink_runs"] for r in ordered),
        "shards": len(ordered),
        "violations": [
            merged_violations[key] for key in sorted(merged_violations)
        ],
    }


def run_search_sharded(config: StressConfig, obs=None) -> Dict[str, Any]:
    """In-process search: run every shard sequentially, then merge.

    With ``shard_count == 1`` this is plain single-process search; with
    more shards it is the local twin of the serve-distributed path.
    """
    reports = [
        run_search(
            StressConfig(**{**config.to_dict(), "shard_index": i}), obs=obs
        )
        for i in range(config.shard_count)
    ]
    return merge_shard_reports(reports)
