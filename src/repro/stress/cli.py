"""``python -m repro.stress`` — systematic fault search from the shell.

Examples
--------
Search the default flit-level scenario and write every counterexample
found under ``out/``::

    python -m repro.stress search --scenario flit_multicast \
        --depth 2 --budget 200 --out out/

Replay a stored counterexample, verifying the same violation (and the
same final-state digest) recurs::

    python -m repro.stress replay out/delivery-message-0.json

List scenarios and their fault vocabularies::

    python -m repro.stress scenarios
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional

from repro.stress.counterexample import (
    counterexample_dict,
    load_counterexample,
    render,
    replay,
    save_counterexample,
)
from repro.stress.scenarios import SCENARIOS, build_scenario
from repro.stress.search import StressConfig, run_search_sharded
from repro.stress.state import canonical_json


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.stress",
        description="Systematic worst-case fault/timing search "
        "with replayable minimal counterexamples.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    search = sub.add_parser(
        "search", help="explore fault schedules against a scenario"
    )
    search.add_argument(
        "--scenario", default="flit_multicast", choices=sorted(SCENARIOS)
    )
    search.add_argument(
        "--params", default=None,
        help="scenario parameter overrides as a JSON object",
    )
    search.add_argument("--depth", type=int, default=2,
                        help="max faults per schedule")
    search.add_argument("--budget", type=int, default=200,
                        help="max schedules executed per shard")
    search.add_argument("--order", default="dfs", choices=("dfs", "bfs"))
    search.add_argument("--no-prune", action="store_true",
                        help="disable state-hash pruning (naive enumeration)")
    search.add_argument("--no-shrink", action="store_true",
                        help="keep discovery schedules; skip delta-debugging")
    search.add_argument("--shards", type=int, default=1,
                        help="shard count (sequential in process)")
    search.add_argument("--out", type=Path, default=None,
                        help="directory for counterexample JSON artifacts")
    search.add_argument("--report", type=Path, default=None,
                        help="write the full canonical-JSON report here")
    search.add_argument(
        "--expect-violation", action="store_true",
        help="exit non-zero unless at least one violation was found "
        "(CI seeded-violation guard)",
    )

    rep = sub.add_parser(
        "replay", help="re-run a stored counterexample and verify it"
    )
    rep.add_argument("counterexample", type=Path, nargs="+")
    rep.add_argument("--quiet", action="store_true",
                     help="suppress per-counterexample detail")

    sub.add_parser("scenarios", help="list scenarios and their vocabularies")
    return parser


def _cmd_search(args: argparse.Namespace) -> int:
    params = json.loads(args.params) if args.params else None
    config = StressConfig(
        scenario=args.scenario,
        params=params,
        depth=args.depth,
        budget=args.budget,
        order=args.order,
        prune=not args.no_prune,
        shrink=not args.no_shrink,
        shard_count=args.shards,
    )
    report = run_search_sharded(config)
    print(
        f"searched {report['explored']} schedules "
        f"({report['pruned']} pruned, "
        f"{report['distinct_states']} distinct states"
        f"{', truncated' if report['truncated'] else ''}): "
        f"{len(report['violations'])} violation(s)"
    )
    for entry in report["violations"]:
        v = entry["violation"]
        print(
            f"  {v['invariant']} on {v['subject']}: {v['detail']} "
            f"[{entry['schedule_events']} event(s), "
            f"discovered with {entry['discovery_events']}]"
        )
    if args.out is not None:
        args.out.mkdir(parents=True, exist_ok=True)
        for entry in report["violations"]:
            v = entry["violation"]
            name = f"{v['invariant']}-{v['subject']}.json"
            path = args.out / name
            save_counterexample(
                str(path),
                counterexample_dict(
                    args.scenario, report["scenario_params"], entry
                ),
            )
            print(f"  wrote {path}")
    if args.report is not None:
        args.report.parent.mkdir(parents=True, exist_ok=True)
        args.report.write_text(canonical_json(report) + "\n")
        print(f"report: {args.report}")
    if args.expect_violation and not report["violations"]:
        print("error: expected at least one violation, found none",
              file=sys.stderr)
        return 1
    return 0


def _cmd_replay(args: argparse.Namespace) -> int:
    failures = 0
    for path in args.counterexample:
        counterexample = load_counterexample(str(path))
        ok, problems, _ = replay(counterexample)
        status = "ok" if ok else "FAILED"
        print(f"{path}: {status}")
        if not args.quiet:
            print(render(counterexample))
        for problem in problems:
            print(f"  {problem}", file=sys.stderr)
        failures += 0 if ok else 1
    return 1 if failures else 0


def _cmd_scenarios() -> int:
    for name in sorted(SCENARIOS):
        scenario = build_scenario(name)
        kinds = ", ".join(scenario.params["kinds"])
        print(f"{name}: kinds [{kinds}]")
        for key in sorted(scenario.defaults):
            print(f"    {key} = {scenario.defaults[key]!r}")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "search":
        return _cmd_search(args)
    if args.command == "replay":
        return _cmd_replay(args)
    return _cmd_scenarios()
