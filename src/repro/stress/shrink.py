"""Counterexample minimization: delta-debugging + backward time narrowing.

A discovery schedule often carries events that merely *changed state*
along the search path without contributing to the violation.  ``ddmin``
[Zeller/Hildebrandt] strips them: it is the classic divide-and-conquer
minimization over the event list, with the oracle "does this subset
still reproduce the same violation key?".  ``narrow_times`` then walks
each surviving event backward through the anchor list to the earliest
injection time that still reproduces -- the backward half of the
forward-backward search of arXiv cs/0007005, which anchors the
counterexample to the earliest protocol phase that matters.

Both are deterministic: subset order and probe order are fixed, so the
same discovery schedule always shrinks to the same minimal schedule.
"""

from __future__ import annotations

from typing import Callable, List, Sequence, Tuple

from repro.faults.schedule import FaultEvent, FaultSchedule


def ddmin(
    events: Sequence[FaultEvent],
    reproduces: Callable[[Sequence[FaultEvent]], bool],
) -> Tuple[List[FaultEvent], int]:
    """Minimize ``events`` to a 1-minimal subsequence still reproducing.

    Returns ``(minimal_events, probe_runs)``.  ``reproduces`` must be
    deterministic and true for ``events`` itself.  1-minimal means
    removing any single remaining event breaks reproduction.
    """
    current = list(events)
    runs = 0
    if len(current) <= 1:
        return current, runs
    granularity = 2
    while len(current) >= 2:
        size = len(current) // granularity
        chunks = [
            current[i : i + size] for i in range(0, len(current), size)
        ]
        reduced = False
        # Try each complement (drop one chunk) in deterministic order.
        for i in range(len(chunks)):
            candidate = [ev for j, chunk in enumerate(chunks) if j != i for ev in chunk]
            if not candidate:
                continue
            runs += 1
            if reproduces(candidate):
                current = candidate
                granularity = max(granularity - 1, 2)
                reduced = True
                break
        if not reduced:
            if granularity >= len(current):
                break
            granularity = min(granularity * 2, len(current))
    return current, runs


def narrow_times(
    events: Sequence[FaultEvent],
    anchors: Sequence[float],
    reproduces: Callable[[Sequence[FaultEvent]], bool],
) -> Tuple[List[FaultEvent], int]:
    """Move each event to the earliest anchor that still reproduces.

    Events are visited in order; each is re-timed independently against
    the ascending anchor list (times strictly before the event's current
    time).  Returns ``(narrowed_events, probe_runs)``.
    """
    current = list(events)
    runs = 0
    for idx in range(len(current)):
        original = current[idx]
        for t in sorted(anchors):
            if t >= original.time:
                break
            candidate = list(current)
            candidate[idx] = FaultEvent(
                t, original.kind, original.target, original.param
            )
            # Re-sorting is FaultSchedule's job; pass events as-is.
            runs += 1
            if reproduces(candidate):
                current = candidate
                break
    return current, runs


def shrink_counterexample(
    scenario,
    discovery: Sequence[FaultEvent],
    violation_key: Tuple[str, str],
    anchors: Sequence[float],
    narrow: bool = True,
) -> Tuple[List[FaultEvent], int]:
    """Full shrink pipeline for one violation: ddmin, then time narrowing.

    ``scenario`` is a :class:`~repro.stress.scenarios.StressScenario`;
    the oracle re-executes it and checks that the same
    ``(invariant, subject)`` key is still violated.
    """
    runs = 0

    def reproduces(events: Sequence[FaultEvent]) -> bool:
        outcome = scenario.execute(FaultSchedule(events))
        return any(v.key() == tuple(violation_key) for v in outcome.violations)

    minimal, n = ddmin(discovery, reproduces)
    runs += n
    if narrow:
        minimal, n = narrow_times(minimal, anchors, reproduces)
        runs += n
    return minimal, runs
