"""Stress scenarios: deterministic protocol runs the search perturbs.

A scenario packages (a) a small deterministic workload on one of the
repo's simulators, (b) the *fault vocabulary* the search may inject into
it, (c) *anchors* -- candidate injection times derived from a baseline
run, aligned with protocol phases (just after injection, mid-worm, just
before completion, during reconfiguration) -- and (d) the invariant
oracle evaluated after quiescence.

``execute(schedule)`` builds everything fresh, replays the schedule, and
returns an :class:`Outcome` whose state dicts are keyed purely by per-run
*ordinals* (message index in the send plan), never by worm/message ids:
those come from module-global counters and would differ between runs in
one process, breaking cross-process byte-identity of search reports.

Two scenarios ship today:

``flit_multicast``
    Flit-level switch multicasts (scheme 3 ``idle_flush`` by default) on
    a small ring; vocabulary ``link_fail`` / ``link_repair`` /
    ``worm_drop``.  The classic finding is a link death mid-worm killing
    a worm the flush logic never retransmits.

``worm_recovery``
    Worm-level host-adapter multicast with a :class:`RecoveryManager`
    reconfiguring around faults on a torus; vocabulary adds
    ``node_fail`` / ``node_repair`` / ``recv_fault``, and the oracle adds
    reconvergence bounds and routing-safety (deadlock-freedom) checks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Tuple

from repro.faults.schedule import FaultEvent, FaultSchedule
from repro.stress.state import Violation, state_digest


@dataclass(frozen=True)
class Candidate:
    """One injectable fault type: a (kind, target, param) triple."""

    kind: str
    target: int
    param: int = 1


@dataclass
class Outcome:
    """Everything the search needs from one scenario run.

    ``frontier_state`` summarizes protocol state at the instant of the
    schedule's last fault (the pruning key); ``final_state`` the state at
    quiescence (the oracle's input).  Both contain only JSON-safe,
    ordinal-keyed values.  ``measures`` carries timing observations
    (delivery ticks) that must *not* enter digests, and ``trace`` is the
    human-readable event narrative.
    """

    status: str
    violations: Tuple[Violation, ...]
    frontier_state: Dict[str, Any]
    final_state: Dict[str, Any]
    measures: Dict[str, Any] = field(default_factory=dict)
    trace: Tuple[str, ...] = ()

    @property
    def frontier_digest(self) -> str:
        return state_digest(self.frontier_state)

    @property
    def final_digest(self) -> str:
        return state_digest(self.final_state)


@dataclass
class Probe:
    """Baseline-derived search inputs: anchors, vocabulary, clean outcome."""

    anchors: Tuple[float, ...]
    candidates: Tuple[Candidate, ...]
    baseline: Outcome


class StressScenario:
    """Base class: parameter plumbing shared by every scenario."""

    name = "?"
    defaults: Dict[str, Any] = {}
    supported_kinds: Tuple[str, ...] = ()

    def __init__(self, params: Optional[Mapping[str, Any]] = None) -> None:
        merged = dict(self.defaults)
        if params:
            unknown = sorted(set(params) - set(self.defaults))
            if unknown:
                raise ValueError(
                    f"unknown parameters for scenario {self.name!r}: {unknown}"
                )
            merged.update(params)
        for kind in merged["kinds"]:
            if kind not in self.supported_kinds:
                raise ValueError(
                    f"scenario {self.name!r} does not support fault kind "
                    f"{kind!r}; supported: {self.supported_kinds}"
                )
        self.params = merged
        self._probe: Optional[Probe] = None

    def canonical_params(self) -> Dict[str, Any]:
        """JSON-safe echo of the effective parameters (tuples -> lists)."""

        def fix(value):
            if isinstance(value, tuple):
                return [fix(v) for v in value]
            if isinstance(value, list):
                return [fix(v) for v in value]
            if isinstance(value, dict):
                return {str(k): fix(v) for k, v in value.items()}
            return value

        return {key: fix(self.params[key]) for key in sorted(self.params)}

    def probe(self) -> Probe:
        """Baseline run + derived anchors/candidates (cached)."""
        if self._probe is None:
            self._probe = self._build_probe()
        return self._probe

    def execute(self, schedule: FaultSchedule) -> Outcome:
        raise NotImplementedError

    def extension_times(self, event: FaultEvent) -> List[float]:
        """Extra anchors derived from an injected event (phase-relative
        times such as "during the reconfiguration this fault triggers")."""
        return []

    # -- shared helpers -------------------------------------------------------
    def _build_probe(self) -> Probe:
        baseline = self.execute(FaultSchedule())
        if baseline.violations:
            details = "; ".join(
                f"{v.invariant}/{v.subject}" for v in baseline.violations
            )
            raise ValueError(
                f"scenario {self.name!r} baseline violates invariants "
                f"({details}); fix the workload before searching"
            )
        anchors = self.params.get("anchors")
        if anchors is None:
            anchors = self._derive_anchors(baseline)
        anchors = tuple(sorted({float(t) for t in anchors}))
        if not anchors:
            raise ValueError(f"scenario {self.name!r} produced no anchors")
        return Probe(anchors, tuple(self._candidates()), baseline)

    def _derive_anchors(self, baseline: Outcome) -> List[float]:
        raise NotImplementedError

    def _candidates(self) -> List[Candidate]:
        raise NotImplementedError

    def _switch_links(self, topology) -> List[int]:
        switches = set(topology.switches)
        return sorted(
            link.id
            for link in topology.links
            if link.a in switches and link.b in switches
        )


def _resolve_plan(plan, hosts) -> List[Tuple[int, Tuple[int, ...], float]]:
    """Validate a send plan and map host *indices* to host ids."""
    resolved = []
    seen = set()
    for k, item in enumerate(plan):
        src_idx, dest_idxs, start = item[0], item[1], item[2]
        src = hosts[src_idx]
        dests = tuple(sorted(hosts[d] for d in dest_idxs))
        if not dests or src in dests:
            raise ValueError(f"plan entry {k}: bad destinations {dest_idxs}")
        if (src, dests) in seen:
            raise ValueError(
                f"plan entry {k}: duplicate (source, destinations) pair; "
                "the scenario ledger needs each to be unique"
            )
        seen.add((src, dests))
        resolved.append((src, dests, float(start)))
    return resolved


# ---------------------------------------------------------------------------
# Flit-level scenario
# ---------------------------------------------------------------------------


class FlitMulticastScenario(StressScenario):
    """Switch-level multicast worms on the flit simulator.

    The plan sends each message through a scheduled callback, so routes
    are computed *at injection time* against the then-current topology:
    a link death before a launch reroutes it, a death mid-worm kills it.
    That distinction is exactly the timing sensitivity the search probes.
    """

    name = "flit_multicast"
    supported_kinds = ("link_fail", "link_repair", "worm_drop")
    defaults: Dict[str, Any] = {
        "topology": "ring",  # ring | line | torus
        "size": [4],
        "hosts_per_switch": 1,
        "mode": "idle_flush",
        "restrict_to_tree": False,
        "payload": 64,
        # [source host index, [dest host indices], start tick]
        "plan": [[0, [2, 3], 10], [1, [3], 220], [3, [0, 1], 430]],
        "max_ticks": 6000,
        "quiet_limit": 600,
        "seed": 1,
        "engine": "active",
        "kinds": ["link_fail", "link_repair"],
        "link_targets": None,  # None -> every switch-switch link
        "drop_targets": None,  # None -> every plan source
        "anchors": None,  # None -> derive from the baseline run
    }

    # -- construction ---------------------------------------------------------
    def _build_topology(self):
        from repro.net import topology as topo_mod

        kind = self.params["topology"]
        size = list(self.params["size"])
        if kind == "torus":
            return topo_mod.torus(size[0], size[1])
        if kind in ("ring", "line"):
            builder = topo_mod.ring if kind == "ring" else topo_mod.line
            return builder(size[0], self.params["hosts_per_switch"])
        raise ValueError(f"unknown topology kind {kind!r}")

    # -- execution ------------------------------------------------------------
    def execute(self, schedule: FaultSchedule) -> Outcome:
        from repro.net.flitlevel.network import FlitNetwork

        p = self.params
        topology = self._build_topology()
        net = FlitNetwork(
            topology,
            mode=p["mode"],
            restrict_to_tree=p["restrict_to_tree"],
            seed=p["seed"],
            engine=p["engine"],
        )
        plan = _resolve_plan(p["plan"], topology.hosts)
        ledger: List[Dict[str, Any]] = [
            {"src": src, "dests": dests, "sent": False, "start": start,
             "unroutable": False}
            for src, dests, start in plan
        ]
        trace: List[str] = []

        def make_sender(k: int):
            entry = ledger[k]

            def sender() -> None:
                entry["sent"] = True
                src, dests = entry["src"], entry["dests"]
                try:
                    if len(dests) == 1:
                        net.send_unicast(src, dests[0], p["payload"])
                    else:
                        net.send_multicast(src, list(dests), p["payload"])
                except ValueError:
                    # No legal up/down route: faults partitioned the
                    # fabric out from under the sender.  The flit model
                    # has no repair plane, so delivery is impossible --
                    # record it as a partition violation at quiescence.
                    entry["unroutable"] = True
                    trace.append(
                        f"{net.now:6d} send message-{k} {src}->{list(dests)} "
                        "failed: no route (partitioned fabric)"
                    )
                    return
                trace.append(
                    f"{net.now:6d} send message-{k} {src}->{list(dests)}"
                )

            return sender

        # Senders are scheduled before fault events, so at an equal tick a
        # send fires first -- "mid-worm" anchors at the injection tick see
        # the worm already in the fabric.
        for k, (_, _, start) in enumerate(plan):
            net.schedule(max(int(start), 1), make_sender(k))
        for ev in schedule.events:
            net.schedule(
                int(ev.time), lambda ev=ev: self._apply(net, ledger, trace, ev)
            )

        frontier: Dict[str, Any] = {}
        if schedule.events:
            net.schedule(
                int(schedule.events[-1].time),
                lambda: frontier.update(self._snapshot(net, ledger)),
            )

        status = net.run(
            max_ticks=p["max_ticks"],
            quiet_limit=p["quiet_limit"],
            raise_on_deadlock=False,
        )
        final = self._snapshot(net, ledger)
        if not frontier:
            # The run quiesced before the last fault tick; the final state
            # *is* the frontier any later extension would depart from.
            frontier = dict(final)
        violations = self._check(net, ledger, status)
        measures = {
            "messages": [
                {
                    "injected": int(entry["start"]),
                    "delivered": self._delivery_ticks(net, entry),
                }
                for entry in ledger
            ],
            "ticks": net.now,
        }
        return Outcome(
            status=status,
            violations=tuple(sorted(violations, key=Violation.sort_key)),
            frontier_state=frontier,
            final_state=final,
            measures=measures,
            trace=tuple(trace),
        )

    def _find_record(self, net, entry):
        for record in net.records.values():
            if record.src == entry["src"] and tuple(record.dests) == entry["dests"]:
                return record
        return None

    def _delivery_ticks(self, net, entry) -> List[int]:
        record = self._find_record(net, entry)
        if record is None:
            return []
        return sorted(record.delivered_at.values())

    def _apply(self, net, ledger, trace, ev: FaultEvent) -> None:
        topology = net.topology
        if ev.kind == "link_fail":
            if topology.link_alive(ev.target):
                lost = net.fail_link(ev.target)
                trace.append(
                    f"{net.now:6d} fault link_fail link={ev.target} "
                    f"lost_worms={len(lost)}"
                )
            else:
                trace.append(
                    f"{net.now:6d} fault link_fail link={ev.target} (no-op: dead)"
                )
        elif ev.kind == "link_repair":
            if topology.link_alive(ev.target):
                trace.append(
                    f"{net.now:6d} fault link_repair link={ev.target} "
                    "(no-op: alive)"
                )
            else:
                net.repair_link(ev.target)
                trace.append(f"{net.now:6d} fault link_repair link={ev.target}")
        elif ev.kind == "worm_drop":
            dropped = 0
            for k, entry in enumerate(ledger):
                if dropped >= ev.param:
                    break
                if ev.target not in (-1, entry["src"]):
                    continue
                record = self._find_record(net, entry)
                if record is not None and not record.fully_delivered:
                    net.lose_worm(record.wid, reason="stress")
                    trace.append(
                        f"{net.now:6d} fault worm_drop message-{k} "
                        f"src={entry['src']}"
                    )
                    dropped += 1
            if dropped == 0:
                trace.append(
                    f"{net.now:6d} fault worm_drop src={ev.target} "
                    "(no-op: nothing in flight)"
                )
        else:  # pragma: no cover - kinds validated at construction
            raise ValueError(
                f"scenario {self.name!r} cannot apply fault kind {ev.kind!r}"
            )

    # -- state + oracle -------------------------------------------------------
    def _snapshot(self, net, ledger) -> Dict[str, Any]:
        messages = []
        for entry in ledger:
            record = self._find_record(net, entry)
            if record is None:
                messages.append(
                    {
                        "sent": entry["sent"],
                        "unroutable": entry["unroutable"],
                        "lost": entry["sent"] and not entry["unroutable"],
                        "delivered": [],
                        "pending": False,
                        "retx": 0,
                    }
                )
            else:
                messages.append(
                    {
                        "sent": True,
                        "unroutable": False,
                        "lost": False,
                        "delivered": sorted(record.delivered_at),
                        "pending": not record.fully_delivered,
                        "retx": record.retransmissions,
                    }
                )
        return {
            "dead_links": sorted(net.topology.dead_links),
            "messages": messages,
            "worms_lost": net.worms_lost,
            "flushes": net.flushes,
        }

    def _check(self, net, ledger, status: str) -> List[Violation]:
        violations: List[Violation] = []
        if status == "deadlock":
            stuck = sorted(
                k
                for k, entry in enumerate(ledger)
                if self._find_record(net, entry) is not None
                and not self._find_record(net, entry).fully_delivered
            )
            violations.append(
                Violation(
                    "deadlock",
                    "network",
                    f"no progress at quiescence; stuck messages {stuck}",
                )
            )
        for k, entry in enumerate(ledger):
            subject = f"message-{k}"
            record = self._find_record(net, entry)
            if not entry["sent"]:
                violations.append(
                    Violation(
                        "delivery",
                        subject,
                        "never injected before the horizon",
                    )
                )
                continue
            if entry["unroutable"]:
                violations.append(
                    Violation(
                        "partition",
                        subject,
                        "no route left at send time; fabric partitioned",
                    )
                )
                continue
            if record is None:
                violations.append(
                    Violation(
                        "delivery",
                        subject,
                        "worm lost in the fabric and never retransmitted",
                    )
                )
                continue
            delivered = set(record.delivered_at)
            missing = sorted(set(entry["dests"]) - delivered)
            if missing:
                violations.append(
                    Violation(
                        "delivery",
                        subject,
                        f"never delivered to hosts {missing}",
                    )
                )
            extra = sorted(delivered - set(entry["dests"]))
            if extra:
                violations.append(
                    Violation(
                        "phantom",
                        subject,
                        f"delivered to non-members {extra}",
                    )
                )
        return violations

    # -- search inputs --------------------------------------------------------
    def _derive_anchors(self, baseline: Outcome) -> List[float]:
        anchors: List[float] = []
        for info in baseline.measures["messages"]:
            start = info["injected"]
            anchors.append(float(start))
            if info["delivered"]:
                done = max(info["delivered"])
                anchors.append(float((start + done) // 2))  # mid-worm
                anchors.append(float(done - 1))  # just before completion
        return anchors

    def _candidates(self) -> List[Candidate]:
        topology = self._build_topology()
        p = self.params
        link_targets = p["link_targets"]
        if link_targets is None:
            link_targets = self._switch_links(topology)
        hosts = topology.hosts
        drop_targets = p["drop_targets"]
        if drop_targets is None:
            drop_targets = sorted({hosts[item[0]] for item in p["plan"]})
        out: List[Candidate] = []
        for kind in p["kinds"]:
            if kind in ("link_fail", "link_repair"):
                out.extend(Candidate(kind, t) for t in link_targets)
            elif kind == "worm_drop":
                out.extend(Candidate(kind, t) for t in drop_targets)
        return out

    def extension_times(self, event: FaultEvent) -> List[float]:
        lo, hi = 200, 400  # FlitNetwork flush_backoff default
        return [
            float(int(event.time) + 1),
            float(int(event.time) + lo),  # flush retransmission window
            float(int(event.time) + (lo + hi) // 2),
        ]


# ---------------------------------------------------------------------------
# Worm-level scenario with recovery
# ---------------------------------------------------------------------------


class WormRecoveryScenario(StressScenario):
    """Host-adapter multicast + Autonet-style recovery on the worm model.

    Faults flow through the real :class:`FaultInjector`, the
    :class:`RecoveryManager` reconfigures routing around them, and the
    oracle layers reconvergence bounds and post-quiescence routing safety
    (reachability + deadlock-freedom) on top of delivery/phantom checks.
    Delivery is demanded only of *live* expected members; a send whose
    origin is dead or already spliced out of the group at send time is
    skipped (the message never existed).
    """

    name = "worm_recovery"
    supported_kinds = (
        "link_fail",
        "link_repair",
        "node_fail",
        "node_repair",
        "worm_drop",
        "recv_fault",
    )
    defaults: Dict[str, Any] = {
        "topology": "torus",
        "size": [3, 3],
        "scheme": "hamiltonian",
        "group": None,  # None -> every host; else host indices
        "length": 400,
        # [origin host index, send time]
        "plan": [[0, 10.0], [4, 4000.0], [8, 8000.0]],
        "horizon": 15000.0,
        "detection_delay": 100.0,
        "cost_per_switch": 10.0,
        "reconvergence_bound": None,  # None -> detection + cost * switches
        "kinds": ["node_fail", "node_repair"],
        "link_targets": None,  # None -> every switch-switch link
        "node_targets": None,  # None -> every group member host
        "drop_targets": None,  # None -> every plan origin
        "recv_targets": None,  # None -> every plan origin
        "anchors": None,
    }

    def _build_topology(self):
        from repro.net import topology as topo_mod

        kind = self.params["topology"]
        size = list(self.params["size"])
        if kind == "torus":
            return topo_mod.torus(size[0], size[1])
        if kind == "mesh":
            return topo_mod.mesh(size[0], size[1])
        if kind in ("ring", "line"):
            builder = topo_mod.ring if kind == "ring" else topo_mod.line
            return builder(size[0])
        raise ValueError(f"unknown topology kind {kind!r}")

    def _bound(self, topology) -> float:
        bound = self.params["reconvergence_bound"]
        if bound is None:
            bound = self.params["detection_delay"] + self.params[
                "cost_per_switch"
            ] * len(topology.switches)
        return float(bound)

    def execute(self, schedule: FaultSchedule) -> Outcome:
        from repro.core.adapters import MulticastEngine, Scheme
        from repro.faults.injector import FaultInjector
        from repro.faults.recovery import RecoveryConfig, RecoveryManager
        from repro.net.wormnet import WormholeNetwork
        from repro.sim.engine import Simulator

        p = self.params
        topology = self._build_topology()
        sim = Simulator()
        net = WormholeNetwork(sim, topology)
        engine = MulticastEngine(sim, net)
        hosts = topology.hosts
        members = (
            list(hosts)
            if p["group"] is None
            else [hosts[i] for i in p["group"]]
        )
        engine.create_group(1, members, Scheme(p["scheme"]))
        manager = RecoveryManager(
            sim,
            net,
            engine=engine,
            config=RecoveryConfig(
                detection_delay=p["detection_delay"],
                cost_per_switch=p["cost_per_switch"],
            ),
        )
        injector = FaultInjector(sim, net, schedule)
        injector.start()

        ledger: List[Dict[str, Any]] = [
            {"origin": hosts[item[0]], "time": float(item[1]), "message": None,
             "skipped": False}
            for item in p["plan"]
        ]
        trace: List[str] = []

        def make_sender(k: int):
            entry = ledger[k]

            def sender() -> None:
                origin = entry["origin"]
                group = engine.group_state(1).group
                if not topology.node_alive(origin) or origin not in group:
                    entry["skipped"] = True
                    trace.append(
                        f"{sim.now:10.3f} skip message-{k}: origin {origin} "
                        "dead or spliced out of group"
                    )
                    return
                entry["message"] = engine.multicast(origin, 1, p["length"])
                trace.append(
                    f"{sim.now:10.3f} send message-{k} origin={origin}"
                )

            return sender

        for k, entry in enumerate(ledger):
            sim.schedule_call(entry["time"], make_sender(k))

        frontier: Dict[str, Any] = {}
        if schedule.events:
            capture_at = schedule.events[-1].time + 0.5
            if capture_at < p["horizon"]:
                sim.schedule_call(
                    capture_at,
                    lambda: frontier.update(
                        self._snapshot(net, engine, manager, ledger)
                    ),
                )
        for ev in schedule.events:
            trace.append(f"{ev.time:10.3f} fault {ev.canonical()}")

        sim.run(until=p["horizon"])
        final = self._snapshot(net, engine, manager, ledger)
        if not frontier:
            frontier = dict(final)
        violations = self._check(net, engine, manager, ledger, topology)
        measures = {
            "messages": [
                {
                    "injected": entry["time"],
                    "delivered": sorted(
                        round(t, 6)
                        for t in entry["message"].deliveries.values()
                    )
                    if entry["message"] is not None
                    else [],
                }
                for entry in ledger
            ],
        }
        return Outcome(
            status="quiesced",
            violations=tuple(sorted(violations, key=Violation.sort_key)),
            frontier_state=frontier,
            final_state=final,
            measures=measures,
            trace=tuple(trace),
        )

    def _snapshot(self, net, engine, manager, ledger) -> Dict[str, Any]:
        topology = net.topology
        messages = []
        for entry in ledger:
            message = entry["message"]
            if message is None:
                messages.append(
                    {"sent": False, "skipped": entry["skipped"],
                     "delivered": [], "complete": False}
                )
            else:
                messages.append(
                    {
                        "sent": True,
                        "skipped": False,
                        "delivered": sorted(message.deliveries),
                        "complete": message.complete,
                    }
                )
        return {
            "dead_links": sorted(topology.dead_links),
            "dead_nodes": sorted(topology.dead_nodes),
            "group": sorted(engine.group_state(1).group.members),
            "messages": messages,
            "reconfigurations": manager.reconfigurations,
            "partitions": manager.partitions_seen,
            "orphaned_worms": net.orphaned_worms,
        }

    def _check(self, net, engine, manager, ledger, topology) -> List[Violation]:
        violations: List[Violation] = []
        live = set(topology.live_hosts())
        for k, entry in enumerate(ledger):
            subject = f"message-{k}"
            message = entry["message"]
            if message is None:
                continue  # skipped sends never existed
            delivered = set(message.deliveries)
            missing = sorted((set(message.expected) & live) - delivered)
            if missing:
                violations.append(
                    Violation(
                        "delivery",
                        subject,
                        f"live members {missing} never received the message",
                    )
                )
            extra = sorted(delivered - set(message.expected))
            if extra:
                violations.append(
                    Violation(
                        "phantom",
                        subject,
                        f"delivered to non-members {extra}",
                    )
                )
        bound = self._bound(topology)
        for i, record in enumerate(manager.records):
            rt = record.reconvergence_time
            if rt is not None and rt > bound:
                violations.append(
                    Violation(
                        "reconvergence",
                        f"episode-{i}",
                        f"{record.cause} of {record.target}: reconverged in "
                        f"{rt:.1f} > bound {bound:.1f}",
                    )
                )
        violations.extend(self._routing_safety(net, topology))
        return violations

    def _routing_safety(self, net, topology) -> List[Violation]:
        from repro.net.updown import check_deadlock_free

        live = sorted(topology.live_hosts())
        pairs = [(a, b) for a in live for b in live if a != b]
        try:
            acyclic = check_deadlock_free(net.routing, pairs)
        except ValueError:
            return [
                Violation(
                    "partition",
                    "routing",
                    "live hosts are not mutually reachable after quiescence",
                )
            ]
        if not acyclic:
            return [
                Violation(
                    "deadlock_free",
                    "routing",
                    "channel dependency graph has a cycle after recovery",
                )
            ]
        return []

    # -- search inputs --------------------------------------------------------
    def _derive_anchors(self, baseline: Outcome) -> List[float]:
        # The worm model reroutes new worms around faults instantly, so
        # the interesting injection points are the *detection windows*:
        # a fault less than ``detection_delay`` before a member's
        # forwarding turn (its delivery time) breaks the forwarding
        # structure before the recovery manager can splice around it.
        half_detect = self.params["detection_delay"] / 2.0
        anchors: List[float] = []
        for info in baseline.measures["messages"]:
            start = info["injected"]
            anchors.append(round(start + 1.0, 3))
            for done in info["delivered"]:
                anchors.append(round(done - half_detect, 3))
            if info["delivered"]:
                anchors.append(round(max(info["delivered"]) + 5.0, 3))
        return anchors

    def _candidates(self) -> List[Candidate]:
        topology = self._build_topology()
        p = self.params
        hosts = topology.hosts
        members = (
            list(hosts)
            if p["group"] is None
            else [hosts[i] for i in p["group"]]
        )
        origins = sorted({hosts[item[0]] for item in p["plan"]})
        link_targets = p["link_targets"]
        if link_targets is None:
            link_targets = self._switch_links(topology)
        node_targets = p["node_targets"]
        if node_targets is None:
            node_targets = sorted(members)
        out: List[Candidate] = []
        for kind in p["kinds"]:
            if kind in ("link_fail", "link_repair"):
                out.extend(Candidate(kind, t) for t in link_targets)
            elif kind in ("node_fail", "node_repair"):
                out.extend(Candidate(kind, t) for t in node_targets)
            elif kind == "worm_drop":
                targets = p["drop_targets"] or origins
                out.extend(Candidate(kind, t) for t in targets)
            elif kind == "recv_fault":
                targets = p["recv_targets"] or origins
                out.extend(Candidate(kind, t) for t in targets)
        return out

    def extension_times(self, event: FaultEvent) -> List[float]:
        d = self.params["detection_delay"]
        cost = self.params["cost_per_switch"]
        switches = len(self._build_topology().switches)
        return [
            round(event.time + d / 2.0, 3),  # during detection window
            round(event.time + d + 1.0, 3),  # reconfiguration just started
            round(event.time + d + cost * switches / 2.0, 3),  # mid-reconvergence
        ]


SCENARIOS = {
    FlitMulticastScenario.name: FlitMulticastScenario,
    WormRecoveryScenario.name: WormRecoveryScenario,
}


def build_scenario(name: str, params: Optional[Mapping[str, Any]] = None) -> StressScenario:
    """Instantiate a registered scenario by name."""
    if name not in SCENARIOS:
        raise ValueError(
            f"unknown scenario {name!r}; known: {sorted(SCENARIOS)}"
        )
    return SCENARIOS[name](params)
