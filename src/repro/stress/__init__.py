"""Systematic worst-case fault/timing search (the STRESS methodology).

Replaces random fault injection with a forward search over scheduled
fault/timing interleavings on the repo's deterministic simulators,
following Helmy/Estrin's systematic testing of multicast protocols
(arXiv cs/0007005, cs/0006029): protocol-phase anchors for injection
times, state-hash pruning of equivalent interleavings, an invariant
oracle (eventual delivery to live members, no phantoms, reconvergence
bounds, no deadlock), and delta-debugged minimal counterexamples
emitted as replayable canonical-JSON fault schedules.

Entry points:

* :func:`run_search_sharded` -- in-process search (any shard count).
* :func:`repro.stress.distributed.run_search_distributed` -- same
  search fanned across a :mod:`repro.serve` pool, byte-identical report.
* ``python -m repro.stress`` -- ``search`` / ``replay`` / ``scenarios``.
"""

from repro.stress.counterexample import (
    counterexample_dict,
    load_counterexample,
    replay,
    save_counterexample,
)
from repro.stress.scenarios import SCENARIOS, build_scenario
from repro.stress.search import (
    StressConfig,
    merge_shard_reports,
    run_search,
    run_search_sharded,
)
from repro.stress.state import Violation, canonical_json, state_digest

__all__ = [
    "SCENARIOS",
    "StressConfig",
    "Violation",
    "build_scenario",
    "canonical_json",
    "counterexample_dict",
    "load_counterexample",
    "merge_shard_reports",
    "replay",
    "run_search",
    "run_search_sharded",
    "save_counterexample",
    "state_digest",
]
