"""Replayable counterexamples: the search's durable artifacts.

A counterexample file is canonical JSON carrying everything needed to
re-run a violation from scratch years later: the scenario name and full
parameters, the violation key, the minimal fault schedule (and the
discovery schedule it was shrunk from), the expected final-state digest,
and the human-readable trace.  :func:`replay` rebuilds the scenario,
re-executes the schedule, and verifies that the *same* violation recurs
with the *same* digest -- byte-level reproduction, not just "some
failure happened".
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Mapping, Tuple

from repro.faults.schedule import FaultSchedule
from repro.stress.scenarios import build_scenario
from repro.stress.state import Violation, canonical_json

COUNTEREXAMPLE_FORMAT = "repro.stress.counterexample/v1"


def counterexample_dict(
    scenario_name: str,
    scenario_params: Mapping[str, Any],
    entry: Mapping[str, Any],
) -> Dict[str, Any]:
    """Assemble the standalone artifact for one search-report violation."""
    return {
        "format": COUNTEREXAMPLE_FORMAT,
        "scenario": scenario_name,
        "params": dict(scenario_params),
        "violation": dict(entry["violation"]),
        "discovery": list(entry["discovery"]),
        "schedule": list(entry["schedule"]),
        "final_digest": entry["final_digest"],
        "trace": list(entry["trace"]),
    }


def save_counterexample(path: str, counterexample: Mapping[str, Any]) -> None:
    """Write the canonical-JSON artifact (stable bytes for stable inputs)."""
    with open(path, "w") as fh:
        fh.write(canonical_json(counterexample))
        fh.write("\n")


def load_counterexample(path: str) -> Dict[str, Any]:
    with open(path) as fh:
        data = json.load(fh)
    if data.get("format") != COUNTEREXAMPLE_FORMAT:
        raise ValueError(
            f"{path}: not a stress counterexample "
            f"(format={data.get('format')!r})"
        )
    return data


def replay(counterexample: Mapping[str, Any]) -> Tuple[bool, List[str], Any]:
    """Re-run a counterexample; returns ``(ok, problems, outcome)``.

    ``ok`` is true iff the stored violation key recurs *and* the final
    state digest matches the stored one.  ``problems`` lists every
    discrepancy found (empty when ok).
    """
    scenario = build_scenario(
        counterexample["scenario"], counterexample.get("params")
    )
    schedule = FaultSchedule.from_json(
        json.dumps(counterexample["schedule"])
    )
    outcome = scenario.execute(schedule)
    expected = Violation.from_dict(counterexample["violation"])
    problems: List[str] = []
    keys = [v.key() for v in outcome.violations]
    if expected.key() not in keys:
        problems.append(
            f"violation {expected.key()} did not recur; observed {keys}"
        )
    digest = outcome.final_digest
    stored = counterexample.get("final_digest")
    if stored is not None and digest != stored:
        problems.append(
            f"final state digest {digest} != stored {stored}"
        )
    return (not problems, problems, outcome)


def render(counterexample: Mapping[str, Any]) -> str:
    """Human-readable summary of a counterexample artifact."""
    v = counterexample["violation"]
    lines = [
        f"scenario : {counterexample['scenario']}",
        f"violation: {v['invariant']} on {v['subject']}",
        f"  detail : {v['detail']}",
        f"schedule : {len(counterexample['schedule'])} event(s) "
        f"(discovered with {len(counterexample['discovery'])})",
    ]
    for ev in counterexample["schedule"]:
        lines.append(
            f"  t={ev['time']:<10g} {ev['kind']} target={ev['target']} "
            f"param={ev['param']}"
        )
    trace = counterexample.get("trace") or ()
    if trace:
        lines.append("trace:")
        lines.extend(f"  {line}" for line in trace)
    return "\n".join(lines)
