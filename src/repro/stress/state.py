"""Canonical state digests: the pruning key of the systematic search.

A scenario summarizes its protocol state -- topology liveness, group and
delivery state, in-flight worms, recovery-plane progress -- as a plain
JSON-safe dict, and :func:`state_digest` collapses that dict into a short
stable hash.  Two partial fault schedules whose digests collide (same
last-fault time, same summarized state) have identical futures under any
common suffix of faults, so the search explores extensions of only the
first -- the state-hashing reduction of the STRESS methodology
(arXiv cs/0006029).

Digests must never include process-dependent values: worm and message ids
come from module-global counters, so scenarios key everything by per-run
*ordinals* (injection order).  That is what makes a search report
byte-identical across runs, processes, and the serve-distributed path.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Any, Dict, Mapping, Tuple


def canonical_json(obj: Any) -> str:
    """Stable key order, no whitespace, strict JSON (NaN rejected)."""
    return json.dumps(obj, sort_keys=True, separators=(",", ":"), allow_nan=False)


def state_digest(state: Mapping[str, Any]) -> str:
    """A short stable hash of a canonical state dict."""
    raw = canonical_json(state).encode()
    return hashlib.sha256(raw).hexdigest()[:16]


@dataclass(frozen=True)
class Violation:
    """One invariant violation observed at the end of a scenario run.

    ``invariant`` names the broken oracle (``delivery``, ``phantom``,
    ``deadlock``, ``reconvergence``, ``partition``, ``deadlock_free``);
    ``subject`` pins the violation to a stable per-run entity (a message
    ordinal, a routing table, the network) so the same protocol bug found
    through different fault schedules deduplicates; ``detail`` is the
    human-readable specifics.
    """

    invariant: str
    subject: str
    detail: str

    def key(self) -> Tuple[str, str]:
        """Identity used for dedup and for "same violation" replay checks."""
        return (self.invariant, self.subject)

    def to_dict(self) -> Dict[str, str]:
        return {
            "invariant": self.invariant,
            "subject": self.subject,
            "detail": self.detail,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "Violation":
        return cls(
            invariant=str(data["invariant"]),
            subject=str(data["subject"]),
            detail=str(data["detail"]),
        )

    def sort_key(self) -> Tuple[str, str, str]:
        return (self.invariant, self.subject, self.detail)
