"""Entry point for ``python -m repro.stress``."""

import sys

from repro.stress.cli import main

sys.exit(main())
