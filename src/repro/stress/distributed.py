"""Distributed stress search: serve workers as model-checking shards.

Each shard of a :class:`~repro.stress.search.StressConfig` is one
``stress_search`` job (a registered sweep point kind, hence a serve job
kind); the scheduler fans them across its process pool, and the shard
records come back as plain JSON dicts -- exactly what
:func:`~repro.stress.search.run_search` returns in process.  Merging
goes through the same :func:`~repro.stress.search.merge_shard_reports`,
so for a given config the distributed report is byte-identical to
:func:`~repro.stress.search.run_search_sharded`'s (asserted in
``tests/stress/test_distributed.py``).
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from repro.stress.search import StressConfig, merge_shard_reports


def run_search_distributed(
    config: StressConfig,
    client,
    timeout: Optional[float] = None,
) -> Dict[str, Any]:
    """Fan the search's shards across a serve pool and merge the reports.

    ``client`` is a connected :class:`repro.serve.ServeClient`.  Shards
    are submitted up front (so the pool works them concurrently) and
    collected in shard order.
    """
    base = config.to_dict()
    submitted = [
        client.submit(
            "stress_search", params={**base, "shard_index": i}
        )["job"]
        for i in range(config.shard_count)
    ]
    reports = [
        client.result(job, wait=True, timeout=timeout)["record"]
        for job in submitted
    ]
    return merge_shard_reports(reports)
