"""Workload generation and the paper's experiment configurations."""

from repro.traffic.generators import TrafficConfig, TrafficGenerator
from repro.traffic.workloads import (
    ExperimentResult,
    SchemeSetup,
    build_engine,
    run_load_point,
    fig10_setup,
    fig11_setup,
)

__all__ = [
    "ExperimentResult",
    "SchemeSetup",
    "TrafficConfig",
    "TrafficGenerator",
    "build_engine",
    "fig10_setup",
    "fig11_setup",
    "run_load_point",
]
