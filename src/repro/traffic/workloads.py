"""The paper's simulation experiments as reusable workload recipes.

* Figure 10 -- 8x8 torus, ten random groups of ten members, 10% multicast
  fraction, mean worm 400 bytes; Hamiltonian store-and-forward vs
  Hamiltonian cut-through vs rooted tree, average multicast latency over
  offered load.
* Figure 11 -- 24-node bidirectional shufflenet (propagation delay 1000
  byte-times), four groups of six members; tree vs Hamiltonian for
  multicast fractions 0.05 / 0.10 / 0.15 / 0.20.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.core.adapters import AdapterConfig, MulticastEngine, Scheme
from repro.net.topology import Topology, bidirectional_shufflenet, torus
from repro.net.updown import UpDownRouting
from repro.net.wormnet import WormholeNetwork
from repro.sim.engine import Simulator
from repro.sim.monitor import batch_means_ci
from repro.sim.rng import RandomStreams
from repro.traffic.generators import TrafficConfig, TrafficGenerator


@dataclass
class SchemeSetup:
    """A named protocol variant under test.

    ``tree_shape`` selects the rooted-tree construction: the paper forms the
    tree over the *weighted* host-connectivity graph, so the experiment
    defaults use ``greedy_weighted`` (children attach to the cheapest
    eligible lower-ID parent); ``heap`` is the plain ID-sorted layout.
    """

    name: str
    scheme: Scheme
    cut_through: bool = False
    tree_shape: str = "greedy_weighted"
    tree_branching: int = 2

    def adapter_config(self) -> AdapterConfig:
        return AdapterConfig(cut_through=self.cut_through)


#: The three curves of Figure 10.  The 'rooted tree' scheme is the
#: non-serialized broadcast-on-tree variant of Section 6 (no root relay):
#: the figure compares plain multicast latency, for which the paper notes
#: this variant "provides lower latency than the former"; the root-start
#: (total-ordering) variant is measured separately in the ordering ablation.
FIG10_SCHEMES = [
    SchemeSetup("hamiltonian-sf", Scheme.HAMILTONIAN, cut_through=False),
    SchemeSetup("hamiltonian-ct", Scheme.HAMILTONIAN, cut_through=True),
    SchemeSetup("tree-sf", Scheme.TREE_BROADCAST, cut_through=False),
]

#: The two curve families of Figure 11.
FIG11_SCHEMES = [
    SchemeSetup("tree", Scheme.TREE_BROADCAST, cut_through=False),
    SchemeSetup("hamiltonian", Scheme.HAMILTONIAN, cut_through=False),
]

#: Every named scheme variant (sweep points reference schemes by name so
#: that point parameters stay picklable / JSON-serializable).
SCHEMES_BY_NAME = {s.name: s for s in (*FIG10_SCHEMES, *FIG11_SCHEMES)}


def scheme_by_name(name: str) -> SchemeSetup:
    """Resolve a scheme variant by its registered name."""
    try:
        return SCHEMES_BY_NAME[name]
    except KeyError:
        raise ValueError(
            f"unknown scheme {name!r}; known: {sorted(SCHEMES_BY_NAME)}"
        ) from None


@dataclass
class GroupPlan:
    """How many groups to create and how large."""

    count: int
    size: int
    gid_base: int = 1


@dataclass
class ExperimentResult:
    """One (scheme, load) measurement point."""

    scheme: str
    offered_load: float
    multicast_fraction: float
    mean_multicast_latency: float
    ci_half_width: float
    mean_completion_latency: float
    mean_unicast_latency: float
    deliveries: int
    messages_completed: int
    throughput_bytes_per_bytetime: float
    mean_channel_utilization: float
    sim_time: float
    extras: Dict[str, float] = field(default_factory=dict)
    #: Observability snapshot (strict JSON; see :mod:`repro.obs`) when the
    #: point ran with an attached bundle, else None.
    obs: Optional[Dict] = None


def fig10_setup() -> dict:
    """Topology/grouping parameters of the Figure 10 experiment."""
    return {
        "topology": "torus",
        "rows": 8,
        "cols": 8,
        "groups": GroupPlan(count=10, size=10),
        "multicast_fraction": 0.1,
        "mean_length": 400.0,
        "loads": [0.04, 0.05, 0.06, 0.07, 0.08, 0.09, 0.10, 0.11, 0.12],
        "schemes": FIG10_SCHEMES,
    }


def fig11_setup() -> dict:
    """Topology/grouping parameters of the Figure 11 experiment."""
    return {
        "topology": "bidirectional_shufflenet",
        "p": 2,
        "k": 3,
        "prop_delay": 1000.0,
        "groups": GroupPlan(count=4, size=6),
        "multicast_fractions": [0.05, 0.10, 0.15, 0.20],
        "mean_length": 400.0,
        "loads": [0.03, 0.04, 0.05, 0.06, 0.07],
        "schemes": FIG11_SCHEMES,
    }


def build_topology(setup: dict) -> Topology:
    if setup["topology"] == "torus":
        return torus(setup["rows"], setup["cols"])
    if setup["topology"] == "bidirectional_shufflenet":
        return bidirectional_shufflenet(
            setup["p"], setup["k"], prop_delay=setup["prop_delay"]
        )
    raise ValueError(f"unknown topology {setup['topology']!r}")


#: Keys of ``setup`` that determine the topology (and hence the routing).
_TOPOLOGY_KEYS = ("topology", "rows", "cols", "p", "k", "prop_delay")

_shared_cache: Dict[tuple, tuple] = {}


def shared_topology(setup: dict) -> tuple:
    """Memoized ``(Topology, UpDownRouting)`` for a setup, per process.

    Both objects are effectively immutable once built (the routing's
    internal route cache only ever adds deterministic entries), so load
    points of a sweep can share them instead of re-running the spanning
    tree + all-pairs BFS per point.  Results are byte-identical to a fresh
    build because routes are deterministic.
    """
    key = tuple((k, setup.get(k)) for k in _TOPOLOGY_KEYS)
    cached = _shared_cache.get(key)
    if cached is None:
        topology = build_topology(setup)
        cached = (topology, UpDownRouting(topology))
        _shared_cache[key] = cached
    return cached


def build_engine(
    topology: Topology,
    scheme_setup: SchemeSetup,
    groups: GroupPlan,
    seed: int = 1,
    routing: Optional[UpDownRouting] = None,
    obs=None,
) -> tuple:
    """Wire up simulator, network, engine and groups for one run.

    Group membership depends only on ``seed``, so different schemes at the
    same seed multicast over identical groups (common random numbers).
    ``obs`` optionally attaches one :class:`~repro.obs.Observability`
    bundle to the simulator kernel, the network and the engine.
    """
    sim = Simulator(obs=obs)
    routing = routing or UpDownRouting(topology)
    net = WormholeNetwork(sim, topology, routing=routing, obs=obs)
    rng = RandomStreams(seed=seed)
    engine = MulticastEngine(
        sim, net, scheme_setup.adapter_config(), rng=rng, obs=obs
    )
    membership_stream = rng.stream("groups.membership")
    hosts = topology.hosts
    structure_kwargs = {}
    if scheme_setup.scheme in (Scheme.TREE, Scheme.TREE_BROADCAST):
        structure_kwargs["branching"] = scheme_setup.tree_branching
        structure_kwargs["shape"] = scheme_setup.tree_shape
        if scheme_setup.tree_shape == "greedy_weighted":
            structure_kwargs["routing"] = routing
    for index in range(groups.count):
        gid = groups.gid_base + index
        members = membership_stream.sample(hosts, groups.size)
        engine.create_group(gid, members, scheme_setup.scheme, **structure_kwargs)
    return sim, net, engine


def run_load_point(
    scheme_setup: SchemeSetup,
    offered_load: float,
    setup: Optional[dict] = None,
    multicast_fraction: Optional[float] = None,
    seed: int = 1,
    warmup_deliveries: int = 300,
    measure_deliveries: int = 2000,
    max_sim_time: float = 5e7,
    collect_samples: bool = False,
    obs=None,
) -> ExperimentResult:
    """Simulate one (scheme, load) point to steady state and measure.

    The run warms up until ``warmup_deliveries`` multicast deliveries have
    occurred, resets all statistics, then measures until
    ``measure_deliveries`` more have accumulated (or ``max_sim_time`` is
    reached -- the saturation guard: beyond saturation latency diverges and
    the run is reported with whatever accumulated).

    With ``obs`` attached, the bundle's metric windows are reset together
    with the model statistics at the end of warm-up, channel gauges are
    published at the end of the run, and the result carries
    ``result.obs = obs.snapshot(sim.now)``.
    """
    setup = setup or fig10_setup()
    fraction = (
        multicast_fraction
        if multicast_fraction is not None
        else setup["multicast_fraction"]
    )
    topology, routing = shared_topology(setup)
    sim, net, engine = build_engine(
        topology, scheme_setup, setup["groups"], seed, routing=routing, obs=obs
    )
    traffic = TrafficGenerator(
        sim,
        engine,
        TrafficConfig(
            offered_load=offered_load,
            mean_length=setup["mean_length"],
            multicast_fraction=fraction,
        ),
    )
    traffic.start()

    samples: List[float] = []
    if collect_samples:
        previous_observer = engine.delivery_observer

        def observer(host, worm, message, when):
            samples.append(when - message.created)
            if previous_observer is not None:
                previous_observer(host, worm, message, when)

        engine.delivery_observer = observer

    chunk = 100_000.0
    while engine.delivery_latency.count < warmup_deliveries:
        sim.run(until=sim.now + chunk)
        if sim.now >= max_sim_time:
            break
    engine.reset_stats()
    net.reset_stats()
    if obs is not None:
        obs.reset(sim.now)
    samples.clear()
    while engine.delivery_latency.count < measure_deliveries:
        sim.run(until=sim.now + chunk)
        if sim.now >= max_sim_time:
            break

    ci = batch_means_ci(samples, batches=20) if samples else {"half_width": float("nan")}
    obs_snapshot = None
    if obs is not None:
        obs.snapshot_wormnet(net, sim.now)
        obs_snapshot = obs.snapshot(sim.now)
    return ExperimentResult(
        scheme=scheme_setup.name,
        offered_load=offered_load,
        multicast_fraction=fraction,
        mean_multicast_latency=engine.delivery_latency.mean,
        ci_half_width=ci["half_width"],
        mean_completion_latency=engine.completion_latency.mean,
        mean_unicast_latency=engine.unicast_latency.mean,
        deliveries=engine.delivery_latency.count,
        messages_completed=engine.messages_completed,
        throughput_bytes_per_bytetime=(
            net.delivered_bytes / sim.now if sim.now > 0 else 0.0
        ),
        mean_channel_utilization=net.mean_utilization(),
        sim_time=sim.now,
        obs=obs_snapshot,
    )


def sweep(
    schemes: Sequence[SchemeSetup],
    loads: Sequence[float],
    setup: dict,
    **kwargs,
) -> List[ExperimentResult]:
    """Run every (scheme, load) combination of an experiment."""
    results = []
    for scheme_setup in schemes:
        for load in loads:
            results.append(run_load_point(scheme_setup, load, setup=setup, **kwargs))
    return results
