"""Poisson worm sources (Section 7's traffic model).

Each host generates worms by a Poisson process with geometrically
distributed lengths (mean 400 bytes in the paper).  The *offered load* is
the output-link utilization per host, so the mean inter-arrival time is
``mean_length / offered_load`` byte-times.  A host that belongs to at least
one multicast group turns each new worm into a multicast with probability
``multicast_fraction``, choosing the group uniformly among its memberships;
all other worms are unicasts to uniformly chosen destinations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.core.adapters import MulticastEngine
from repro.net.worm import MAX_WORM_BYTES
from repro.sim.engine import Simulator
from repro.sim.rng import RandomStreams


@dataclass
class TrafficConfig:
    """Per-host Poisson traffic parameters.

    Attributes
    ----------
    offered_load:
        Output-link utilization per host (the x axis of Figures 10/11).
    mean_length:
        Mean worm length in bytes (geometric; the paper uses 400).
    min_length:
        Smallest worm (header floor) in bytes.
    multicast_fraction:
        Probability that a group member's new worm is a multicast
        (the paper's 'proportion of generated multicast worms').
    """

    offered_load: float = 0.05
    mean_length: float = 400.0
    min_length: int = 16
    multicast_fraction: float = 0.1
    #: Worms are capped here; with finite adapter buffers set this at (or
    #: below) the buffer size -- the paper's Section 4 notes oversized
    #: messages must be split by the originating host.
    max_length: int = MAX_WORM_BYTES

    def __post_init__(self) -> None:
        if not 0 < self.offered_load <= 1:
            raise ValueError(f"offered load {self.offered_load} outside (0, 1]")
        if self.mean_length <= self.min_length:
            raise ValueError("mean_length must exceed min_length")
        if not 0 <= self.multicast_fraction <= 1:
            raise ValueError("multicast_fraction outside [0, 1]")
        if self.max_length < self.mean_length:
            raise ValueError("max_length must be at least the mean length")
        if self.max_length > MAX_WORM_BYTES:
            raise ValueError(f"max_length exceeds Myrinet max {MAX_WORM_BYTES}")

    @property
    def mean_interarrival(self) -> float:
        """Mean time between worm generations at one host, byte-times."""
        return self.mean_length / self.offered_load


class TrafficGenerator:
    """Runs one Poisson source process per host."""

    def __init__(
        self,
        sim: Simulator,
        engine: MulticastEngine,
        config: TrafficConfig,
        rng: Optional[RandomStreams] = None,
        hosts: Optional[List[int]] = None,
    ) -> None:
        self.sim = sim
        self.engine = engine
        self.config = config
        self.rng = rng or engine.rng
        self.hosts = list(hosts) if hosts is not None else engine.net.topology.hosts
        self.generated_worms = 0
        self.generated_multicasts = 0
        self._started = False

    def start(self) -> None:
        """Launch all per-host source processes (idempotent)."""
        if self._started:
            raise RuntimeError("traffic generator already started")
        self._started = True
        for host in self.hosts:
            self.sim.process(self._source(host), name=f"traffic-h{host}")

    def _source(self, host: int):
        config = self.config
        arrivals = self.rng.stream(f"traffic.arrivals.h{host}")
        lengths = self.rng.stream(f"traffic.lengths.h{host}")
        choices = self.rng.stream(f"traffic.choices.h{host}")
        topology = self.engine.net.topology
        others = [h for h in self.hosts if h != host]
        if not others:
            return
        while True:
            yield self.sim.timeout(arrivals.exponential(config.mean_interarrival))
            length = min(
                lengths.geometric(config.mean_length, minimum=config.min_length),
                config.max_length,
            )
            if not topology.node_alive(host):
                # A crashed host stops generating, but the RNG draws above
                # still happen so its streams stay aligned if it comes back.
                continue
            # Re-resolved every message: host death splices members out of
            # (or dissolves) groups mid-run.  Fault-free runs see a static
            # list, and no RNG draw depends on it until `if groups`.
            groups = self.engine.groups.groups_of(host)
            self.generated_worms += 1
            if groups and choices.bernoulli(config.multicast_fraction):
                group = choices.choice(groups)
                self.generated_multicasts += 1
                self.engine.multicast(origin=host, gid=group.gid, length=length)
            else:
                self.engine.unicast(host, choices.choice(others), length)

    @property
    def multicast_share(self) -> float:
        """Observed fraction of generated worms that were multicasts."""
        if self.generated_worms == 0:
            return 0.0
        return self.generated_multicasts / self.generated_worms
