"""``python -m repro.serve`` — run the simulation service from the shell.

Examples
--------
Serve on a fixed port with an on-disk result cache::

    python -m repro.serve --port 7411 --cache-dir results/sweep_cache

Ephemeral port for scripting (the bound address lands in the ready
file, which is written only once the socket is listening)::

    python -m repro.serve --port 0 --ready-file /tmp/serve_ready.json

Then, from any script::

    from repro.serve.client import ServeClient
    client = ServeClient(host, port)
    client.submit_and_wait("load_point", {...})
"""

from __future__ import annotations

import argparse
import asyncio
import json
from pathlib import Path
from typing import List, Optional

from repro.serve.scheduler import Scheduler, ServeConfig
from repro.serve.server import ServeServer
from repro.sweep.cache import SweepCache


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve",
        description="Simulation-as-a-service front end for repro sweep points.",
    )
    parser.add_argument("--host", default="127.0.0.1", help="bind address")
    parser.add_argument(
        "--port", type=int, default=7411, help="bind port (0 = ephemeral)"
    )
    parser.add_argument(
        "--workers", type=int, default=None,
        help="worker processes (default: ServeConfig default)",
    )
    parser.add_argument(
        "--queue-depth", type=int, default=None,
        help="admission bound: submits beyond this many queued jobs shed",
    )
    parser.add_argument(
        "--batch-max", type=int, default=None,
        help="max same-kind jobs dispatched in one worker round trip",
    )
    parser.add_argument(
        "--job-timeout", type=float, default=None,
        help="seconds before a dispatch is declared hung and its worker killed",
    )
    parser.add_argument(
        "--retries", type=int, default=None,
        help="max retry attempts after a worker crash",
    )
    parser.add_argument(
        "--rate", type=float, default=None,
        help="per-client submit rate limit (tokens/second; omit = unlimited)",
    )
    parser.add_argument(
        "--burst", type=float, default=None,
        help="per-client token-bucket capacity (with --rate)",
    )
    parser.add_argument(
        "--cache-dir", type=Path, default=None,
        help="SweepCache directory for read-through/write-through results",
    )
    parser.add_argument(
        "--shard-id", default=None,
        help="identity of this instance inside a repro.cluster fleet "
        "(surfaced in the greeting and health responses)",
    )
    parser.add_argument(
        "--ready-file", type=Path, default=None,
        help="write {'host','port','pid'} JSON here once listening",
    )
    parser.add_argument(
        "--quiet", action="store_true", help="suppress the startup banner"
    )
    return parser


def config_from_args(args: argparse.Namespace) -> ServeConfig:
    config = ServeConfig()
    if args.workers is not None:
        config.workers = max(1, args.workers)
    if args.queue_depth is not None:
        config.max_queue = max(1, args.queue_depth)
    if args.batch_max is not None:
        config.batch_max = max(1, args.batch_max)
    if args.job_timeout is not None:
        config.job_timeout = args.job_timeout if args.job_timeout > 0 else None
    if args.retries is not None:
        config.max_retries = max(0, args.retries)
    if args.rate is not None:
        config.rate = args.rate
    if args.burst is not None:
        config.burst = args.burst
    if args.shard_id is not None:
        config.shard_id = args.shard_id
    return config


async def _serve(args: argparse.Namespace) -> int:
    import os

    cache = SweepCache(args.cache_dir) if args.cache_dir else None
    scheduler = Scheduler(config_from_args(args), cache=cache)
    server = ServeServer(scheduler, host=args.host, port=args.port)
    host, port = await server.start()
    if args.ready_file is not None:
        args.ready_file.parent.mkdir(parents=True, exist_ok=True)
        ready = {"host": host, "port": port, "pid": os.getpid()}
        if scheduler.config.shard_id is not None:
            ready["shard"] = scheduler.config.shard_id
        args.ready_file.write_text(json.dumps(ready))
    if not args.quiet:
        print(
            f"repro.serve listening on {host}:{port} "
            f"(workers={scheduler.pool.size}, queue={scheduler.config.max_queue}, "
            f"batch={scheduler.config.batch_max}, "
            f"cache={'on' if cache else 'off'})",
            flush=True,
        )
    try:
        await server.serve_until_stopped()
    except asyncio.CancelledError:  # pragma: no cover - signal teardown
        await server.stop()
    if not args.quiet:
        print("repro.serve stopped", flush=True)
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return asyncio.run(_serve(args))
    except KeyboardInterrupt:  # pragma: no cover - interactive teardown
        return 0
