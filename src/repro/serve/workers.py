"""Process-pool workers with crash detection, replacement and job timeouts.

``multiprocessing.Pool`` cannot kill a hung task, so the service rolls its
own minimal pool: one OS process per worker, spoken to over a ``Pipe``.
The asyncio scheduler talks to a worker through a thread (one per worker,
via a ``ThreadPoolExecutor``) that blocks on the pipe with a deadline:

* result arrives in time  -> list of per-point replies;
* deadline passes         -> the worker *process is terminated* (the only
  way to stop a hung simulation) and :class:`JobTimeout` raised;
* process died under us   -> :class:`WorkerCrashed` raised.

Either failure replaces the dead process with a fresh one before the
worker slot is released, so one pathological job can never shrink the
pool.  A dispatch is a *batch* — a list of ``(kind, params)`` payloads
executed sequentially in the child — which amortizes IPC per point;
results are independent per point, so batching cannot change any record
(each point still builds its own simulator from its own seed).
"""

from __future__ import annotations

import asyncio
import multiprocessing
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Dict, List, Optional, Tuple

Payload = Tuple[str, Dict[str, Any]]

#: Seconds between liveness checks while blocking on a worker pipe.
_POLL_INTERVAL = 0.25


class WorkerCrashed(RuntimeError):
    """The worker process died before answering (segfault, OOM-kill, ...)."""


class JobTimeout(RuntimeError):
    """The dispatch exceeded its deadline; the worker was terminated."""


def _worker_main(conn) -> None:  # pragma: no cover - runs in child process
    """Child loop: receive a batch, execute each point, send replies back.

    Executor exceptions are caught *per point* and shipped back as error
    replies — a deterministic executor failure must fail its job, not the
    worker.  Only real process death (or a hang) is a pool-level event.
    """
    from repro.sweep.points import execute_point

    while True:
        try:
            batch = conn.recv()
        except (EOFError, OSError, KeyboardInterrupt):
            return
        if batch is None:
            return
        replies = []
        for kind, params in batch:
            try:
                replies.append({"ok": True, "record": execute_point(kind, params)})
            except Exception as exc:  # noqa: BLE001 - forwarded to the job
                replies.append(
                    {"ok": False, "error": f"{type(exc).__name__}: {exc}"}
                )
        try:
            conn.send(replies)
        except (BrokenPipeError, OSError):
            return


class _Worker:
    """One live worker process and its parent-side pipe end."""

    def __init__(self, ctx) -> None:
        self.conn, child_conn = ctx.Pipe()
        self.process = ctx.Process(
            target=_worker_main, args=(child_conn,), daemon=True
        )
        self.process.start()
        child_conn.close()
        self.dispatches = 0

    def alive(self) -> bool:
        return self.process.is_alive()

    def kill(self) -> None:
        try:
            self.conn.close()
        except OSError:
            pass
        if self.process.is_alive():
            self.process.terminate()
        self.process.join(timeout=2.0)
        if self.process.is_alive():  # pragma: no cover - stuck in kernel
            self.process.kill()
            self.process.join(timeout=2.0)


class WorkerPool:
    """Fixed-size pool of replaceable worker processes.

    ``run`` is the async entry: it borrows a free worker, performs the
    blocking pipe exchange on a dedicated thread, and always returns the
    slot — with a *fresh* process if this dispatch killed the old one.
    """

    def __init__(self, size: int, context: Optional[str] = None) -> None:
        self.size = max(1, int(size))
        self._ctx = (
            multiprocessing.get_context(context)
            if context
            else multiprocessing.get_context()
        )
        self._threads = ThreadPoolExecutor(
            max_workers=self.size, thread_name_prefix="serve-worker"
        )
        self._free: Optional[asyncio.Queue] = None
        self._workers: List[_Worker] = []
        self.replacements = 0
        self._closed = False

    def start(self) -> None:
        """Spawn the worker processes (call from the serving event loop)."""
        self._free = asyncio.Queue()
        self._workers = [_Worker(self._ctx) for _ in range(self.size)]
        for worker in self._workers:
            self._free.put_nowait(worker)

    def alive_count(self) -> int:
        return sum(1 for w in self._workers if w.alive())

    async def run(
        self, payloads: List[Payload], timeout: Optional[float] = None
    ) -> List[Dict[str, Any]]:
        """Execute ``payloads`` on one worker; one reply dict per payload.

        Raises :class:`JobTimeout` or :class:`WorkerCrashed`; in both cases
        the implicated process has already been replaced.
        """
        if self._free is None:
            raise RuntimeError("WorkerPool.start() was never called")
        worker = await self._free.get()
        loop = asyncio.get_running_loop()
        try:
            replies = await loop.run_in_executor(
                self._threads, self._exchange, worker, payloads, timeout
            )
            worker.dispatches += 1
            return replies
        except (JobTimeout, WorkerCrashed):
            worker = self._replace(worker)
            raise
        finally:
            if not self._closed:
                self._free.put_nowait(worker)

    def _exchange(
        self, worker: _Worker, payloads: List[Payload], timeout: Optional[float]
    ) -> List[Dict[str, Any]]:
        """Blocking request/response on the worker pipe (executor thread)."""
        try:
            worker.conn.send(payloads)
        except (BrokenPipeError, OSError):
            raise WorkerCrashed("worker pipe closed on send") from None
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            remaining = None if deadline is None else deadline - time.monotonic()
            if remaining is not None and remaining <= 0:
                raise JobTimeout(f"no reply within {timeout:g}s")
            poll_for = (
                _POLL_INTERVAL
                if remaining is None
                else min(_POLL_INTERVAL, remaining)
            )
            try:
                ready = worker.conn.poll(poll_for)
            except (BrokenPipeError, OSError):
                raise WorkerCrashed("worker pipe closed while waiting") from None
            if ready:
                try:
                    return worker.conn.recv()
                except (EOFError, OSError):
                    raise WorkerCrashed("worker died mid-reply") from None
            if not worker.alive():
                # One last poll: the reply may have landed just before exit.
                if worker.conn.poll(0):
                    try:
                        return worker.conn.recv()
                    except (EOFError, OSError):
                        pass
                raise WorkerCrashed(
                    f"worker exited with code {worker.process.exitcode}"
                )

    def _replace(self, worker: _Worker) -> _Worker:
        """Terminate ``worker`` and return a fresh process for its slot."""
        worker.kill()
        fresh = _Worker(self._ctx)
        try:
            index = self._workers.index(worker)
            self._workers[index] = fresh
        except ValueError:  # pragma: no cover - defensive
            self._workers.append(fresh)
        self.replacements += 1
        return fresh

    def close(self) -> None:
        """Stop every worker and release the exchange threads."""
        self._closed = True
        for worker in self._workers:
            try:
                worker.conn.send(None)
            except (BrokenPipeError, OSError):
                pass
        for worker in self._workers:
            worker.kill()
        self._workers = []
        self._threads.shutdown(wait=False, cancel_futures=True)
