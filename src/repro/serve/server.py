"""The asyncio TCP front end: NDJSON requests in, NDJSON responses out.

:class:`ServeServer` binds a socket, greets each connection with one
banner line, then answers requests strictly in order (a ``result`` with
``wait`` parks only its own connection).  All scheduling decisions live in
:class:`~repro.serve.scheduler.Scheduler`; this module only translates
between wire messages and scheduler calls — including translating
scheduler rejections (:class:`Overloaded`, :class:`RateLimited`) into the
explicit backpressure responses clients act on.

:class:`ServerThread` runs the whole service on a private event loop in a
background thread — the harness tests and scripts use to stand up a live
server inside one process.
"""

from __future__ import annotations

import asyncio
import os
import threading
from typing import Any, Dict, Optional, Tuple

from repro.serve import protocol
from repro.serve.jobs import CANCELLED, DONE, FAILED
from repro.serve.scheduler import (
    Overloaded,
    RateLimited,
    Scheduler,
    ServeConfig,
    UnknownKind,
)
from repro.sweep.cache import SweepCache

#: Cap on a server-side ``result wait`` park (seconds); clients needing
#: longer poll again — keeps one dead client from pinning state forever.
MAX_WAIT_S = 300.0


class ServeServer:
    """One listening socket fronting one scheduler."""

    def __init__(
        self,
        scheduler: Scheduler,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self.scheduler = scheduler
        self.host = host
        self.port = port
        self._server: Optional[asyncio.base_events.Server] = None
        self._stop_event: Optional[asyncio.Event] = None

    # -- life cycle -----------------------------------------------------------
    async def start(self) -> Tuple[str, int]:
        """Start workers and begin listening; returns the bound address."""
        self._stop_event = asyncio.Event()
        self.scheduler.start()
        # The documented 1 MiB line cap must be the *stream's* limit too:
        # asyncio defaults to 64 KiB, which would reject legitimate large
        # submits long before protocol.decode_message ever saw them.
        self._server = await asyncio.start_server(
            self._handle_connection,
            self.host,
            self.port,
            limit=protocol.MAX_LINE_BYTES,
        )
        sock = self._server.sockets[0]
        self.host, self.port = sock.getsockname()[:2]
        return self.host, self.port

    async def serve_until_stopped(self) -> None:
        """Block until :meth:`request_stop` (or the ``shutdown`` op)."""
        assert self._stop_event is not None, "start() was never called"
        await self._stop_event.wait()
        await self.stop()

    def request_stop(self) -> None:
        if self._stop_event is not None:
            self._stop_event.set()

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        await self.scheduler.stop()

    # -- connection handling ----------------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        peer = writer.get_extra_info("peername")
        peer_id = f"{peer[0]}:{peer[1]}" if peer else "unknown"
        greeting = dict(protocol.GREETING)
        if self.scheduler.config.shard_id is not None:
            greeting["shard"] = self.scheduler.config.shard_id
        try:
            writer.write(protocol.encode_message(greeting))
            await writer.drain()
            while True:
                line = await self._read_line(reader)
                if line is None:
                    # Oversized line: it was discarded exactly through its
                    # newline, so the stream is resynced — answer the error
                    # and keep serving the connection.
                    writer.write(
                        protocol.encode_message(
                            protocol.error_response(
                                "bad_request",
                                f"request line exceeds "
                                f"{protocol.MAX_LINE_BYTES} bytes",
                            )
                        )
                    )
                    await writer.drain()
                    continue
                if not line:
                    break
                if not line.strip():
                    continue
                try:
                    message = protocol.decode_message(line)
                except protocol.ProtocolError as exc:
                    writer.write(
                        protocol.encode_message(
                            protocol.error_response("bad_request", str(exc))
                        )
                    )
                    await writer.drain()
                    continue
                response = await self._dispatch(message, peer_id)
                if "seq" in message:
                    response["seq"] = message["seq"]
                writer.write(protocol.encode_message(response))
                await writer.drain()
                if message.get("op") == "shutdown" and response.get("ok"):
                    self.request_stop()
                    break
        except (ConnectionResetError, BrokenPipeError):
            pass
        except asyncio.CancelledError:
            # Event-loop teardown with this connection parked (e.g. a
            # ``result wait`` against a shard being killed): end quietly,
            # the socket dies with the loop.
            pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass

    @staticmethod
    async def _read_line(reader: asyncio.StreamReader) -> Optional[bytes]:
        """One request line; b"" on EOF; None for an oversized line.

        ``readline`` reports an over-limit line as a bare ``ValueError``
        (never the :class:`asyncio.LimitOverrunError` it wraps) and leaves
        the stream mid-line; ``readuntil`` raises *without consuming*, so
        the oversized line can be discarded precisely through its newline
        (``LimitOverrunError.consumed`` bytes at a time) and the
        connection stays usable for the next request.
        """
        try:
            return await reader.readuntil(b"\n")
        except asyncio.IncompleteReadError as exc:
            return exc.partial  # EOF (b"" or a final unterminated line)
        except asyncio.LimitOverrunError:
            pass
        while True:
            try:
                await reader.readuntil(b"\n")
                return None  # resynced just past the oversized line
            except asyncio.IncompleteReadError:
                return b""  # EOF while discarding
            except asyncio.LimitOverrunError as exc:
                await reader.readexactly(exc.consumed)

    # -- request dispatch --------------------------------------------------------
    async def _dispatch(
        self, message: Dict[str, Any], peer_id: str
    ) -> Dict[str, Any]:
        op = message.get("op")
        if op not in protocol.OPS:
            return protocol.error_response(
                "unknown_op", f"op {op!r} not in {list(protocol.OPS)}"
            )
        self.scheduler.metrics.counter("serve.requests", op=op).add()
        handler = getattr(self, f"_op_{op}")
        try:
            return await handler(message, peer_id)
        except protocol.ProtocolError as exc:
            return protocol.error_response("bad_request", str(exc))

    @staticmethod
    def _job_or_error(scheduler: Scheduler, message: Dict[str, Any]):
        job_id = message.get("job")
        if not isinstance(job_id, str):
            raise protocol.ProtocolError("missing/invalid 'job' field")
        job = scheduler.jobs.get(job_id)
        if job is None:
            return None, protocol.error_response("unknown_job", job_id)
        return job, None

    async def _op_submit(
        self, message: Dict[str, Any], peer_id: str
    ) -> Dict[str, Any]:
        kind = message.get("kind")
        if not isinstance(kind, str):
            raise protocol.ProtocolError("missing/invalid 'kind' field")
        params = message.get("params", {})
        if not isinstance(params, dict):
            raise protocol.ProtocolError("'params' must be a JSON object")
        seed = message.get("seed")
        if seed is not None and not isinstance(seed, int):
            raise protocol.ProtocolError("'seed' must be an integer")
        priority = message.get("priority", 0)
        if not isinstance(priority, int):
            raise protocol.ProtocolError("'priority' must be an integer")
        client = message.get("client") or peer_id
        try:
            job, info = await self.scheduler.submit(
                kind, params, seed=seed, priority=priority, client=str(client)
            )
        except UnknownKind as exc:
            return protocol.error_response("unknown_kind", str(exc))
        except Overloaded as exc:
            return protocol.error_response(
                "overloaded", str(exc), queued=self.scheduler.queue_depth
            )
        except RateLimited as exc:
            return protocol.error_response("rate_limited", str(exc))
        return protocol.ok_response(
            job=job.id,
            state=job.state,
            coalesced=info["coalesced"],
            cached=info["cached"],
            queued=self.scheduler.queue_depth,
        )

    async def _op_status(
        self, message: Dict[str, Any], peer_id: str
    ) -> Dict[str, Any]:
        job, error = self._job_or_error(self.scheduler, message)
        if error:
            return error
        return protocol.ok_response(**job.status_fields())

    async def _op_result(
        self, message: Dict[str, Any], peer_id: str
    ) -> Dict[str, Any]:
        job, error = self._job_or_error(self.scheduler, message)
        if error:
            return error
        if message.get("wait") and job.state not in (DONE, FAILED, CANCELLED):
            timeout = message.get("timeout")
            wait_s = min(
                float(timeout) if timeout is not None else MAX_WAIT_S, MAX_WAIT_S
            )
            try:
                await asyncio.wait_for(job.finished.wait(), timeout=wait_s)
            except asyncio.TimeoutError:
                return protocol.error_response(
                    "timeout", f"job not finished within {wait_s:g}s",
                    job=job.id, state=job.state,
                )
        if job.state == DONE:
            return protocol.ok_response(
                job=job.id, state=DONE, source=job.source, record=job.record
            )
        if job.state == FAILED:
            return protocol.error_response(
                "failed", job.error, job=job.id, state=FAILED
            )
        if job.state == CANCELLED:
            return protocol.error_response("cancelled", job=job.id, state=CANCELLED)
        return protocol.error_response("pending", job=job.id, state=job.state)

    async def _op_cancel(
        self, message: Dict[str, Any], peer_id: str
    ) -> Dict[str, Any]:
        job, error = self._job_or_error(self.scheduler, message)
        if error:
            return error
        try:
            self.scheduler.cancel(job.id)
        except ValueError as exc:
            return protocol.error_response(
                "not_cancellable", str(exc), job=job.id, state=job.state
            )
        return protocol.ok_response(job=job.id, state=job.state)

    async def _op_health(
        self, message: Dict[str, Any], peer_id: str
    ) -> Dict[str, Any]:
        body = self.scheduler.health()
        body.update(version=protocol.PROTOCOL_VERSION, pid=os.getpid())
        return protocol.ok_response(**body)

    async def _op_metrics(
        self, message: Dict[str, Any], peer_id: str
    ) -> Dict[str, Any]:
        return protocol.ok_response(snapshot=self.scheduler.snapshot())

    async def _op_shutdown(
        self, message: Dict[str, Any], peer_id: str
    ) -> Dict[str, Any]:
        return protocol.ok_response(stopping=True)


class ServerThread:
    """A live server on a private event loop in a daemon thread.

    Usage::

        server = ServerThread(ServeConfig(workers=2), cache_dir=tmp)
        host, port = server.start()
        ... ServeClient(host, port) ...
        server.stop()

    The scheduler is exposed as :attr:`scheduler` for white-box
    assertions; read it only after the traffic of interest has settled.
    """

    def __init__(
        self,
        config: Optional[ServeConfig] = None,
        cache_dir=None,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self.config = config or ServeConfig()
        self.cache_dir = cache_dir
        self.host = host
        self.port = port
        self.scheduler: Optional[Scheduler] = None
        self._thread: Optional[threading.Thread] = None
        self._ready = threading.Event()
        self._startup_error: Optional[BaseException] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._server: Optional[ServeServer] = None

    def start(self, timeout: float = 30.0) -> Tuple[str, int]:
        self._thread = threading.Thread(
            target=self._run, name="repro-serve", daemon=True
        )
        self._thread.start()
        if not self._ready.wait(timeout):
            raise RuntimeError("serve thread failed to start in time")
        if self._startup_error is not None:
            raise RuntimeError("serve thread failed") from self._startup_error
        return self.host, self.port

    def _run(self) -> None:
        try:
            asyncio.run(self._main())
        except BaseException as exc:  # noqa: BLE001 - surfaced via start()
            self._startup_error = exc
            self._ready.set()

    async def _main(self) -> None:
        cache = SweepCache(self.cache_dir) if self.cache_dir else None
        self.scheduler = Scheduler(self.config, cache=cache)
        self._server = ServeServer(self.scheduler, self.host, self.port)
        self._loop = asyncio.get_running_loop()
        self.host, self.port = await self._server.start()
        self._ready.set()
        await self._server.serve_until_stopped()

    def stop(self, timeout: float = 30.0) -> None:
        if self._loop is not None and self._server is not None:
            try:
                self._loop.call_soon_threadsafe(self._server.request_stop)
            except RuntimeError:  # loop already closed
                pass
        if self._thread is not None:
            self._thread.join(timeout)

    def __enter__(self) -> "ServerThread":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()
