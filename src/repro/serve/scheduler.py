"""The job scheduler: coalescing, caching, priorities, backpressure.

One :class:`Scheduler` owns the job table, the priority queue, the worker
pool and the metrics.  The submit path decides, in order:

1. **rate limit** — each client drains a token bucket; an empty bucket is
   an explicit ``rate_limited`` rejection (load shedding at the edge);
2. **coalesce** — an active (queued/running) job with the same content
   key absorbs the submit: N identical submits share one computation;
3. **memory hit** — a finished job still in the (bounded) history answers
   immediately;
4. **cache hit** — the on-disk :class:`~repro.sweep.cache.SweepCache`
   answers immediately (read-through); fresh results are written back on
   completion (write-through), so a *restarted* server — or a plain
   ``repro.sweep`` run pointed at the same directory — reuses them;
5. **admission control** — a full queue is an explicit ``overloaded``
   rejection rather than unbounded memory growth and silent latency;
6. **enqueue** — into a priority heap (lower value runs earlier, FIFO
   within a priority).

Dispatch batches up to ``batch_max`` queued jobs *of the same kind, in
priority order* into one worker round-trip.  Failure policy: a worker
*crash* retries the batch's jobs individually with exponential backoff
(the shape of :class:`repro.core.transport_repair.RepairConfig` —
``base * factor**round`` capped at a maximum) up to ``max_retries``; a
*timeout* fails a solo job immediately but re-dispatches the members of a
multi-job batch alone once, so a hung job cannot poison its batchmates;
a deterministic executor *exception* fails the job with no retry.
"""

from __future__ import annotations

import asyncio
import heapq
import itertools
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple

from repro.obs import MetricsRegistry
from repro.serve.jobs import (
    CANCELLED,
    DONE,
    FAILED,
    FINISHED_STATES,
    QUEUED,
    RUNNING,
    Job,
    make_point,
)
from repro.serve.workers import JobTimeout, WorkerCrashed, WorkerPool
from repro.sweep.cache import SweepCache, code_fingerprint
from repro.sweep.points import POINT_KINDS

#: Histogram bounds for the wait/exec latency families (seconds).
_LATENCY_BOUNDS = (0.0, 60.0, 60)


class Overloaded(RuntimeError):
    """Queue depth at the admission bound; the submit was shed."""


class RateLimited(RuntimeError):
    """The client's token bucket is empty; the submit was shed."""


class UnknownKind(ValueError):
    """The submit names a point kind no executor is registered for."""


@dataclass
class ServeConfig:
    """Service knobs (all enforced by the scheduler, not the protocol).

    ``backoff_factor`` deliberately matches
    :class:`repro.core.transport_repair.RepairConfig` (1.5): the repair
    transport's answer to "retries amplifying an overload" applies to a
    crashed-worker retry storm just as well.
    """

    workers: int = 2
    max_queue: int = 256
    batch_max: int = 8
    job_timeout: Optional[float] = 60.0
    max_retries: int = 2
    retry_backoff: float = 0.25
    backoff_factor: float = 1.5
    max_backoff: float = 5.0
    #: Tokens/second granted to each client; None disables rate limiting.
    rate: Optional[float] = None
    burst: float = 20.0
    #: Seconds of inactivity after which a client's (full) token bucket is
    #: pruned.  A fresh bucket is indistinguishable from a full one, so
    #: pruning never changes an admission decision — it only bounds the
    #: per-client bucket table, which otherwise grows forever.
    bucket_idle_s: float = 600.0
    #: Finished jobs kept addressable for ``status``/``result``.
    history: int = 1024
    #: multiprocessing start method for workers (None = platform default).
    mp_context: Optional[str] = None
    #: Identity of this instance inside a :mod:`repro.cluster` fleet
    #: (surfaced in the greeting and ``health``; None = standalone).
    shard_id: Optional[str] = None


class TokenBucket:
    """Classic token bucket: ``rate`` tokens/s, capacity ``burst``."""

    __slots__ = ("rate", "burst", "tokens", "stamp")

    def __init__(self, rate: float, burst: float, now: float) -> None:
        self.rate = float(rate)
        self.burst = float(burst)
        self.tokens = float(burst)
        self.stamp = now

    def try_take(self, now: float) -> bool:
        self.tokens = min(self.burst, self.tokens + (now - self.stamp) * self.rate)
        self.stamp = now
        if self.tokens >= 1.0:
            self.tokens -= 1.0
            return True
        return False


class Scheduler:
    """Owns jobs, queue, workers and metrics; lives on one event loop."""

    def __init__(
        self,
        config: Optional[ServeConfig] = None,
        cache: Optional[SweepCache] = None,
        metrics: Optional[MetricsRegistry] = None,
        pool: Optional[WorkerPool] = None,
    ) -> None:
        self.config = config or ServeConfig()
        self.cache = cache
        self.metrics = metrics or MetricsRegistry()
        self.pool = pool or WorkerPool(
            self.config.workers, context=self.config.mp_context
        )
        # Coalescing keys are exactly the on-disk cache keys; without a
        # disk cache a root-less keyer provides the same content address.
        self._keyer = cache or SweepCache(Path("."), code_hash=code_fingerprint())
        self.jobs: Dict[str, Job] = {}
        self._heap: List[Tuple[int, int, Job]] = []
        self._tick = itertools.count()
        self._cond: Optional[asyncio.Condition] = None
        self._tasks: List[asyncio.Task] = []
        # Strong references to parked backoff-retry tasks: the event loop
        # holds tasks only weakly, so a bare create_task could be
        # garbage-collected mid-sleep, silently dropping the retry.
        self._retry_tasks: set = set()
        self._buckets: Dict[str, TokenBucket] = {}
        self._next_bucket_prune = float(self.config.bucket_idle_s)
        # Insertion-ordered finish history; a key occupies exactly one
        # slot (dict semantics), re-finishing moves it to the back.
        self._finished_order: Dict[str, None] = {}
        self._queued = 0
        self._running = 0
        self._t0 = time.monotonic()
        self._depth_tw = self.metrics.time_weighted("serve.queue_depth_tw")
        self._stopping = False

    # -- time -----------------------------------------------------------------
    def now(self) -> float:
        """Seconds since scheduler construction (the metrics time base)."""
        return time.monotonic() - self._t0

    # -- life cycle -----------------------------------------------------------
    def start(self) -> None:
        """Spawn workers and one dispatch loop per worker slot."""
        self._cond = asyncio.Condition()
        self.pool.start()
        self._tasks = [
            asyncio.create_task(self._worker_loop(), name=f"serve-dispatch-{i}")
            for i in range(self.pool.size)
        ]

    async def stop(self) -> None:
        """Cancel dispatch loops and tear the pool down."""
        self._stopping = True
        for task in list(self._tasks) + list(self._retry_tasks):
            task.cancel()
        for task in list(self._tasks) + list(self._retry_tasks):
            try:
                await task
            except (asyncio.CancelledError, Exception):  # noqa: BLE001
                pass
        self._tasks = []
        self._retry_tasks.clear()
        self.pool.close()

    # -- submit path ----------------------------------------------------------
    async def submit(
        self,
        kind: str,
        params: Optional[Dict[str, Any]] = None,
        seed: Optional[int] = None,
        priority: int = 0,
        client: Optional[str] = None,
    ) -> Tuple[Job, Dict[str, Any]]:
        """Admit one point; returns ``(job, info)``.

        ``info`` says how the submit resolved: ``{"coalesced": bool,
        "cached": bool}``.  Raises :class:`UnknownKind`,
        :class:`RateLimited` or :class:`Overloaded`.
        """
        if kind not in POINT_KINDS:
            raise UnknownKind(
                f"unknown point kind {kind!r}; known: {sorted(POINT_KINDS)}"
            )
        now = self.now()
        if self.config.rate is not None:
            self._prune_buckets(now)
            bucket = self._buckets.get(client or "")
            if bucket is None:
                bucket = TokenBucket(self.config.rate, self.config.burst, now)
                self._buckets[client or ""] = bucket
            if not bucket.try_take(now):
                self.metrics.counter("serve.shed", reason="rate_limited").add()
                raise RateLimited(
                    f"client {client or '(anonymous)'} exceeded "
                    f"{self.config.rate:g} submits/s"
                )

        point = make_point(kind, params, seed)
        key = self._keyer.key(point)
        self.metrics.counter("serve.submitted", kind=kind).add()

        existing = self.jobs.get(key)
        if existing is not None and existing.state not in FINISHED_STATES:
            existing.submits += 1
            self.metrics.counter("serve.coalesced").add()
            return existing, {"coalesced": True, "cached": False}
        if existing is not None and existing.state == DONE:
            existing.submits += 1
            self.metrics.counter("serve.cache_hits", src="memory").add()
            return existing, {"coalesced": False, "cached": True}
        # A failed/cancelled job is resubmittable: fall through and requeue.

        if self.cache is not None:
            record = self.cache.get(point)
            if record is not None:
                job = Job(
                    id=key, point=point, priority=priority, submitted_at=now
                )
                job.finish(DONE, now, record=record, source="cache")
                self._remember(job)
                self.metrics.counter("serve.cache_hits", src="disk").add()
                return job, {"coalesced": False, "cached": True}

        if self._queued >= self.config.max_queue:
            self.metrics.counter("serve.shed", reason="queue_full").add()
            raise Overloaded(
                f"queue full ({self._queued}/{self.config.max_queue})"
            )

        job = Job(id=key, point=point, priority=priority, submitted_at=now)
        self._remember(job)
        await self._enqueue(job)
        return job, {"coalesced": False, "cached": False}

    def _remember(self, job: Job) -> None:
        self.jobs[job.id] = job
        if job.state in FINISHED_STATES:
            self._trim_history(job.id)
        else:
            # A resubmitted failed/cancelled key is live again; it must not
            # keep (or later duplicate) a history slot while it runs.
            self._finished_order.pop(job.id, None)

    def _prune_buckets(self, now: float) -> None:
        """Drop buckets idle past the horizon *and* back at full burst.

        Both conditions make pruning lossless: a pruned client's next
        submit builds a fresh bucket, and a fresh bucket admits exactly
        what a full one would.  Sweeps are amortized — at most one scan
        per half horizon.
        """
        if now < self._next_bucket_prune:
            return
        horizon = self.config.bucket_idle_s
        self._next_bucket_prune = now + max(horizon / 2.0, 1e-9)
        stale = [
            client
            for client, bucket in self._buckets.items()
            if now - bucket.stamp >= horizon
            and bucket.tokens + (now - bucket.stamp) * bucket.rate >= bucket.burst
        ]
        for client in stale:
            del self._buckets[client]

    def _trim_history(self, finished_id: str) -> None:
        # Move-to-back: one slot per key, so trimming can never evict a
        # *newer* finish through a stale duplicate entry.
        self._finished_order.pop(finished_id, None)
        self._finished_order[finished_id] = None
        while len(self._finished_order) > self.config.history:
            old_id = next(iter(self._finished_order))
            del self._finished_order[old_id]
            old = self.jobs.get(old_id)
            if old is not None and old.state in FINISHED_STATES:
                del self.jobs[old_id]

    async def _enqueue(self, job: Job) -> None:
        assert self._cond is not None, "Scheduler.start() was never called"
        async with self._cond:
            job.state = QUEUED
            heapq.heappush(self._heap, (job.priority, next(self._tick), job))
            self._queued += 1
            self._depth_tw.update(self.now(), self._queued)
            self._cond.notify()

    # -- cancel ----------------------------------------------------------------
    def cancel(self, job_id: str) -> Job:
        """Cancel a queued job (lazy heap removal); raises on bad states."""
        job = self.jobs.get(job_id)
        if job is None:
            raise KeyError(job_id)
        if job.state != QUEUED:
            raise ValueError(f"job is {job.state}, only queued jobs cancel")
        job.finish(CANCELLED, self.now())
        self._queued -= 1
        self._depth_tw.update(self.now(), self._queued)
        self.metrics.counter("serve.cancelled").add()
        self._trim_history(job.id)
        return job

    # -- dispatch ---------------------------------------------------------------
    async def _next_batch(self) -> List[Job]:
        """Pop the highest-priority runnable batch (same kind, in order)."""
        assert self._cond is not None
        async with self._cond:
            while True:
                batch = self._pop_batch_locked()
                if batch:
                    return batch
                await self._cond.wait()

    def _pop_batch_locked(self) -> List[Job]:
        batch: List[Job] = []
        while self._heap:
            _prio, _tick, job = self._heap[0]
            if job.state != QUEUED:  # cancelled or requeued-under-new-entry
                heapq.heappop(self._heap)
                continue
            if batch and (
                job.point.kind != batch[0].point.kind
                or job.solo
                or batch[0].solo
                or len(batch) >= self.config.batch_max
            ):
                break
            heapq.heappop(self._heap)
            job.state = RUNNING
            job.started_at = self.now()
            job.attempts += 1
            batch.append(job)
            if job.solo:
                break
        if batch:
            self._queued -= len(batch)
            self._running += len(batch)
            self._depth_tw.update(self.now(), self._queued)
        return batch

    async def _worker_loop(self) -> None:
        """One per worker slot: pull a batch, run it, settle the jobs."""
        while not self._stopping:
            batch = await self._next_batch()
            payloads = [(j.point.kind, j.point.executor_params()) for j in batch]
            self.metrics.counter("serve.batches").add()
            self.metrics.tally("serve.batch_size").add(len(batch))
            for job in batch:
                wait = (job.started_at or 0.0) - job.submitted_at
                self.metrics.tally("serve.wait_s").add(wait)
                self.metrics.histogram("serve.wait_s_hist", *_LATENCY_BOUNDS).add(
                    wait
                )
            try:
                replies = await self.pool.run(
                    payloads, timeout=self.config.job_timeout
                )
            except JobTimeout:
                self._running -= len(batch)
                self.metrics.counter("serve.worker_timeouts").add()
                for job in batch:
                    if len(batch) == 1 or job.solo:
                        self._fail(job, "timeout", "no reply within job_timeout")
                    else:
                        # Innocent-until-solo: rerun each alone so only the
                        # genuinely hung job times out next round.
                        job.solo = True
                        await self._requeue(job, delay=0.0)
            except WorkerCrashed as exc:
                self._running -= len(batch)
                self.metrics.counter("serve.worker_crashes").add()
                for job in batch:
                    await self._retry_or_fail(job, f"worker crashed: {exc}")
            else:
                self._running -= len(batch)
                if len(replies) != len(batch):
                    # A lying/buggy pool must not strand jobs in RUNNING:
                    # settle what was answered, fail the rest explicitly.
                    self.metrics.counter("serve.reply_mismatch").add()
                for job, reply in zip(batch, replies):
                    if reply.get("ok"):
                        self._complete(job, reply["record"])
                    else:
                        self._fail(job, "error", reply.get("error"))
                for job in batch[len(replies):]:
                    self._fail(
                        job,
                        "reply_mismatch",
                        f"pool returned {len(replies)} replies "
                        f"for {len(batch)} jobs",
                    )

    async def _retry_or_fail(self, job: Job, detail: str) -> None:
        if job.attempts > self.config.max_retries:
            self._fail(job, "crash", detail)
            return
        delay = min(
            self.config.retry_backoff
            * self.config.backoff_factor ** (job.attempts - 1),
            self.config.max_backoff,
        )
        self.metrics.counter("serve.retries").add()
        await self._requeue(job, delay=delay)

    async def _requeue(self, job: Job, delay: float) -> None:
        if delay <= 0:
            await self._enqueue(job)
            return

        async def later() -> None:
            await asyncio.sleep(delay)
            if not self._stopping and job.state == RUNNING:
                await self._enqueue(job)

        # Park the job off-queue for the backoff window; its state stays
        # RUNNING so coalescing still finds it and cancel refuses it.  The
        # task set keeps a strong reference for the sleep's duration.
        task = asyncio.create_task(later())
        self._retry_tasks.add(task)
        task.add_done_callback(self._retry_tasks.discard)

    def _complete(self, job: Job, record: Dict[str, Any]) -> None:
        now = self.now()
        job.finish(DONE, now, record=record, source="executed")
        self.metrics.counter("serve.executed", kind=job.point.kind).add()
        self.metrics.counter("serve.completed", kind=job.point.kind).add()
        exec_s = now - (job.started_at or now)
        self.metrics.tally("serve.exec_s").add(exec_s)
        self.metrics.histogram("serve.exec_s_hist", *_LATENCY_BOUNDS).add(exec_s)
        if self.cache is not None:
            self.cache.put(job.point, record)
        self._trim_history(job.id)

    def _fail(self, job: Job, reason: str, detail: Optional[str]) -> None:
        job.finish(
            FAILED, self.now(), error=f"{reason}: {detail}" if detail else reason
        )
        self.metrics.counter("serve.failed", reason=reason).add()
        self._trim_history(job.id)

    # -- introspection -----------------------------------------------------------
    @property
    def queue_depth(self) -> int:
        return self._queued

    @property
    def running(self) -> int:
        return self._running

    def health(self) -> Dict[str, Any]:
        return {
            "status": "ok",
            "shard": self.config.shard_id,
            "uptime_s": round(self.now(), 3),
            "workers": self.pool.size,
            "workers_alive": self.pool.alive_count(),
            "worker_replacements": self.pool.replacements,
            "queued": self._queued,
            "running": self._running,
            "jobs_tracked": len(self.jobs),
        }

    def snapshot(self) -> Dict[str, Any]:
        """Metrics snapshot with the point-in-time gauges filled in."""
        now = self.now()
        gauge = self.metrics.gauge
        gauge("serve.queue_depth").set(self._queued)
        gauge("serve.running").set(self._running)
        gauge("serve.workers_alive").set(self.pool.alive_count())
        gauge("serve.jobs_tracked").set(len(self.jobs))
        gauge("serve.rate_buckets").set(len(self._buckets))
        if self.cache is not None:
            gauge("serve.disk_cache_hits").set(self.cache.hits)
            gauge("serve.disk_cache_misses").set(self.cache.misses)
        return self.metrics.snapshot(now)
