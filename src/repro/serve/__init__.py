"""Simulation-as-a-service: an always-on front end for sweep points.

Every batch entry point (``repro.sweep``, benchmarks, the obs CLI) costs
a process per question; :mod:`repro.serve` keeps the simulator resident
and answers many concurrent scenario queries over a newline-delimited
JSON TCP protocol.  The scheduler deduplicates identical specs
(content-addressed by the same key the on-disk sweep cache uses),
coalesces in-flight duplicates onto one computation, reads through /
writes through :class:`~repro.sweep.cache.SweepCache`, applies admission
control and per-client rate limits under load, batches compatible points
per worker round trip, and survives crashed or hung workers.  A record
obtained through the service is byte-identical to the same point run via
``repro.sweep`` — the service changes *when and where* a point runs,
never its physics.

Pieces: :mod:`~repro.serve.protocol` (wire format),
:mod:`~repro.serve.jobs` (content-addressed jobs),
:mod:`~repro.serve.scheduler` (queueing/coalescing/backpressure),
:mod:`~repro.serve.workers` (replaceable process pool),
:mod:`~repro.serve.server` (asyncio TCP front end),
:mod:`~repro.serve.client` (blocking client),
:mod:`~repro.serve.cli` (``python -m repro.serve``).
"""

from repro.serve.client import ServeClient, ServeError
from repro.serve.jobs import Job, make_point
from repro.serve.protocol import PROTOCOL_VERSION, ProtocolError
from repro.serve.scheduler import (
    Overloaded,
    RateLimited,
    Scheduler,
    ServeConfig,
    TokenBucket,
    UnknownKind,
)
from repro.serve.server import ServeServer, ServerThread
from repro.serve.workers import JobTimeout, WorkerCrashed, WorkerPool

__all__ = [
    "Job",
    "JobTimeout",
    "Overloaded",
    "PROTOCOL_VERSION",
    "ProtocolError",
    "RateLimited",
    "Scheduler",
    "ServeClient",
    "ServeConfig",
    "ServeError",
    "ServeServer",
    "ServerThread",
    "TokenBucket",
    "UnknownKind",
    "WorkerCrashed",
    "WorkerPool",
    "make_point",
]
