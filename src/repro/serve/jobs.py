"""Jobs: content-addressed units of work the service schedules.

A job wraps one :class:`~repro.sweep.spec.SweepPoint` and is identified by
the *same* key :class:`~repro.sweep.cache.SweepCache` uses on disk —
``sha256(code_hash | kind | canonical params | seed)`` — so

* two submits of the same spec are the same job (dedup / coalescing),
* a job's identity is exactly its cache address (read-through/write-through
  needs no translation), and
* editing any simulator source changes every id at once, so a restarted
  server can never serve results produced by stale physics.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from typing import Any, Dict, Optional

from repro.sweep.cache import SweepCache
from repro.sweep.spec import SweepPoint, canonical_key

#: Job life cycle.  ``queued -> running -> done|failed`` plus
#: ``queued -> cancelled``; a crashed attempt may loop ``running -> queued``
#: until its retry budget is spent.
QUEUED = "queued"
RUNNING = "running"
DONE = "done"
FAILED = "failed"
CANCELLED = "cancelled"

FINISHED_STATES = (DONE, FAILED, CANCELLED)


def make_point(
    kind: str, params: Optional[Dict[str, Any]] = None, seed: Optional[int] = None
) -> SweepPoint:
    """Build the sweep point a submit request describes.

    Seed precedence mirrors :meth:`repro.sweep.spec.SweepSpec.points`: a
    ``seed`` key inside ``params`` wins, then the explicit ``seed``
    argument, then the default seed 1.
    """
    params = dict(params or {})
    if "seed" in params:
        point_seed = int(params["seed"])
    elif seed is not None:
        point_seed = int(seed)
    else:
        point_seed = 1
    return SweepPoint(
        index=0,
        kind=str(kind),
        params=params,
        seed=point_seed,
        key=canonical_key(params),
    )


def job_id(point: SweepPoint, keyer: SweepCache) -> str:
    """The content address of ``point`` — exactly the on-disk cache key."""
    return keyer.key(point)


@dataclass
class Job:
    """One scheduled computation plus everything observers may ask about."""

    id: str
    point: SweepPoint
    priority: int = 0
    state: str = QUEUED
    record: Optional[Dict[str, Any]] = None
    error: Optional[str] = None
    #: How the result was obtained: ``executed``, ``cache`` or None (not
    #: finished / not successful).
    source: Optional[str] = None
    attempts: int = 0
    submits: int = 1
    #: Set after a batch timeout: re-dispatch this job alone so a hung
    #: neighbour cannot take it down again (and vice versa).
    solo: bool = False
    submitted_at: float = 0.0
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    finished: asyncio.Event = field(default_factory=asyncio.Event)

    def status_fields(self) -> Dict[str, Any]:
        """The JSON-safe status body shared by ``submit``/``status``."""
        return {
            "job": self.id,
            "kind": self.point.kind,
            "state": self.state,
            "priority": self.priority,
            "attempts": self.attempts,
            "submits": self.submits,
            "source": self.source,
            "error": self.error,
            "submitted_at": self.submitted_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
        }

    def finish(
        self,
        state: str,
        now: float,
        record: Optional[Dict[str, Any]] = None,
        error: Optional[str] = None,
        source: Optional[str] = None,
    ) -> None:
        self.state = state
        self.record = record
        self.error = error
        self.source = source
        self.finished_at = now
        self.finished.set()
