"""A small blocking client for the simulation service.

Deliberately synchronous (plain ``socket``): usable from scripts, tests
and notebooks without touching asyncio.  One request per call, one
response per request — the server answers a connection's requests in
order, so no sequence bookkeeping is needed; open one client per thread
for concurrency.

Usage::

    from repro.serve.client import ServeClient

    with ServeClient("127.0.0.1", 7411) as client:
        record = client.submit_and_wait(
            "load_point",
            {"topology": "torus", "rows": 8, "cols": 8,
             "scheme": "hamiltonian-sf", "load": 0.05},
        )
"""

from __future__ import annotations

import socket
from typing import Any, Dict, Optional

from repro.serve import protocol


class ServeError(RuntimeError):
    """A structured server-side rejection (carries the protocol code)."""

    def __init__(self, code: str, detail: Optional[str] = None, **fields: Any):
        super().__init__(f"{code}: {detail}" if detail else code)
        self.code = code
        self.detail = detail
        self.fields = fields


class ServeClient:
    """One TCP connection to a :class:`~repro.serve.server.ServeServer`."""

    def __init__(
        self, host: str = "127.0.0.1", port: int = 7411, timeout: float = 60.0
    ) -> None:
        self.timeout = timeout
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._fh = self._sock.makefile("rwb")
        self.greeting = self._read()
        if self.greeting.get("serve") != "repro":
            raise ServeError("bad_greeting", f"unexpected banner {self.greeting!r}")

    @property
    def shard(self) -> Optional[str]:
        """The server's fleet identity from the greeting (None standalone)."""
        return self.greeting.get("shard")

    @classmethod
    def from_ready_file(cls, path, timeout: float = 60.0) -> "ServeClient":
        """Connect to the address a ``--ready-file`` announced."""
        import json
        from pathlib import Path

        address = json.loads(Path(path).read_text())
        return cls(address["host"], address["port"], timeout=timeout)

    # -- transport ------------------------------------------------------------
    def _read(self) -> Dict[str, Any]:
        line = self._fh.readline()
        if not line:
            raise ConnectionError("server closed the connection")
        return protocol.decode_message(line)

    def call(self, op: str, **fields: Any) -> Dict[str, Any]:
        """Send one request, return the raw response dict (no raising)."""
        message = {"op": op}
        message.update({k: v for k, v in fields.items() if v is not None})
        self._fh.write(protocol.encode_message(message))
        self._fh.flush()
        return self._read()

    def _checked(self, op: str, **fields: Any) -> Dict[str, Any]:
        response = self.call(op, **fields)
        if not response.get("ok"):
            raise ServeError(
                response.get("error", "unknown"),
                response.get("detail"),
                **{
                    k: v
                    for k, v in response.items()
                    if k not in ("ok", "error", "detail")
                },
            )
        return response

    # -- verbs ----------------------------------------------------------------
    def submit(
        self,
        kind: str,
        params: Optional[Dict[str, Any]] = None,
        seed: Optional[int] = None,
        priority: Optional[int] = None,
        client: Optional[str] = None,
    ) -> Dict[str, Any]:
        """Submit one point; raises :class:`ServeError` on shed/rejection."""
        return self._checked(
            "submit",
            kind=kind,
            params=params or {},
            seed=seed,
            priority=priority,
            client=client,
        )

    def status(self, job: str) -> Dict[str, Any]:
        return self._checked("status", job=job)

    def result(
        self, job: str, wait: bool = True, timeout: Optional[float] = None
    ) -> Dict[str, Any]:
        """The finished job's response; raises on failed/cancelled/timeout.

        With ``wait`` the server parks the request; the socket deadline is
        stretched to cover it.
        """
        wait_s = timeout if timeout is not None else self.timeout
        if wait:
            self._sock.settimeout(wait_s + 10.0)
        try:
            return self._checked("result", job=job, wait=wait, timeout=wait_s)
        finally:
            self._sock.settimeout(self.timeout)

    def submit_and_wait(
        self,
        kind: str,
        params: Optional[Dict[str, Any]] = None,
        seed: Optional[int] = None,
        priority: Optional[int] = None,
        client: Optional[str] = None,
        timeout: Optional[float] = None,
    ) -> Dict[str, Any]:
        """Submit and block for the record — the one-call happy path."""
        submitted = self.submit(
            kind, params, seed=seed, priority=priority, client=client
        )
        return self.result(submitted["job"], wait=True, timeout=timeout)["record"]

    def cancel(self, job: str) -> Dict[str, Any]:
        return self._checked("cancel", job=job)

    def health(self) -> Dict[str, Any]:
        return self._checked("health")

    def metrics(self) -> Dict[str, Any]:
        """The service's :mod:`repro.obs` metrics snapshot."""
        return self._checked("metrics")["snapshot"]

    def shutdown(self) -> Dict[str, Any]:
        return self._checked("shutdown")

    # -- life cycle -----------------------------------------------------------
    def close(self) -> None:
        try:
            self._fh.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
