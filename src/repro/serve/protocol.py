"""Wire protocol of the simulation service: newline-delimited JSON.

Every message — request or response — is one JSON object serialized on a
single line and terminated by ``\\n``.  Requests carry an ``op`` field
naming the verb; responses always carry ``ok`` (bool) and echo the
request's ``seq`` field when one was given, so pipelining clients can
match responses to requests.  The server answers requests of one
connection strictly in order, so the simplest client is "write a line,
read a line".

Verbs
-----
``submit``
    ``{"op": "submit", "kind": ..., "params": {...}, "seed"?, "priority"?,
    "client"?}`` — enqueue one sweep point.  Responds with the
    content-addressed job id (identical specs always map to the same id —
    that *is* the dedup/coalescing), the job's current state and whether
    the submit coalesced onto an in-flight job or hit a cache.
``status``
    ``{"op": "status", "job": id}`` — queue/exec state and timings.
``result``
    ``{"op": "result", "job": id, "wait"?, "timeout"?}`` — the result
    record once the job is done; with ``wait`` the server parks the
    request until completion (bounded by ``timeout`` seconds).
``cancel``
    ``{"op": "cancel", "job": id}`` — cancel a *queued* job.
``health``
    liveness + load summary (uptime, workers, queue depth).
``metrics``
    a :mod:`repro.obs` metrics snapshot of the whole service.
``shutdown``
    ask the server to stop (used by tests and the smoke harness).

Error codes (``{"ok": false, "error": code, ...}``): ``bad_request``,
``unknown_op``, ``unknown_kind``, ``unknown_job``, ``overloaded``,
``rate_limited``, ``not_cancellable``, ``pending``, ``failed``,
``cancelled``, ``timeout``.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Optional

#: Bumped on incompatible message-shape changes.
PROTOCOL_VERSION = 1

#: The greeting line the server writes on connect.  An instance running
#: inside a :mod:`repro.cluster` fleet adds its ``shard`` identity, so a
#: routing client can verify it reached the shard it aimed for.
GREETING = {"serve": "repro", "version": PROTOCOL_VERSION}

#: Verbs the server understands.
OPS = ("submit", "status", "result", "cancel", "health", "metrics", "shutdown")

#: Maximum accepted request line (bytes); keeps a hostile/buggy client from
#: ballooning server memory.  Params are small parameter dicts, not data.
MAX_LINE_BYTES = 1_048_576


class ProtocolError(ValueError):
    """A malformed message (bad JSON, wrong shape, oversized line)."""


def encode_message(message: Dict[str, Any]) -> bytes:
    """One canonical NDJSON line for ``message`` (sorted keys, strict JSON)."""
    return (
        json.dumps(message, sort_keys=True, separators=(",", ":"), allow_nan=False)
        + "\n"
    ).encode()


def decode_message(line: bytes) -> Dict[str, Any]:
    """Parse one received line into a message dict."""
    if len(line) > MAX_LINE_BYTES:
        raise ProtocolError(f"message exceeds {MAX_LINE_BYTES} bytes")
    try:
        message = json.loads(line)
    except json.JSONDecodeError as exc:
        raise ProtocolError(f"invalid JSON: {exc}") from None
    if not isinstance(message, dict):
        raise ProtocolError(f"message must be a JSON object, got {type(message).__name__}")
    return message


def error_response(
    code: str, detail: Optional[str] = None, **extra: Any
) -> Dict[str, Any]:
    """A failure response body with error ``code`` and optional detail."""
    response: Dict[str, Any] = {"ok": False, "error": code}
    if detail:
        response["detail"] = detail
    response.update(extra)
    return response


def ok_response(**fields: Any) -> Dict[str, Any]:
    """A success response body."""
    response: Dict[str, Any] = {"ok": True}
    response.update(fields)
    return response
