"""Entry point for ``python -m repro.serve``."""

import sys

from repro.serve.cli import main

sys.exit(main())
