"""LANai network-interface timing model.

Time unit in this module: **microseconds** (the natural unit for host
software overheads; 1 byte on a 640 Mb/s link is 0.0125 us).

The adapter implements the paper's Hamiltonian-circuit multicast firmware
(Section 8): multicast packets are recognized by group id, copied to the
host, and retransmitted to the next hop entirely within the NIC,
store-and-forward, stopping at the previous node in the circuit.  There is
no backpressure from the adapter into the network: a packet arriving to a
full input buffer is dropped and counted (Figure 13's loss).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.sim.engine import Simulator
from repro.sim.resources import Container, Resource

_packet_ids = itertools.count(1)


@dataclass
class LanaiConfig:
    """Calibration constants for the testbed model.

    ``host_send_overhead_us`` dominates: it covers the application-space
    interface handing the packet to the NIC on a 70 MHz SPARCstation 5
    (the paper notes these hosts have low IP throughput relative to the
    network, which is why the app-space tool was used at all).
    """

    link_mbps: float = 640.0
    host_send_overhead_us: float = 350.0
    #: Host-side per-byte copy cost (app-space interface moves the packet
    #: through the 70 MHz SPARCstation's memory system).
    host_copy_us_per_byte: float = 0.025
    nic_forward_overhead_us: float = 25.0
    nic_rx_overhead_us: float = 5.0
    input_buffer_bytes: int = 25 * 1024
    path_latency_us: float = 1.0
    #: Host-side cost of taking one received packet off the NIC (DMA into
    #: host memory + application read).  In the all-send pattern this work
    #: competes with packet *origination* for the 70 MHz host CPU, which is
    #: what pulls the all-send curve of Figure 12 below the single-sender
    #: curve.
    host_recv_overhead_us: float = 323.0
    host_recv_us_per_byte: float = 0.0363
    #: The LANai is a single 16-bit processor: draining an arrived packet
    #: into SRAM, originating, and forwarding all compete for it.  This is
    #: what makes loss appear only when hosts originate *and* forward
    #: (Section 8.2's observation).
    cpu_bound_rx: bool = True

    def wire_time_us(self, size_bytes: int) -> float:
        """Transmission time of ``size_bytes`` on the link."""
        return size_bytes * 8.0 / self.link_mbps

    def host_send_us(self, size_bytes: int) -> float:
        """Host-side cost to hand one packet to the NIC."""
        return self.host_send_overhead_us + self.host_copy_us_per_byte * size_bytes

    def host_recv_us(self, size_bytes: int) -> float:
        """Host-side cost to take one received packet off the NIC."""
        return self.host_recv_overhead_us + self.host_recv_us_per_byte * size_bytes


@dataclass
class Packet:
    """One multicast packet on the testbed."""

    origin: int
    size: int
    hop_count: int
    created_us: float
    pid: int = field(default_factory=lambda: next(_packet_ids))


class AdapterStats:
    """Per-adapter counters for the Figure 12/13 metrics."""

    __slots__ = (
        "originated", "received_packets", "received_bytes",
        "arrivals", "drops", "injected_drops", "forwarded",
    )

    def __init__(self) -> None:
        self.originated = 0
        self.received_packets = 0
        self.received_bytes = 0
        self.arrivals = 0
        self.drops = 0
        self.injected_drops = 0
        self.forwarded = 0

    def reset(self) -> None:
        self.__init__()

    @property
    def loss_rate(self) -> float:
        return self.drops / self.arrivals if self.arrivals else 0.0


class MyrinetAdapter:
    """One host's LANai card on the measurement testbed."""

    def __init__(
        self, sim: Simulator, host_id: int, config: LanaiConfig, obs=None
    ) -> None:
        self.sim = sim
        self.host_id = host_id
        self.config = config
        self.tx = Resource(sim, capacity=1)  # the single outgoing link
        self.cpu = Resource(sim, capacity=1)  # the single LANai processor
        self.host_cpu = Resource(sim, capacity=1)  # the SPARCstation CPU
        self.input_buffer = Container(sim, capacity=config.input_buffer_bytes)
        self.successor: Optional["MyrinetAdapter"] = None
        self.stats = AdapterStats()
        self.obs = obs
        self._greedy_proc = None
        self._pending_buffer_faults = 0

    # -- fault injection -----------------------------------------------------
    def inject_buffer_fault(self, count: int = 1) -> None:
        """Force the next ``count`` arriving packets to be dropped as if the
        input buffer had no room (transient SRAM/buffer fault).  Counted in
        both ``stats.drops`` and ``stats.injected_drops``."""
        if count < 0:
            raise ValueError("fault count must be non-negative")
        self._pending_buffer_faults += count

    # -- origination ---------------------------------------------------------
    def start_greedy_sender(self, size: int, hop_count: int) -> None:
        """'The application simply sent as many packets as possible out to
        the network' (Section 8.2)."""
        if self._greedy_proc is not None:
            raise RuntimeError("sender already running")
        self._greedy_proc = self.sim.process(
            self._greedy_sender(size, hop_count), name=f"sender-h{self.host_id}"
        )

    def _greedy_sender(self, size: int, hop_count: int):
        config = self.config
        while True:
            # Host-side per-packet work (app -> driver -> NIC SRAM); the
            # host CPU is shared with the receive path.
            host_req = self.host_cpu.request()
            yield host_req
            yield self.sim.timeout(config.host_send_us(size))
            self.host_cpu.release(host_req)
            packet = Packet(
                origin=self.host_id,
                size=size,
                hop_count=hop_count,
                created_us=self.sim.now,
            )
            yield from self._transmit(packet)
            self.stats.originated += 1

    def _transmit(self, packet: Packet):
        """Occupy the LANai and the outgoing link for the packet's wire
        time, then hand it to the successor after the switch path latency."""
        cpu_req = self.cpu.request() if self.config.cpu_bound_rx else None
        if cpu_req is not None:
            yield cpu_req
        request = self.tx.request()
        yield request
        yield self.sim.timeout(self.config.wire_time_us(packet.size))
        self.tx.release(request)
        if cpu_req is not None:
            self.cpu.release(cpu_req)
        successor = self.successor
        if successor is None:
            return
        delay = self.sim.timeout(self.config.path_latency_us)
        delay.callbacks.append(lambda _ev: successor.receive(packet))

    # -- reception / forwarding -----------------------------------------------
    def receive(self, packet: Packet) -> None:
        """Packet fully arrived at the input port: admit or drop."""
        self.stats.arrivals += 1
        if self.obs is not None:
            self.obs.myrinet_arrival(self.sim.now, self.host_id)
        if self._pending_buffer_faults:
            self._pending_buffer_faults -= 1
            self.stats.drops += 1
            self.stats.injected_drops += 1
            if self.obs is not None:
                self.obs.myrinet_drop(self.sim.now, self.host_id, True)
            return
        if not self.input_buffer.try_get(packet.size):
            self.stats.drops += 1  # the only loss point (Section 8.2)
            if self.obs is not None:
                self.obs.myrinet_drop(self.sim.now, self.host_id, False)
            return
        self.sim.process(
            self._handle(packet), name=f"rx-h{self.host_id}-p{packet.pid}"
        )

    def _handle(self, packet: Packet):
        config = self.config
        if config.cpu_bound_rx:
            # Drain the packet from the input port into SRAM: the LANai
            # moves the bytes itself, so the drain waits for the processor.
            cpu_req = self.cpu.request()
            yield cpu_req
            yield self.sim.timeout(
                config.nic_rx_overhead_us + config.wire_time_us(packet.size)
            )
            self.cpu.release(cpu_req)
        else:
            yield self.sim.timeout(config.nic_rx_overhead_us)
        if config.host_recv_overhead_us or config.host_recv_us_per_byte:
            host_req = self.host_cpu.request()
            yield host_req
            yield self.sim.timeout(config.host_recv_us(packet.size))
            self.host_cpu.release(host_req)
        self.stats.received_packets += 1
        self.stats.received_bytes += packet.size
        if self.obs is not None:
            self.obs.myrinet_received(
                self.sim.now, self.host_id, packet.size,
                self.sim.now - packet.created_us,
            )
        if packet.hop_count > 1:
            # Store-and-forward retransmission inside the NIC.
            yield self.sim.timeout(config.nic_forward_overhead_us)
            forwarded = Packet(
                origin=packet.origin,
                size=packet.size,
                hop_count=packet.hop_count - 1,
                created_us=packet.created_us,
            )
            yield from self._transmit(forwarded)
            self.stats.forwarded += 1
        self.input_buffer.put(packet.size)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<MyrinetAdapter h{self.host_id}>"
