"""Myrinet prototype model (Section 8).

The paper's measurements ran on real hardware: a four-switch Myrinet with
eight SPARCstation-5 hosts, the Hamiltonian-circuit multicast implemented
in the LANai network-interface firmware, and an application-space interface
that bypasses the kernel.  We model that testbed with a calibrated timing
model:

* per-packet host-side send overhead (application -> driver -> NIC), the
  dominant cost on 70 MHz SPARCstation-5s;
* per-packet LANai store-and-forward overhead for in-NIC retransmission;
* 640 Mb/s links;
* a ~25 KB NIC input buffer with drop-on-overflow -- the implementation
  uses no adapter-level backpressure, so the input buffer is the only
  place loss can occur (Section 8.2).

:func:`~repro.myrinet.testbed.run_throughput_experiment` regenerates the
Figure 12 throughput curves and the Figure 13 loss curve.
"""

from repro.myrinet.lanai import LanaiConfig, MyrinetAdapter, Packet
from repro.myrinet.testbed import (
    TestbedResult,
    run_loss_experiment,
    run_throughput_experiment,
)

__all__ = [
    "LanaiConfig",
    "MyrinetAdapter",
    "Packet",
    "TestbedResult",
    "run_loss_experiment",
    "run_throughput_experiment",
]
