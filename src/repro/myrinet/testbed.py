"""The 4-switch / 8-host measurement testbed (Section 8.2).

Hosts are arranged on a Hamiltonian circuit in host-id order, matching the
implementation: multicast packets stop at the previous node in the circuit
(hop count ``n_hosts - 1``), and all retransmission happens inside the
NICs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.myrinet.lanai import LanaiConfig, MyrinetAdapter
from repro.sim.engine import Simulator


@dataclass
class TestbedResult:
    """One (packet size, sender pattern) measurement."""

    packet_size: int
    all_send: bool
    duration_us: float
    #: Mb/s of multicast data received, per host (mean over hosts).
    throughput_mbps_per_host: float
    #: Mb/s injected by each sending host.
    sent_mbps_per_sender: float
    #: input-buffer loss rate per host (drops / arrivals), mean over hosts.
    loss_rate_per_host: float
    per_host_throughput: Dict[int, float] = field(default_factory=dict)
    per_host_loss: Dict[int, float] = field(default_factory=dict)
    #: Observability snapshot (see :mod:`repro.obs`) when run with a
    #: bundle attached, else None.
    obs: Optional[Dict] = None


def build_testbed(
    n_hosts: int = 8, config: Optional[LanaiConfig] = None, obs=None
) -> tuple:
    """Simulator + adapters wired in a Hamiltonian circuit (id order)."""
    sim = Simulator(obs=obs)
    config = config or LanaiConfig()
    adapters = [
        MyrinetAdapter(sim, host_id, config, obs=obs)
        for host_id in range(n_hosts)
    ]
    for index, adapter in enumerate(adapters):
        adapter.successor = adapters[(index + 1) % n_hosts]
    return sim, adapters


def run_throughput_experiment(
    packet_size: int,
    all_send: bool = False,
    n_hosts: int = 8,
    config: Optional[LanaiConfig] = None,
    warmup_us: float = 50_000.0,
    measure_us: float = 500_000.0,
    obs=None,
) -> TestbedResult:
    """Regenerate one point of Figure 12 (and 13).

    ``all_send=False`` is the figure's solid line (one host multicasting to
    the other seven); ``all_send=True`` the dashed line (every host
    multicasting to every other host).  ``obs`` optionally attaches an
    :class:`~repro.obs.Observability` bundle (reset at the end of warm-up).
    """
    if packet_size <= 0:
        raise ValueError("packet size must be positive")
    sim, adapters = build_testbed(n_hosts, config, obs=obs)
    hop_count = n_hosts - 1  # stop at the previous node in the circuit
    senders = adapters if all_send else adapters[:1]
    for adapter in senders:
        adapter.start_greedy_sender(packet_size, hop_count)

    sim.run(until=warmup_us)
    for adapter in adapters:
        adapter.stats.reset()
    if obs is not None:
        obs.reset(sim.now)
    sim.run(until=warmup_us + measure_us)

    receivers = [a for a in adapters if all_send or a is not adapters[0]]
    per_host_throughput = {
        a.host_id: a.stats.received_bytes * 8.0 / measure_us for a in receivers
    }
    per_host_loss = {a.host_id: a.stats.loss_rate for a in adapters}
    throughput = sum(per_host_throughput.values()) / len(per_host_throughput)
    sent = sum(a.stats.originated for a in senders) * packet_size * 8.0
    sent_per_sender = sent / len(senders) / measure_us
    loss = sum(per_host_loss.values()) / len(per_host_loss)
    obs_snapshot = None
    if obs is not None:
        obs.snapshot_testbed(per_host_throughput, per_host_loss)
        obs_snapshot = obs.snapshot(sim.now)
    return TestbedResult(
        packet_size=packet_size,
        all_send=all_send,
        duration_us=measure_us,
        throughput_mbps_per_host=throughput,
        sent_mbps_per_sender=sent_per_sender,
        loss_rate_per_host=loss,
        per_host_throughput=per_host_throughput,
        per_host_loss=per_host_loss,
        obs=obs_snapshot,
    )


def run_loss_experiment(
    packet_sizes: List[int],
    n_hosts: int = 8,
    config: Optional[LanaiConfig] = None,
    **kwargs,
) -> List[TestbedResult]:
    """Figure 13: per-host input-buffer loss in the all-send pattern."""
    return [
        run_throughput_experiment(
            size, all_send=True, n_hosts=n_hosts, config=config, **kwargs
        )
        for size in packet_sizes
    ]
