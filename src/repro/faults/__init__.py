"""Deterministic fault injection and failure-driven reconfiguration.

The paper's networks are engineered so that worms are "almost never"
lost -- but Section 9 concedes that deadlock resolution, reconfiguration
and component failures do lose worms, and weighs network-level reliability
(circuit confirmation, Section 5) against transport-level repair
([FJM+95]).  This package supplies the missing experimental apparatus:

``repro.faults.schedule``
    :class:`FaultSchedule` -- scripted or stochastically generated timelines
    of link/switch/host failures and repairs, worm drops and adapter-buffer
    faults.  Fault sampling draws from its own
    :class:`~repro.sim.rng.RandomStreams` substream, so arming faults never
    perturbs the traffic sample path.
``repro.faults.injector``
    :class:`FaultInjector` -- a simulation process that applies a schedule
    to a live :class:`~repro.net.wormnet.WormholeNetwork` through the
    topology/network liveness hooks, keeping a canonical, byte-reproducible
    event log.
``repro.faults.recovery``
    :class:`RecoveryManager` -- the Autonet-style reaction: on any liveness
    change it rebuilds the up/down spanning tree and the network's channel
    tables after a detection delay, records the reconvergence time, and
    dispatches host deaths to the multicast engine's group-repair path.
``repro.faults.metrics``
    :class:`AvailabilityMetrics` -- graceful-degradation measurement:
    delivery ratio, orphaned/dropped worm counts, reconvergence times and
    transport repair-traffic overhead.
``repro.faults.campaign``
    Self-contained campaign runners (used by the ``fault_campaign`` and
    ``repair_campaign`` sweep point kinds) that wire workload + schedule +
    recovery together and return plain JSON-serializable records.
"""

from repro.faults.schedule import FAULT_KINDS, FaultEvent, FaultSchedule
from repro.faults.injector import FaultInjector
from repro.faults.recovery import (
    ReconvergenceRecord,
    RecoveryConfig,
    RecoveryManager,
)
from repro.faults.metrics import AvailabilityMetrics
from repro.faults.campaign import run_fault_campaign, run_repair_campaign

__all__ = [
    "AvailabilityMetrics",
    "FAULT_KINDS",
    "FaultEvent",
    "FaultInjector",
    "FaultSchedule",
    "ReconvergenceRecord",
    "RecoveryConfig",
    "RecoveryManager",
    "run_fault_campaign",
    "run_repair_campaign",
]
