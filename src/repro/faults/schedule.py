"""Fault schedules: deterministic timelines of component failures.

A schedule is an ordered list of :class:`FaultEvent`; the
:class:`~repro.faults.injector.FaultInjector` replays it against a live
network.  Schedules are either scripted (explicit event lists -- the
regression-test form) or sampled stochastically with
:meth:`FaultSchedule.random` from a dedicated random substream, so fault
arrival sampling can never perturb the traffic generators' sample paths
(the same common-random-numbers discipline the sweep layer uses).

Schedules serialize to canonical JSON: the same schedule always produces
the same bytes, which is what makes whole fault campaigns byte-reproducible
and cacheable.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Dict, Iterator, List, Sequence, Tuple

from repro.sim.rng import Stream

#: Recognized event kinds and what ``target``/``param`` mean for each.
#:
#: ``link_fail`` / ``link_repair``
#:     ``target`` is a link id; the physical cable dies / revives.
#: ``node_fail`` / ``node_repair``
#:     ``target`` is a node id (switch or host); crash / reboot.
#: ``worm_drop``
#:     ``target`` is a source host id (or -1 for any source); the next
#:     ``param`` worms injected by it are flushed mid-network, the
#:     transport-repairable loss of Section 9.
#: ``recv_fault``
#:     ``target`` is a host id; the next ``param`` worms fully arriving at
#:     it are discarded by the adapter (buffer parity error / DMA overrun).
FAULT_KINDS = (
    "link_fail",
    "link_repair",
    "node_fail",
    "node_repair",
    "worm_drop",
    "recv_fault",
)


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled fault or repair."""

    time: float
    kind: str
    target: int
    param: int = 1

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; known: {FAULT_KINDS}"
            )
        if self.time < 0:
            raise ValueError(f"fault time must be non-negative, got {self.time}")
        if self.param < 1:
            raise ValueError(f"fault param must be positive, got {self.param}")
        # Canonicalize field types so serialization is a fixed point:
        # FaultEvent(5, ...) and FaultEvent(5.0, ...) are the same event and
        # must produce the same JSON bytes (an int time would render as "5"
        # on first encode but "5.0" after one round trip).
        object.__setattr__(self, "time", float(self.time))
        object.__setattr__(self, "target", int(self.target))
        object.__setattr__(self, "param", int(self.param))

    def canonical(self) -> str:
        """Stable one-line rendering (the event-log vocabulary)."""
        return f"{self.kind} target={self.target} param={self.param}"

    def to_dict(self) -> Dict[str, object]:
        return {
            "time": self.time,
            "kind": self.kind,
            "target": self.target,
            "param": self.param,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "FaultEvent":
        return cls(
            time=float(data["time"]),
            kind=str(data["kind"]),
            target=int(data["target"]),
            param=int(data.get("param", 1)),
        )


class FaultSchedule:
    """An immutable, time-ordered sequence of fault events.

    Events at equal times keep their given order (a fail scheduled before
    a repair at the same instant applies first).
    """

    def __init__(self, events: Sequence[FaultEvent] = ()) -> None:
        indexed = list(enumerate(events))
        indexed.sort(key=lambda pair: (pair[1].time, pair[0]))
        self.events: Tuple[FaultEvent, ...] = tuple(ev for _, ev in indexed)

    def __iter__(self) -> Iterator[FaultEvent]:
        return iter(self.events)

    def __len__(self) -> int:
        return len(self.events)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, FaultSchedule) and self.events == other.events

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<FaultSchedule {len(self.events)} events>"

    @property
    def horizon(self) -> float:
        """Time of the last event (0.0 for an empty schedule)."""
        return self.events[-1].time if self.events else 0.0

    def to_json(self) -> str:
        """Canonical JSON (stable key order, no whitespace)."""
        return json.dumps(
            [ev.to_dict() for ev in self.events],
            sort_keys=True,
            separators=(",", ":"),
        )

    @classmethod
    def from_json(cls, text: str) -> "FaultSchedule":
        return cls([FaultEvent.from_dict(item) for item in json.loads(text)])

    # -- stochastic generation ------------------------------------------------
    @classmethod
    def random(
        cls,
        stream: Stream,
        duration: float,
        link_ids: Sequence[int] = (),
        link_mttf: float = 0.0,
        link_mttr: float = 0.0,
        node_ids: Sequence[int] = (),
        node_mttf: float = 0.0,
        node_mttr: float = 0.0,
        start: float = 0.0,
    ) -> "FaultSchedule":
        """Sample an alternating fail/repair renewal process per component.

        Each listed component (visited in sorted id order, each with its
        whole timeline drawn consecutively, so the schedule depends only on
        ``stream`` and the arguments) fails after an exponential time with
        mean ``*_mttf`` and is repaired after an exponential downtime with
        mean ``*_mttr``; a zero ``*_mttr`` leaves failures permanent.
        Events beyond ``start + duration`` are discarded.
        """
        if duration <= 0:
            raise ValueError(f"duration must be positive, got {duration}")
        events: List[FaultEvent] = []
        end = start + duration

        def component_timeline(cid: int, kind_prefix: str, mttf: float, mttr: float):
            t = start
            while True:
                t += stream.exponential(mttf)
                if t >= end:
                    return
                events.append(FaultEvent(t, f"{kind_prefix}_fail", cid))
                if mttr <= 0:
                    return
                t += stream.exponential(mttr)
                if t >= end:
                    return
                events.append(FaultEvent(t, f"{kind_prefix}_repair", cid))

        if link_mttf > 0:
            for link_id in sorted(link_ids):
                component_timeline(link_id, "link", link_mttf, link_mttr)
        if node_mttf > 0:
            for node_id in sorted(node_ids):
                component_timeline(node_id, "node", node_mttf, node_mttr)
        return cls(events)
