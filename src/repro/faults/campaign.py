"""Fault campaigns: reusable fault-injection experiment recipes.

Two self-contained runners, mirroring the workload recipes in
:mod:`repro.traffic.workloads`:

* :func:`run_fault_campaign` -- the Figure 10 workload (multicast engine on
  a torus) with link failures injected mid-measurement and the Autonet-style
  recovery plane reconfiguring around them; reports availability metrics
  (delivery ratio, orphaned worms, reconvergence times) plus a
  post-reconvergence deadlock-freedom check.
* :func:`run_repair_campaign` -- a [FJM+95] transport
  :class:`~repro.core.transport_repair.RepairSession` streaming over a torus
  while the injector forces worm drops and adapter-buffer faults; asserts
  the transport recovers every repairable loss and reports the repair
  traffic overhead.

Both build a **fresh** topology per run -- fault campaigns mutate their
topology, so the memoized :func:`repro.traffic.workloads.shared_topology`
must never be used here.  Both take/return plain JSON-serializable values,
so :mod:`repro.sweep` can fan them out across worker processes, and both
are byte-reproducible: the same arguments produce an identical record,
including the injector's event log.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.core.transport_repair import RepairConfig, RepairSession
from repro.faults.injector import FaultInjector
from repro.faults.metrics import AvailabilityMetrics
from repro.faults.recovery import RecoveryConfig, RecoveryManager
from repro.faults.schedule import FaultEvent, FaultSchedule
from repro.net.topology import torus
from repro.net.updown import UpDownRouting, check_deadlock_free
from repro.net.wormnet import WormholeNetwork
from repro.sim.engine import Simulator
from repro.sim.rng import RandomStreams


def _switch_link_ids(topology) -> List[int]:
    """Ids of switch-to-switch links (the fabric cables worth cutting)."""
    return sorted(
        link.id
        for link in topology.links
        if topology.node(link.a).is_switch and topology.node(link.b).is_switch
    )


def link_failure_schedule(
    topology,
    count: int,
    first_at: float,
    window: float,
    downtime: float = 0.0,
    seed: int = 1,
) -> FaultSchedule:
    """Evenly spaced failures of ``count`` random switch-switch links.

    Targets are sampled from the ``faults.schedule`` substream of
    ``RandomStreams(seed)`` -- the dedicated fault stream, so arming a
    schedule never perturbs traffic generators seeded from the same master
    seed.  Failures land at ``first_at + (i+1) * window / (count+1)``;
    ``downtime > 0`` schedules the matching repair.
    """
    if count == 0:
        return FaultSchedule()
    candidates = _switch_link_ids(topology)
    if count > len(candidates):
        raise ValueError(
            f"asked for {count} link failures, topology has {len(candidates)}"
        )
    stream = RandomStreams(seed).stream("faults.schedule")
    targets = stream.sample(candidates, count)
    events = []
    for index, link_id in enumerate(targets):
        fail_at = first_at + (index + 1) * window / (count + 1)
        events.append(FaultEvent(fail_at, "link_fail", link_id))
        if downtime > 0:
            events.append(FaultEvent(fail_at + downtime, "link_repair", link_id))
    return FaultSchedule(events)


def run_fault_campaign(
    rows: int = 8,
    cols: int = 8,
    scheme: str = "hamiltonian-sf",
    load: float = 0.06,
    multicast_fraction: float = 0.1,
    mean_length: float = 400.0,
    group_count: int = 10,
    group_size: int = 10,
    link_failures: int = 1,
    downtime: float = 100_000.0,
    warmup_time: float = 100_000.0,
    measure_time: float = 400_000.0,
    detection_delay: float = 100.0,
    seed: int = 1,
    schedule: Optional[FaultSchedule] = None,
    check_deadlocks: bool = True,
    obs=None,
) -> Dict[str, Any]:
    """One availability measurement: multicast workload + link failures.

    Runs the Figure 10-style workload on a ``rows x cols`` torus, injects
    ``link_failures`` link cuts spread over the measurement window (each
    repaired after ``downtime`` byte-times; 0 leaves them down), lets the
    recovery plane reconfigure, and reports
    :class:`~repro.faults.metrics.AvailabilityMetrics` plus the injector's
    canonical event log.  Passing ``schedule`` overrides the generated one
    (the scripted-regression form).  With ``obs`` attached the record
    carries an ``"obs"`` snapshot (fault counters, channel gauges).
    """
    from repro.traffic.generators import TrafficConfig, TrafficGenerator
    from repro.traffic.workloads import GroupPlan, build_engine, scheme_by_name

    topology = torus(rows, cols)
    routing = UpDownRouting(topology)
    sim, net, engine = build_engine(
        topology,
        scheme_by_name(scheme),
        GroupPlan(count=group_count, size=group_size),
        seed=seed,
        routing=routing,
        obs=obs,
    )
    traffic = TrafficGenerator(
        sim,
        engine,
        TrafficConfig(
            offered_load=load,
            mean_length=mean_length,
            multicast_fraction=multicast_fraction,
        ),
    )
    if schedule is None:
        schedule = link_failure_schedule(
            topology,
            link_failures,
            first_at=warmup_time,
            window=measure_time,
            downtime=downtime,
            seed=seed,
        )
    recovery = RecoveryManager(
        sim, net, engine=engine, config=RecoveryConfig(detection_delay=detection_delay)
    )
    injector = FaultInjector(sim, net, schedule)
    injector.start()
    traffic.start()

    sim.run(until=warmup_time)
    engine.reset_stats()
    net.reset_stats()
    if obs is not None:
        obs.reset(sim.now)
    sim.run(until=warmup_time + measure_time)

    metrics = AvailabilityMetrics.collect(
        net, injector=injector, recovery=recovery, engine=engine
    )
    deadlock_free = None
    if check_deadlocks:
        live = topology.live_hosts()
        pairs = [(a, b) for a in live for b in live if a != b]
        try:
            deadlock_free = check_deadlock_free(routing, pairs)
        except ValueError:
            deadlock_free = False  # some live pair is unroutable (partition)
    obs_snapshot = None
    if obs is not None:
        obs.snapshot_wormnet(net, sim.now)
        obs_snapshot = obs.snapshot(sim.now)
    return {
        "params": {
            "rows": rows,
            "cols": cols,
            "scheme": scheme,
            "load": load,
            "multicast_fraction": multicast_fraction,
            "link_failures": link_failures,
            "downtime": downtime,
            "seed": seed,
        },
        "metrics": metrics.to_dict(),
        "mean_multicast_latency": engine.delivery_latency.mean,
        "messages_completed": engine.messages_completed,
        "deadlock_free": deadlock_free,
        "event_log": list(injector.log),
        "sim_time": sim.now,
        "obs": obs_snapshot,
    }


def run_repair_campaign(
    rows: int = 4,
    cols: int = 4,
    members_count: int = 6,
    messages: int = 20,
    spacing: float = 2_000.0,
    length: int = 400,
    drops: int = 5,
    recv_faults: int = 0,
    seed: int = 1,
    request_timeout: float = 3_000.0,
    heartbeat_period: float = 10_000.0,
    max_sim_time: float = 5e6,
    obs=None,
) -> Dict[str, Any]:
    """One loss-recovery measurement: transport repair under injected drops.

    Streams ``messages`` sequence-numbered multicasts down a repair chain
    while the injector arms ``drops`` forced worm drops (any source, so
    data, requests and repairs are all at risk) and ``recv_faults``
    adapter-buffer faults at the chain tail.  The run ends when the
    transport has recovered everything (or ``max_sim_time``); the record
    says whether recovery was total and what it cost.
    """
    sim = Simulator(obs=obs)
    topology = torus(rows, cols)
    net = WormholeNetwork(sim, topology, obs=obs)
    members = topology.hosts[:members_count]
    session = RepairSession(
        sim,
        net,
        members,
        RepairConfig(
            request_timeout=request_timeout,
            heartbeat_period=heartbeat_period,
        ),
        seed=seed,
        sid=1,  # pin the RNG substream name: byte-reproducible across runs
    )
    send_window = messages * spacing
    events = [
        FaultEvent((k + 1) * send_window / (drops + 1), "worm_drop", -1)
        for k in range(drops)
    ]
    tail = session.members[-1]
    events.extend(
        FaultEvent((k + 1) * send_window / (recv_faults + 1), "recv_fault", tail)
        for k in range(recv_faults)
    )
    injector = FaultInjector(sim, net, FaultSchedule(events))
    injector.start()

    def traffic():
        for _ in range(messages):
            session.send(length=length)
            yield sim.timeout(spacing)

    sim.process(traffic(), name="repair-campaign-traffic")
    # all_complete() is vacuously true before the first send: run the whole
    # send window first, then chase completion.
    sim.run(until=send_window)
    while not session.all_complete() and sim.now < max_sim_time:
        sim.run(until=sim.now + 50_000.0)

    metrics = AvailabilityMetrics.collect(net, injector=injector, session=session)
    obs_snapshot = None
    if obs is not None:
        obs.snapshot_wormnet(net, sim.now)
        obs_snapshot = obs.snapshot(sim.now)
    latencies = [
        session.latency(seq)
        for seq in range(session.highest_sent + 1)
        if session.complete(seq)
    ]
    return {
        "params": {
            "rows": rows,
            "cols": cols,
            "members_count": members_count,
            "messages": messages,
            "drops": drops,
            "recv_faults": recv_faults,
            "seed": seed,
        },
        "metrics": metrics.to_dict(),
        "recovered_all": session.all_complete(),
        "messages": messages,
        "losses_injected": net.dropped_worms + net.orphaned_worms,
        "max_latency": max(latencies) if latencies else None,
        "mean_latency": (
            sum(latencies) / len(latencies) if latencies else None
        ),
        "event_log": list(injector.log),
        "sim_time": sim.now,
        "obs": obs_snapshot,
    }
