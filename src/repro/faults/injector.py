"""The fault injector: replays a schedule against a live network.

One simulation process walks the schedule in time order and applies each
event through the liveness hooks grown on :class:`~repro.net.topology.Topology`
and :class:`~repro.net.wormnet.WormholeNetwork`.  Every applied event is
appended to :attr:`FaultInjector.log` in a canonical textual form, so two
runs of the same (schedule, seed) pair produce byte-identical logs -- the
reproducibility contract the fault campaigns assert.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.faults.schedule import FaultEvent, FaultSchedule
from repro.net.worm import Worm
from repro.net.wormnet import WormholeNetwork
from repro.sim.engine import Simulator


class FaultInjector:
    """Applies a :class:`~repro.faults.schedule.FaultSchedule` to a network.

    Reconfiguration is *not* the injector's job: it only breaks (and fixes)
    components.  Pair it with a
    :class:`~repro.faults.recovery.RecoveryManager` listening on the same
    topology for the failure-driven reaction.
    """

    def __init__(
        self,
        sim: Simulator,
        net: WormholeNetwork,
        schedule: FaultSchedule,
    ) -> None:
        self.sim = sim
        self.net = net
        self.schedule = schedule
        #: Canonical per-event log lines, appended in application order.
        self.log: List[str] = []
        self.applied = 0
        #: source host id (-1 = any) -> remaining forced worm drops.
        self._drop_budget: Dict[int, int] = {}
        if net.drop_filter is not None:
            raise ValueError(
                "network already has a drop_filter; the injector needs it"
            )
        net.drop_filter = self._should_drop
        self._process = None

    def start(self):
        """Launch the replay process (idempotent).

        Raises :class:`ValueError` if the schedule begins strictly in the
        past: an event before ``sim.now`` can no longer be applied at its
        scheduled time, and silently applying it "now" would break the
        byte-reproducibility contract (the log would disagree with the
        schedule).  Mirrors the negative-delay guard in
        :meth:`repro.sim.engine.Simulator._schedule`.
        """
        if self._process is None:
            events = self.schedule.events
            if events and events[0].time < self.sim.now:
                raise ValueError(
                    f"fault schedule starts at t={events[0].time}, which is "
                    f"in the past (sim.now={self.sim.now}); start the "
                    "injector before its first event"
                )
            self._process = self.sim.process(self._run(), name="fault-injector")
        return self._process

    # -- replay -----------------------------------------------------------------
    def _run(self):
        for event in self.schedule:
            if event.time > self.sim.now:
                yield self.sim.timeout(event.time - self.sim.now)
            self._apply(event)

    def _apply(self, event: FaultEvent) -> None:
        topology = self.net.topology
        if event.kind == "link_fail":
            topology.fail_link(event.target)
        elif event.kind == "link_repair":
            topology.repair_link(event.target)
        elif event.kind == "node_fail":
            topology.fail_node(event.target)
        elif event.kind == "node_repair":
            topology.repair_node(event.target)
        elif event.kind == "worm_drop":
            self._drop_budget[event.target] = (
                self._drop_budget.get(event.target, 0) + event.param
            )
        elif event.kind == "recv_fault":
            self.net.inject_receive_fault(event.target, event.param)
        else:  # pragma: no cover - FaultEvent validates kinds
            raise ValueError(f"unknown fault kind {event.kind!r}")
        self.applied += 1
        self.log.append(f"{self.sim.now:.6f} {event.canonical()}")
        obs = self.net.obs
        if obs is not None:
            obs.fault_applied(self.sim.now, event.kind, event.target)

    # -- worm-drop filter ---------------------------------------------------------
    def _should_drop(self, worm: Worm) -> bool:
        for key in (worm.source, -1):
            budget = self._drop_budget.get(key, 0)
            if budget > 0:
                if budget == 1:
                    del self._drop_budget[key]
                else:
                    self._drop_budget[key] = budget - 1
                return True
        return False

    def pending_drops(self, source: Optional[int] = None) -> int:
        """Remaining armed worm drops (for ``source``, or in total)."""
        if source is not None:
            return self._drop_budget.get(source, 0)
        return sum(self._drop_budget.values())
