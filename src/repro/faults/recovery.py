"""Failure-driven reconfiguration: the recovery plane.

Autonet (the up/down routing's origin) reacts to any topology change by
re-running its distributed spanning-tree protocol; Myrinet's mapper does the
equivalent remap.  :class:`RecoveryManager` models that reaction:

* it listens for liveness changes on the :class:`~repro.net.topology.Topology`;
* after a ``detection_delay`` (the time for heartbeat loss / port alarms to
  surface) it rebuilds the up/down spanning tree over the live subgraph and
  re-syncs the network's channel tables;
* the reconvergence time -- fault to fully reconfigured routes -- is
  recorded per event, modelling the protocol exchange as a per-live-switch
  cost on top of the detection delay;
* a host death is dispatched to the multicast engine, which splices the
  host out of every group structure
  (:meth:`~repro.core.adapters.MulticastEngine.handle_host_failure`).

Between the fault and the rebuild the lazy staleness guards added to
:class:`~repro.net.updown.UpDownRouting` and
:class:`~repro.net.wormnet.WormholeNetwork` keep new worms off dead links
anyway; the eager rebuild exists to *measure* reconvergence and to repair
group structures, not to restore correctness.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.net.topology import Topology, TopologyChange
from repro.net.wormnet import WormholeNetwork
from repro.sim.engine import Simulator

#: Change kinds the recovery plane reacts to (structural additions are the
#: mapper's quiet-time job, not a failure reaction).
_LIVENESS_KINDS = ("link_fail", "link_repair", "node_fail", "node_repair")


@dataclass
class RecoveryConfig:
    """Timing model of the reconfiguration protocol.

    ``detection_delay`` is the time from the fault to the management plane
    noticing it (byte-times); ``cost_per_switch`` models the spanning-tree
    protocol exchange, paid once per live switch per reconfiguration.
    """

    detection_delay: float = 100.0
    cost_per_switch: float = 10.0


@dataclass
class ReconvergenceRecord:
    """One reconfiguration episode."""

    cause: str
    target: int
    fault_time: float
    detected_at: float
    converged_at: float

    @property
    def reconvergence_time(self) -> float:
        """Fault occurrence to fully reconverged routes."""
        return self.converged_at - self.fault_time

    def to_dict(self) -> dict:
        return {
            "cause": self.cause,
            "target": self.target,
            "fault_time": self.fault_time,
            "detected_at": self.detected_at,
            "converged_at": self.converged_at,
            "reconvergence_time": self.reconvergence_time,
        }


class RecoveryManager:
    """Watches a topology and reconfigures the network after each change."""

    def __init__(
        self,
        sim: Simulator,
        net: WormholeNetwork,
        engine=None,
        config: Optional[RecoveryConfig] = None,
    ) -> None:
        self.sim = sim
        self.net = net
        self.routing = net.routing
        #: Optional :class:`~repro.core.adapters.MulticastEngine` whose
        #: group structures are repaired on host death.
        self.engine = engine
        self.config = config or RecoveryConfig()
        self.records: List[ReconvergenceRecord] = []
        self.reconfigurations = 0
        self.partitions_seen = 0
        net.topology.add_listener(self._on_change)

    def detach(self) -> None:
        self.net.topology.remove_listener(self._on_change)

    # -- reaction ---------------------------------------------------------------
    def _on_change(self, topology: Topology, change: TopologyChange) -> None:
        if change.kind not in _LIVENESS_KINDS:
            return
        fault_time = self.sim.now
        self.sim.schedule_call(
            self.config.detection_delay,
            lambda: self._reconfigure(change, fault_time),
        )

    def _reconfigure(self, change: TopologyChange, fault_time: float) -> None:
        detected_at = self.sim.now
        topology = self.net.topology
        self.routing.rebuild()
        self.net.refresh_topology()
        if not topology.is_connected(live_only=True):
            self.partitions_seen += 1
        live_switches = sum(
            1 for s in topology.switches if topology.node_alive(s)
        )
        converged_at = detected_at + self.config.cost_per_switch * live_switches
        self.records.append(
            ReconvergenceRecord(
                cause=change.kind,
                target=change.target,
                fault_time=fault_time,
                detected_at=detected_at,
                converged_at=converged_at,
            )
        )
        self.reconfigurations += 1
        if (
            self.engine is not None
            and change.kind == "node_fail"
            and topology.node(change.target).kind == "host"
        ):
            self.engine.handle_host_failure(change.target)

    # -- measurement -------------------------------------------------------------
    def reconvergence_times(self) -> List[float]:
        return [record.reconvergence_time for record in self.records]
