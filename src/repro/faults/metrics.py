"""Graceful-degradation measurement: what a fault campaign reports.

The availability story of a wormhole LAN under faults has three layers:

* **network**: how many worms were delivered vs flushed -- forced drops
  (``dropped_worms``, transport-repairable) and component-failure losses
  (``orphaned_worms``, unrecoverable at the network level);
* **control plane**: how long each reconfiguration took (reconvergence
  times from the :class:`~repro.faults.recovery.RecoveryManager`) and how
  many group structures had to be repaired;
* **transport**: how many repair bytes the [FJM+95] scheme spent per data
  byte recovering the repairable losses.

:class:`AvailabilityMetrics` collects all three into one JSON-serializable
record.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional


@dataclass
class AvailabilityMetrics:
    """One campaign's graceful-degradation summary."""

    delivered_worms: int = 0
    dropped_worms: int = 0
    orphaned_worms: int = 0
    delivery_ratio: float = 1.0
    faults_applied: int = 0
    reconfigurations: int = 0
    routing_rebuilds: int = 0
    partitions_seen: int = 0
    reconvergence_times: List[float] = field(default_factory=list)
    group_repairs: int = 0
    groups_dissolved: int = 0
    repair_overhead: Optional[Dict[str, float]] = None

    @property
    def mean_reconvergence_time(self) -> float:
        times = self.reconvergence_times
        return sum(times) / len(times) if times else 0.0

    @property
    def max_reconvergence_time(self) -> float:
        return max(self.reconvergence_times) if self.reconvergence_times else 0.0

    @classmethod
    def collect(
        cls,
        net,
        injector=None,
        recovery=None,
        engine=None,
        session=None,
    ) -> "AvailabilityMetrics":
        """Harvest the counters of a finished (or paused) campaign.

        ``net`` is the :class:`~repro.net.wormnet.WormholeNetwork`; the
        rest are optional campaign components
        (:class:`~repro.faults.injector.FaultInjector`,
        :class:`~repro.faults.recovery.RecoveryManager`,
        :class:`~repro.core.adapters.MulticastEngine`,
        :class:`~repro.core.transport_repair.RepairSession`).
        """
        metrics = cls(
            delivered_worms=net.delivered_worms,
            dropped_worms=net.dropped_worms,
            orphaned_worms=net.orphaned_worms,
            delivery_ratio=net.delivery_ratio(),
        )
        if injector is not None:
            metrics.faults_applied = injector.applied
        if recovery is not None:
            metrics.reconfigurations = recovery.reconfigurations
            metrics.partitions_seen = recovery.partitions_seen
            metrics.reconvergence_times = recovery.reconvergence_times()
            metrics.routing_rebuilds = recovery.routing.rebuilds
        if engine is not None:
            metrics.group_repairs = engine.group_repairs
            metrics.groups_dissolved = engine.groups_dissolved
        if session is not None:
            metrics.repair_overhead = session.overhead()
        return metrics

    def to_dict(self) -> Dict[str, object]:
        return {
            "delivered_worms": self.delivered_worms,
            "dropped_worms": self.dropped_worms,
            "orphaned_worms": self.orphaned_worms,
            "delivery_ratio": self.delivery_ratio,
            "faults_applied": self.faults_applied,
            "reconfigurations": self.reconfigurations,
            "routing_rebuilds": self.routing_rebuilds,
            "partitions_seen": self.partitions_seen,
            "reconvergence_times": list(self.reconvergence_times),
            "mean_reconvergence_time": self.mean_reconvergence_time,
            "max_reconvergence_time": self.max_reconvergence_time,
            "group_repairs": self.group_repairs,
            "groups_dissolved": self.groups_dissolved,
            "repair_overhead": self.repair_overhead,
        }
