"""Reproduction of *Multicasting Protocols for High-Speed, Wormhole-Routing
Local Area Networks* (Gerla, Palnati, Walton; ACM SIGCOMM 1996).

Package layout
--------------
``repro.sim``
    Discrete-event simulation kernel (the Maisie substitute).
``repro.net``
    The wormhole LAN substrate: topologies, up/down routing, the fast
    worm-level transfer engine, and the byte-granular flit-level model
    (slack buffers, STOP/GO, crossbar multicast).
``repro.core``
    The paper's protocols: Hamiltonian-circuit and rooted-tree host-adapter
    multicasting with implicit buffer reservation and two-buffer-class
    deadlock prevention; the three switch-fabric multicast schemes; total
    ordering; multicast-IP interoperation.
``repro.traffic``
    Poisson workloads and the Figure 10/11 experiment recipes.
``repro.myrinet``
    The calibrated 4-switch / 8-host Myrinet testbed model (Figures 12/13).
``repro.analysis``
    Result tables and curve analysis.

Quickstart
----------
>>> from repro.sim import Simulator
>>> from repro.net import torus, WormholeNetwork
>>> from repro.core import MulticastEngine, Scheme
>>> sim = Simulator()
>>> topo = torus(4, 4)
>>> net = WormholeNetwork(sim, topo)
>>> engine = MulticastEngine(sim, net)
>>> state = engine.create_group(1, topo.hosts[:6], Scheme.HAMILTONIAN)
>>> message = engine.multicast(origin=topo.hosts[0], gid=1, length=400)
>>> sim.run()
>>> message.complete
True
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
