"""Switch-fabric multicasting (Section 3): scheme selection and scenarios.

The mechanics live in :mod:`repro.net.flitlevel`; this module names the
paper's schemes, builds configured networks, and packages the Figure 3
deadlock scenario used by the tests and the demo benchmarks.

Schemes
-------
* ``BASE`` -- tree-encoded multicast in the fabric, IDLE fills on blocked
  branches, no extra protection.  Deadlock-prone once crosslinks are used
  (Figure 3).
* ``S1_TREE_RESTRICTED`` -- all worms (unicast too) confined to the
  up/down spanning tree; crosslinks sit unused, flow-control cycles cannot
  form.
* ``S2_INTERRUPT`` -- multicasts release non-blocked branches by
  interrupting transmission (fragments reassembled at the destinations);
  unicast routing stays unrestricted.
* ``S3_IDLE_FLUSH`` -- ports transmitting IDLE for a threshold interval
  are flagged multicast-IDLE; a unicast blocked by a flagged port is
  flushed (backward reset) and retransmitted after a random timeout.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import TYPE_CHECKING, List, Optional

from repro.net.topology import Topology, fig3_topology
from repro.net.updown import UpDownRouting

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.flitlevel import FlitNetwork


class SwitchScheme(str, Enum):
    """The Section 3 design points."""

    BASE = "base"
    S1_TREE_RESTRICTED = "s1_tree_restricted"
    S2_INTERRUPT = "s2_interrupt"
    S3_IDLE_FLUSH = "s3_idle_flush"


def _scheme_config(scheme: "SwitchScheme"):
    # Imported lazily: repro.net.flitlevel itself uses
    # repro.core.route_encoding, so a module-level import would be cyclic.
    from repro.net.flitlevel import MulticastMode

    return {
        SwitchScheme.BASE: (MulticastMode.IDLE_FILL, False),
        SwitchScheme.S1_TREE_RESTRICTED: (MulticastMode.IDLE_FILL, True),
        SwitchScheme.S2_INTERRUPT: (MulticastMode.INTERRUPT, False),
        SwitchScheme.S3_IDLE_FLUSH: (MulticastMode.IDLE_FLUSH, False),
    }[SwitchScheme(scheme)]


def build_switch_multicast_network(
    topology: Topology,
    scheme: SwitchScheme = SwitchScheme.BASE,
    routing: Optional[UpDownRouting] = None,
    **network_kwargs,
) -> "FlitNetwork":
    """A flit-level network configured for one of the Section 3 schemes."""
    from repro.net.flitlevel import FlitNetwork

    mode, restrict = _scheme_config(scheme)
    return FlitNetwork(
        topology,
        routing=routing,
        mode=mode,
        restrict_to_tree=restrict,
        **network_kwargs,
    )


@dataclass
class Fig3Outcome:
    """Result of one Figure 3 scenario run."""

    scheme: SwitchScheme
    mc_delay: int
    uc_delay: int
    status: str                      # delivered / deadlock / timeout
    ticks: int
    flushes: int
    multicast_delivered: bool
    unicast_delivered: bool


def run_fig3_scenario(
    scheme: SwitchScheme,
    mc_delay: int = 0,
    uc_delay: int = 5,
    worm_bytes: int = 400,
    max_ticks: int = 100_000,
    seed: int = 3,
    engine: str = "active",
    lanes: int = 1,
    vc_policy: str = "first_free",
    obs=None,
) -> Fig3Outcome:
    """Reproduce Figure 3: a two-branch multicast races a unicast whose
    route crosses the D-E crosslink; with the base scheme certain offsets
    deadlock, and each protection scheme must deliver both worms.

    ``engine`` selects the flit-engine implementation (``"active"`` or
    ``"dense"``); both produce byte-identical outcomes -- see
    :mod:`repro.net.flitlevel.crosscheck`.  ``lanes`` adds virtual
    channels per fabric link: at ``lanes >= 2`` the blocked worm's rival
    takes a free lane, so the base scheme's Figure 3 hold-and-wait cycle
    cannot close.  ``obs`` optionally attaches an
    :class:`~repro.obs.Observability` bundle (traced runs stay
    byte-identical to untraced ones)."""
    topology = fig3_topology()
    names = {topology.node(h).name: h for h in topology.hosts}
    net = build_switch_multicast_network(
        topology, scheme, seed=seed, engine=engine, obs=obs,
        lanes=lanes, vc_policy=vc_policy,
    )
    mc = net.send_multicast(
        names["srcM"],
        [names["host_b"], names["host_c"]],
        payload_bytes=worm_bytes,
        start_delay=mc_delay,
    )
    uc = net.send_unicast(
        names["host_y"], names["host_b"], payload_bytes=worm_bytes,
        start_delay=uc_delay,
    )
    status = net.run(max_ticks=max_ticks, quiet_limit=3_000, raise_on_deadlock=False)
    mc_record = net.records.get(mc)
    # A flushed unicast is superseded by its retransmission record, so
    # delivery is checked by source rather than by the original worm id.
    uc_done = any(
        r.fully_delivered for r in net.records.values() if r.src == names["host_y"]
    )
    if obs is not None:
        obs.snapshot_flitnet(net)
    return Fig3Outcome(
        scheme=SwitchScheme(scheme),
        mc_delay=mc_delay,
        uc_delay=uc_delay,
        status=status,
        ticks=net.now,
        flushes=net.flushes,
        multicast_delivered=bool(mc_record and mc_record.fully_delivered),
        unicast_delivered=uc_done,
    )


def sweep_fig3_offsets(
    scheme: SwitchScheme,
    mc_delays: range = range(0, 10),
    uc_delays: range = range(0, 10),
    **kwargs,
) -> List[Fig3Outcome]:
    """Run the Figure 3 scenario over a grid of injection offsets."""
    outcomes = []
    for mc_delay in mc_delays:
        for uc_delay in uc_delays:
            outcomes.append(
                run_fig3_scenario(scheme, mc_delay, uc_delay, **kwargs)
            )
    return outcomes


def deadlock_rate(outcomes: List[Fig3Outcome]) -> float:
    """Fraction of runs that did not deliver everything."""
    if not outcomes:
        return 0.0
    bad = sum(1 for o in outcomes if o.status != "delivered")
    return bad / len(outcomes)
