"""Multicast group management.

The Myrinet implementation (Section 8) uses eight-bit multicast group
identifiers; group 255 is the broadcast address, leaving 255 addresses for
ordinary groups.  Members are host ids, kept in increasing order -- the
ordering the deadlock-prevention rules rely on.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence

#: Group id reserved for broadcast (Section 8.1).
BROADCAST_GROUP_ID = 255

#: Number of bits in a Myrinet multicast group identifier.
GROUP_ID_BITS = 8


class MulticastGroup:
    """One multicast group: an id and its member hosts (sorted by id)."""

    def __init__(self, gid: int, members: Iterable[int]) -> None:
        if not 0 <= gid < 2**GROUP_ID_BITS:
            raise ValueError(f"group id {gid} outside the 8-bit space")
        members = sorted(set(members))
        if len(members) < 2:
            raise ValueError("a multicast group needs at least two members")
        self.gid = gid
        self.members: List[int] = members

    @property
    def size(self) -> int:
        return len(self.members)

    @property
    def lowest(self) -> int:
        """The lowest-id member (the total-ordering serializer of Section 5)."""
        return self.members[0]

    @property
    def highest(self) -> int:
        return self.members[-1]

    def __contains__(self, host: int) -> bool:
        return host in set(self.members)

    def index_of(self, host: int) -> int:
        """Position of ``host`` in the id-sorted member list."""
        try:
            return self.members.index(host)
        except ValueError:
            raise ValueError(f"host {host} is not in group {self.gid}") from None

    def remove_member(self, host: int) -> None:
        """Drop a (dead) host from the group.

        A group may shrink to a single member through failures; callers
        (e.g. :meth:`repro.core.adapters.MulticastEngine.handle_host_failure`)
        decide whether such a group is dissolved.
        """
        try:
            self.members.remove(host)
        except ValueError:
            raise ValueError(f"host {host} is not in group {self.gid}") from None
        if not self.members:
            raise ValueError(f"cannot remove the last member of group {self.gid}")

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Group {self.gid}: {self.members}>"


class GroupTable:
    """The network-wide registry of multicast groups.

    Each host adapter keeps (a view of) this table to map the group id in an
    incoming worm header to its successor information.
    """

    def __init__(self) -> None:
        self._groups: Dict[int, MulticastGroup] = {}

    def add(self, gid: int, members: Sequence[int]) -> MulticastGroup:
        """Register a group; rejects duplicate ids and the broadcast id."""
        if gid in self._groups:
            raise ValueError(f"group id {gid} already registered")
        if gid == BROADCAST_GROUP_ID:
            raise ValueError(f"group id {gid} is reserved for broadcast")
        group = MulticastGroup(gid, members)
        self._groups[gid] = group
        return group

    def add_broadcast(self, members: Sequence[int]) -> MulticastGroup:
        """Register the broadcast group (id 255, Section 8.1): its members
        are all hosts on the network."""
        if BROADCAST_GROUP_ID in self._groups:
            raise ValueError("broadcast group already registered")
        group = MulticastGroup(BROADCAST_GROUP_ID, members)
        self._groups[BROADCAST_GROUP_ID] = group
        return group

    def remove(self, gid: int) -> None:
        if gid not in self._groups:
            raise KeyError(f"no group {gid}")
        del self._groups[gid]

    def group(self, gid: int) -> MulticastGroup:
        try:
            return self._groups[gid]
        except KeyError:
            raise KeyError(f"no group {gid}") from None

    def __contains__(self, gid: int) -> bool:
        return gid in self._groups

    def __len__(self) -> int:
        return len(self._groups)

    @property
    def gids(self) -> List[int]:
        return sorted(self._groups)

    def groups_of(self, host: int) -> List[MulticastGroup]:
        """All groups ``host`` belongs to (worm generation picks uniformly
        among these, per Section 7)."""
        return [g for g in self._groups.values() if host in g]

    def random_groups(
        self,
        gids: Sequence[int],
        hosts: Sequence[int],
        members_per_group: int,
        stream,
    ) -> List[MulticastGroup]:
        """Create groups with members chosen at random (the Figure 10 setup:
        ten groups of ten members chosen at random)."""
        if members_per_group > len(hosts):
            raise ValueError("not enough hosts for the requested group size")
        created = []
        for gid in gids:
            members = stream.sample(list(hosts), members_per_group)
            created.append(self.add(gid, members))
        return created
