"""Rooted-tree multicasting (Section 6).

The tree is formed over the host-connectivity graph, one per group.  For
deadlock freedom and total ordering the paper requires hosts ordered by
increasing ID from the root down (children have higher IDs than their
parent) and the multicast to start from the root.  The alternative,
broadcast-on-tree, lets the originator flood from its own tree position;
the worm climbs (towards the root) in the first buffer class and descends
in the second, inverting direction at most once.

The default shape is the *heap* tree: members sorted by ID, node ``i``'s
children at positions ``branching*i + 1 .. branching*i + branching`` --
which satisfies the children-have-higher-IDs rule by construction.  A
greedy weighted shape is provided for the topology-aware extension.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.core.groups import MulticastGroup
from repro.core.hamiltonian import host_connectivity_graph
from repro.net.updown import UpDownRouting


class RootedTree:
    """A rooted multicast tree over a group's members.

    Parameters
    ----------
    group:
        The multicast group.
    branching:
        Maximum children per node for the heap shape (the paper's related
        work [VLB96] uses binary trees; 2 is the default).
    shape:
        ``"heap"`` -- ID-sorted heap layout (default, paper-compliant).
        ``"greedy_weighted"`` -- children attach to the already-placed node
        with the cheapest connecting route that still has a lower ID, which
        keeps the ID rule while shortening paths (needs ``routing``).
    routing:
        Route provider for the weighted shape.
    """

    def __init__(
        self,
        group: MulticastGroup,
        branching: int = 2,
        shape: str = "heap",
        routing: Optional[UpDownRouting] = None,
    ) -> None:
        if branching < 1:
            raise ValueError("branching must be at least 1")
        self.group = group
        self.branching = branching
        self.shape = shape
        members = list(group.members)  # already id-sorted
        self._children: Dict[int, List[int]] = {m: [] for m in members}
        self._parent: Dict[int, Optional[int]] = {}
        if shape == "heap":
            for index, host in enumerate(members):
                if index == 0:
                    self._parent[host] = None
                    continue
                parent = members[(index - 1) // branching]
                self._parent[host] = parent
                self._children[parent].append(host)
        elif shape == "greedy_weighted":
            if routing is None:
                raise ValueError("greedy_weighted shape requires a routing instance")
            weights = host_connectivity_graph(routing, members)
            placed = [members[0]]
            self._parent[members[0]] = None
            for host in members[1:]:
                candidates = [
                    p for p in placed if len(self._children[p]) < branching
                ]
                parent = min(candidates, key=lambda p: (weights[(p, host)], p))
                self._parent[host] = parent
                self._children[parent].append(host)
                placed.append(host)
        else:
            raise ValueError(f"unknown tree shape {shape!r}")
        for children in self._children.values():
            children.sort()

    @property
    def gid(self) -> int:
        return self.group.gid

    @property
    def root(self) -> int:
        """The lowest-id member (ID ordering puts it at the root)."""
        return self.group.members[0]

    @property
    def size(self) -> int:
        return len(self.group.members)

    def children(self, host: int) -> List[int]:
        try:
            return list(self._children[host])
        except KeyError:
            raise ValueError(f"host {host} not in tree of group {self.gid}") from None

    def parent(self, host: int) -> Optional[int]:
        try:
            return self._parent[host]
        except KeyError:
            raise ValueError(f"host {host} not in tree of group {self.gid}") from None

    def neighbors(self, host: int) -> List[int]:
        """Tree neighbours of ``host`` (parent + children)."""
        result = self.children(host)
        parent = self.parent(host)
        if parent is not None:
            result = [parent] + result
        return result

    def depth(self, host: int) -> int:
        depth = 0
        node = host
        while True:
            parent = self.parent(node)
            if parent is None:
                return depth
            node = parent
            depth += 1

    def remove_member(self, host: int) -> None:
        """Splice a (dead) host out of the tree, reattaching its children.

        A non-root host's children move to its parent: every child's ID
        exceeds the dead host's, which exceeds the parent's, so the paper's
        children-have-higher-IDs rule is preserved.  When the root dies its
        lowest-ID child (the lowest surviving member, by the ID rule)
        becomes the new root and adopts its siblings.  Reattachment may
        exceed ``branching`` -- a tolerated degradation until the group is
        rebuilt.  The caller updates the group membership separately.
        """
        if host not in self._parent:
            raise ValueError(f"host {host} not in tree of group {self.gid}")
        if len(self._parent) <= 2:
            raise ValueError(
                f"tree of group {self.gid} cannot shrink below two members"
            )
        orphans = self._children.pop(host)
        parent = self._parent.pop(host)
        if parent is None:
            # Root death: promote the lowest-id child.
            new_root, siblings = orphans[0], orphans[1:]
            self._parent[new_root] = None
            for child in siblings:
                self._parent[child] = new_root
            self._children[new_root].extend(siblings)
            self._children[new_root].sort()
        else:
            self._children[parent].remove(host)
            for child in orphans:
                self._parent[child] = parent
            self._children[parent].extend(orphans)
            self._children[parent].sort()

    def id_rule_holds(self) -> bool:
        """Verify the paper's rule: every child has a higher ID than its
        parent (this is what prevents buffer deadlocks, Section 6)."""
        return all(
            child > parent
            for parent, children in self._children.items()
            for child in children
        )

    def walk_preorder(self, start: Optional[int] = None) -> List[int]:
        """Depth-first order from ``start`` (default: root)."""
        start = self.root if start is None else start
        order = []
        stack = [start]
        while stack:
            node = stack.pop()
            order.append(node)
            stack.extend(reversed(self.children(node)))
        return order

    def covers_all_members(self) -> bool:
        return sorted(self.walk_preorder()) == self.group.members

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<RootedTree g{self.gid} root={self.root} n={self.size}>"


def tree_hop_length(tree: RootedTree, routing: UpDownRouting) -> int:
    """Total network hop count over all tree edges.

    The paper notes the tree achieves higher total throughput because 'the
    average hop length for each link of the tree is less than the average
    hop length for all pairs' -- this computes the tree side of that
    comparison.
    """
    total = 0
    for host in tree.group.members:
        parent = tree.parent(host)
        if parent is not None:
            total += routing.hop_count(parent, host)
    return total
