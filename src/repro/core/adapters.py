"""The host-adapter multicast engine (Sections 4, 5 and 6).

Worm replication and retransmission happen entirely in the host adapters
(the LANai cards in Myrinet): multicast worms look like ordinary unicast
worms to the crossbar switches.  An adapter that receives a multicast worm

1. recognizes it by the multicast group ID in the header,
2. runs the *implicit buffer reservation* admission test (Figure 5): if the
   full worm fits in the adapter's buffer pool (of the proper class) it is
   accepted and acknowledged, otherwise it is dropped and NACKed, and the
   upstream adapter retransmits after a randomized timeout,
3. copies the worm to its local host, and
4. retransmits it to its successor(s) in the group's predefined structure
   (Hamiltonian circuit or rooted tree), in cut-through mode when enabled
   and the output port is free, store-and-forward otherwise.

Buffer deadlocks are prevented by the two-buffer-class rule
(:mod:`repro.core.buffers`): buffer requests always point to a higher host
ID or a higher buffer class.  Total ordering is provided by serializing all
of a group's messages through its lowest-ID host (circuit) or root (tree);
serialized distribution legs use class 2 so that class-1 arrows point only
towards lower IDs (relay legs) and class-2 arrows only towards higher IDs.

Matching the paper's simulator (Section 7) and the Myrinet implementation,
the adapter never backpressures the network: an arriving worm is always
drained off the wire; "acceptance" decides whether it is buffered and
forwarded or dropped for upstream retransmission.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass, field
from enum import Enum
from typing import Callable, Dict, List, Optional

from repro.core.buffers import BufferClaim, BufferClasses
from repro.core.credit import CreditConfig, CreditController
from repro.core.groups import GroupTable, MulticastGroup
from repro.core.hamiltonian import HamiltonianCircuit
from repro.core.tree import RootedTree
from repro.net.worm import CONTROL_WORM_BYTES, Worm, WormKind
from repro.net.wormnet import Transfer, WormholeNetwork
from repro.sim.engine import Simulator
from repro.sim.monitor import TallyStat
from repro.sim.rng import RandomStreams

_message_ids = itertools.count(1)


class Scheme(str, Enum):
    """How a group's members are structured for forwarding.

    ``REPEATED_UNICAST`` is the baseline the paper criticizes in Section 1:
    the current Myrinet host software multicasts by sending one unicast
    copy per destination from the source, which ties up the source
    interface for the whole session and cannot enforce total ordering.
    """

    HAMILTONIAN = "hamiltonian"
    TREE = "tree"
    TREE_BROADCAST = "tree_broadcast"
    REPEATED_UNICAST = "repeated_unicast"
    #: The [VLB96] centralized-credit baseline: binary-tree multicast gated
    #: by cumulative credits from a central manager (see repro.core.credit).
    CREDIT_TREE = "credit_tree"


class AcceptancePolicy(str, Enum):
    """What an adapter does when a multicast worm arrives.

    * ``ALWAYS`` -- ample buffering; every worm is accepted (the regime of
      the paper's latency simulations).
    * ``NACK`` -- implicit reservation: insufficient buffer drops the worm
      and NACKs; the upstream adapter retransmits after a timeout
      (Figure 5).
    * ``WAIT`` -- the arriving worm waits for buffer space instead of being
      dropped.  Without the two-buffer-class rule this is the
      deadlock-prone configuration of Figure 6.
    """

    ALWAYS = "always"
    NACK = "nack"
    WAIT = "wait"


class ProtocolError(RuntimeError):
    """A protocol invariant was violated (e.g. retry budget exhausted)."""


@dataclass
class AdapterConfig:
    """Host adapter behaviour knobs.

    Attributes
    ----------
    cut_through:
        Forward to the first successor while the worm is still being
        received, when the output port is free (Sections 5/6).  Off =
        store-and-forward at every member (the Myrinet implementation).
    acceptance:
        See :class:`AcceptancePolicy`.
    buffer_bytes:
        Per-class adapter buffer capacity in bytes (``inf`` = unlimited).
    dma_extension_bytes:
        Shared host-DMA overflow pool ([VLB96] extension; 0 disables).
    use_buffer_classes:
        Apply the two-buffer-class rule.  Disabling it demonstrates the
        Figure 6 buffer deadlock under the WAIT policy.
    model_acks:
        Send explicit ACK/NACK control worms through the network (adds
        their latency and load).  When off, the sender learns the
        admission outcome with the worm's tail -- the idealization the
        paper's simulator uses.
    retry_timeout:
        Base retransmission timeout after a NACK, byte-times.
    retry_jitter:
        The timeout is multiplied by ``1 + U(0, retry_jitter)`` (the
        paper's 'random time out').
    max_retries:
        Abort (raise ProtocolError) after this many NACK retries.
    copy_latency:
        Adapter-to-host copy time added to each local delivery.
    confirm_return:
        Hamiltonian only: let the worm travel the full circuit back to the
        originator as a delivery confirmation (Section 5).
    total_ordering:
        Serialize every message of a group through its lowest-ID host
        (circuit) or root (tree); assigns sequence numbers.
    """

    cut_through: bool = False
    acceptance: AcceptancePolicy = AcceptancePolicy.ALWAYS
    buffer_bytes: float = math.inf
    dma_extension_bytes: float = 0.0
    use_buffer_classes: bool = True
    model_acks: bool = False
    retry_timeout: float = 2000.0
    retry_jitter: float = 1.0
    max_retries: int = 100
    copy_latency: float = 0.0
    confirm_return: bool = False
    #: With confirm_return: if the worm has not come home within this many
    #: byte-times, retransmit the whole circuit (Section 5: 'combined with
    #: timeout and retransmission, this facility could provide the
    #: guarantee of reliable delivery' on a lossy network).  None disables.
    confirm_timeout: Optional[float] = None
    max_confirm_retries: int = 20
    total_ordering: bool = False


@dataclass
class MulticastMessage:
    """One application-level multicast message and its delivery record."""

    gid: int
    origin: int
    length: int
    created: float
    expected: frozenset
    payload: object = None
    mid: int = field(default_factory=lambda: next(_message_ids))
    seqno: Optional[int] = None
    deliveries: Dict[int, float] = field(default_factory=dict)
    completed_at: Optional[float] = None
    confirmed_at: Optional[float] = None

    @property
    def complete(self) -> bool:
        return self.completed_at is not None

    def completion_latency(self) -> float:
        if self.completed_at is None:
            raise RuntimeError(f"message {self.mid} not complete")
        return self.completed_at - self.created


class _GroupState:
    """Per-group forwarding structure and sequencing state."""

    def __init__(
        self,
        group: MulticastGroup,
        scheme: Scheme,
        structure,
    ) -> None:
        self.group = group
        self.scheme = scheme
        self.structure = structure
        self._next_seq = itertools.count(0)

    @property
    def gid(self) -> int:
        return self.group.gid

    @property
    def serializer(self) -> int:
        """The host that serializes this group's messages (lowest ID /
        tree root)."""
        if self.scheme in (Scheme.TREE, Scheme.TREE_BROADCAST):
            return self.structure.root
        return self.group.lowest

    @property
    def supports_total_ordering(self) -> bool:
        """Repeated unicast cannot enforce total ordering (Section 1)."""
        return self.scheme != Scheme.REPEATED_UNICAST

    def next_seq(self) -> int:
        return next(self._next_seq)


class MulticastEngine:
    """Creates and wires a :class:`HostAdapter` for every host, owns the
    group registry, and collects protocol-level statistics.

    This is the library's main entry point for host-adapter multicasting::

        sim = Simulator()
        topo = torus(8, 8)
        net = WormholeNetwork(sim, topo)
        engine = MulticastEngine(sim, net, AdapterConfig(cut_through=True))
        engine.create_group(1, topo.hosts[:10], Scheme.HAMILTONIAN)
        message = engine.multicast(origin=topo.hosts[0], gid=1, length=400)
        sim.run()
        assert message.complete
    """

    def __init__(
        self,
        sim: Simulator,
        net: WormholeNetwork,
        config: Optional[AdapterConfig] = None,
        rng: Optional[RandomStreams] = None,
        obs=None,
    ) -> None:
        self.sim = sim
        self.net = net
        #: Optional :class:`~repro.obs.Observability`; records message spans
        #: and latency distributions (one pointer test per event when None).
        self.obs = obs
        self.config = config or AdapterConfig()
        if self.config.acceptance == AcceptancePolicy.WAIT and math.isinf(
            self.config.buffer_bytes
        ):
            raise ValueError("the WAIT acceptance policy requires finite buffers")
        self.rng = rng or RandomStreams(seed=1)
        self.groups = GroupTable()
        self._states: Dict[int, _GroupState] = {}
        self.adapters: Dict[int, HostAdapter] = {
            host: HostAdapter(self, host) for host in net.topology.hosts
        }
        # Statistics.
        self.delivery_latency = TallyStat("multicast delivery latency")
        self.completion_latency = TallyStat("multicast completion latency")
        self.unicast_latency = TallyStat("unicast latency")
        self.messages_sent = 0
        self.messages_completed = 0
        self.unicasts_sent = 0
        self.unicasts_delivered = 0
        self.nacks = 0
        self.retries = 0
        self.confirm_retransmissions = 0
        self.group_repairs = 0
        self.groups_dissolved = 0
        #: Optional observer called as fn(host, worm, message, time) on
        #: every local multicast delivery (the ordering checker hooks here).
        self.delivery_observer: Optional[Callable] = None
        #: worm wid -> event fired when the downstream adapter buffered the
        #: worm (WAIT acceptance policy only).
        self._wait_claims: Dict[int, object] = {}
        #: gid -> controller for CREDIT_TREE groups.
        self.credit_controllers: Dict[int, CreditController] = {}

    # -- group management ----------------------------------------------------
    def create_group(
        self,
        gid: int,
        members,
        scheme: Scheme = Scheme.HAMILTONIAN,
        **structure_kwargs,
    ) -> _GroupState:
        """Register a group and build its forwarding structure."""
        credit_config = structure_kwargs.pop("credit_config", None)
        group = self.groups.add(gid, members)
        state = self._build_state(group, scheme, structure_kwargs)
        self._states[gid] = state
        if scheme == Scheme.CREDIT_TREE:
            self.credit_controllers[gid] = CreditController(
                self, state, credit_config
            )
        elif credit_config is not None:
            raise ValueError("credit_config only applies to CREDIT_TREE groups")
        return state

    def _build_state(self, group, scheme: Scheme, structure_kwargs) -> _GroupState:
        if self.config.total_ordering and scheme == Scheme.REPEATED_UNICAST:
            raise ValueError(
                "repeated unicast cannot enforce total ordering (Section 1)"
            )
        if scheme == Scheme.HAMILTONIAN:
            structure = HamiltonianCircuit(group, **structure_kwargs)
        elif scheme in (Scheme.TREE, Scheme.TREE_BROADCAST):
            structure = RootedTree(group, **structure_kwargs)
        elif scheme == Scheme.CREDIT_TREE:
            structure = RootedTree(group, **structure_kwargs)
        elif scheme == Scheme.REPEATED_UNICAST:
            if structure_kwargs:
                raise ValueError("repeated unicast takes no structure options")
            structure = None
        else:  # pragma: no cover - enum exhaustive
            raise ValueError(f"unknown scheme {scheme!r}")
        return _GroupState(group, scheme, structure)

    def create_broadcast_group(
        self, scheme: Scheme = Scheme.HAMILTONIAN, **structure_kwargs
    ) -> _GroupState:
        """Register group 255 spanning every host (Section 8.1's broadcast
        address)."""
        group = self.groups.add_broadcast(self.net.topology.hosts)
        state = self._build_state(group, scheme, structure_kwargs)
        self._states[group.gid] = state
        return state

    def broadcast(self, origin: int, length: int, payload: object = None):
        """Multicast to the broadcast group (create it first)."""
        from repro.core.groups import BROADCAST_GROUP_ID

        return self.multicast(origin, BROADCAST_GROUP_ID, length, payload)

    def group_state(self, gid: int) -> _GroupState:
        try:
            return self._states[gid]
        except KeyError:
            raise KeyError(f"no group {gid}") from None

    def handle_host_failure(self, host: int) -> Dict[str, List[int]]:
        """Repair every group structure after ``host`` crashed.

        The membership service's reaction to a host death: the host is
        spliced out of each group it belongs to (circuit successor /
        tree-parent maps are repaired in place), and groups that would
        degenerate below two members are dissolved.  Returns the affected
        gids as ``{"repaired": [...], "dissolved": [...]}``.  In-flight
        messages that expected the dead host never complete -- that loss is
        visible in the completion statistics.
        """
        repaired: List[int] = []
        dissolved: List[int] = []
        for gid in list(self._states):
            state = self._states[gid]
            if host not in state.group.members:
                continue
            if len(state.group.members) <= 2:
                self.groups.remove(gid)
                del self._states[gid]
                self.credit_controllers.pop(gid, None)
                dissolved.append(gid)
                continue
            state.group.remove_member(host)
            if state.structure is not None:
                state.structure.remove_member(host)
            repaired.append(gid)
        self.group_repairs += len(repaired)
        self.groups_dissolved += len(dissolved)
        return {"repaired": repaired, "dissolved": dissolved}

    def adapter(self, host: int) -> "HostAdapter":
        return self.adapters[host]

    # -- traffic entry points ---------------------------------------------------
    def multicast(
        self, origin: int, gid: int, length: int, payload: object = None
    ) -> MulticastMessage:
        """Originate a multicast message; returns its record immediately."""
        state = self.group_state(gid)
        if origin not in state.group:
            raise ValueError(f"host {origin} is not a member of group {gid}")
        message = MulticastMessage(
            gid=gid,
            origin=origin,
            length=length,
            created=self.sim.now,
            expected=frozenset(m for m in state.group.members if m != origin),
            payload=payload,
        )
        self.messages_sent += 1
        if self.obs is not None:
            self.obs.message_sent(self.sim.now, message.mid, gid, origin, length)
        self.adapters[origin].originate(message, state)
        return message

    def unicast(self, src: int, dst: int, length: int) -> Worm:
        """Send background unicast traffic; latency recorded on delivery."""
        if src == dst:
            raise ValueError("unicast to self")
        worm = Worm(
            source=src, dest=dst, length=length, kind=WormKind.UNICAST,
            created=self.sim.now,
        )
        self.unicasts_sent += 1
        self.net.send(worm)
        return worm

    # -- delivery bookkeeping ---------------------------------------------------
    def record_delivery(self, host: int, worm: Worm, when: float) -> None:
        message: MulticastMessage = worm.payload
        if self.delivery_observer is not None:
            self.delivery_observer(host, worm, message, when)
        if host not in message.expected:
            return
        if host in message.deliveries:
            return  # duplicate (e.g. retransmission overlap)
        message.deliveries[host] = when
        self.delivery_latency.add(when - message.created)
        if self.obs is not None:
            self.obs.message_delivery(when, message.mid, host, when - message.created)
        if len(message.deliveries) == len(message.expected):
            message.completed_at = when
            self.messages_completed += 1
            self.completion_latency.add(message.completion_latency())
            if self.obs is not None:
                self.obs.message_completed(when, message.mid, message.completion_latency())

    def record_unicast_delivery(self, worm: Worm, when: float) -> None:
        self.unicasts_delivered += 1
        self.unicast_latency.add(when - worm.created)
        if self.obs is not None:
            self.obs.unicast_delivered(when, when - worm.created)

    def reset_stats(self) -> None:
        """Discard warm-up statistics (message records keep accumulating)."""
        self.delivery_latency = TallyStat("multicast delivery latency")
        self.completion_latency = TallyStat("multicast completion latency")
        self.unicast_latency = TallyStat("unicast latency")
        self.messages_sent = 0
        self.messages_completed = 0
        self.unicasts_sent = 0
        self.unicasts_delivered = 0
        self.nacks = 0
        self.retries = 0
        self.confirm_retransmissions = 0
        self.group_repairs = 0
        self.groups_dissolved = 0


class HostAdapter:
    """One host's network interface card (the LANai in Myrinet)."""

    def __init__(self, engine: MulticastEngine, host: int) -> None:
        self.engine = engine
        self.sim = engine.sim
        self.net = engine.net
        self.host = host
        config = engine.config
        self.buffers = BufferClasses(
            engine.sim,
            class_bytes=config.buffer_bytes,
            dma_extension_bytes=config.dma_extension_bytes,
            use_classes=config.use_buffer_classes,
        )
        self._retry_stream = engine.rng.stream(f"adapter{host}.retry")
        #: worm wid -> admission state for in-flight incoming worms.
        self._incoming: Dict[int, dict] = {}
        #: original worm wid -> event resolved by an ACK/NACK control worm.
        self._control_waits: Dict[int, object] = {}
        #: CREDIT_TREE in-order delivery state: gid -> next expected seqno,
        #: and gid -> {seqno: stashed worm} held until its turn.
        self._credit_next: Dict[int, int] = {}
        self._credit_stash: Dict[int, Dict[int, Worm]] = {}
        #: gid -> seqnos this host originated (skipped in the order stream,
        #: since a flood never returns to its origin).
        self._credit_own: Dict[int, set] = {}
        self.net.set_receiver(host, self._on_worm_complete)
        self.net.set_head_watcher(host, self._on_worm_head)

    @property
    def config(self) -> AdapterConfig:
        return self.engine.config

    # -- origination ------------------------------------------------------------
    def originate(self, message: MulticastMessage, state: _GroupState) -> None:
        self.sim.process(
            self._originate(message, state), name=f"mc-origin-h{self.host}-m{message.mid}"
        )

    def _originate(self, message: MulticastMessage, state: _GroupState):
        config = self.config
        if state.scheme == Scheme.CREDIT_TREE:
            yield from self._originate_credit(message, state)
            return
        serialized = config.total_ordering
        if serialized and self.host != state.serializer:
            # Relay to the serializer (lowest-ID host / tree root), which
            # assigns the sequence number and starts the distribution.
            worm = Worm(
                source=self.host,
                dest=state.serializer,
                length=message.length,
                kind=WormKind.MULTICAST,
                origin=self.host,
                group=state.gid,
                created=message.created,
                payload=message,
                wrapped=False,  # relay legs ride buffer class 1
                relay=True,
            )
            claim = yield from self._claim_origin_buffer(message.length, wrapped=False)
            yield from self._transmit_until_accepted(worm)
            if claim is not None:
                claim.release()
            return
        if serialized:
            message.seqno = state.next_seq()
        yield from self._distribute(message, state, serialized)

    def _originate_credit(self, message: MulticastMessage, state: _GroupState):
        """[VLB96] baseline: acquire a cumulative credit from the manager,
        then flood the binary tree.  The sequenced credit is the message's
        total-ordering stamp."""
        controller = self.engine.credit_controllers[state.gid]
        claim = yield from self._claim_origin_buffer(message.length, wrapped=False)
        try:
            message.seqno = yield from controller.acquire(self.host)
            self._credit_mark_own(state.gid, message.seqno)
            yield from self._flood_tree(message, state, arrived_from=None)
        finally:
            if claim is not None:
                claim.release()
            # The origin's share of the cumulative credit is released once
            # its copies are out; the token tours recycle the credit when
            # every member has done the same.
            controller.mark_freed(self.host, message.seqno)

    def _distribute(self, message: MulticastMessage, state: _GroupState, serialized: bool):
        """Start the structure walk from this host (originator or serializer)."""
        wrapped_base = serialized  # serialized distribution legs use class 2
        claim = yield from self._claim_origin_buffer(message.length, wrapped=wrapped_base)
        try:
            if state.scheme == Scheme.REPEATED_UNICAST:
                # The Section 1 baseline: the source sends one copy per
                # destination; its interface is tied up for the whole
                # multicast session.
                for member in state.group.members:
                    if member == self.host:
                        continue
                    worm = Worm(
                        source=self.host,
                        dest=member,
                        length=message.length,
                        kind=WormKind.MULTICAST,
                        origin=message.origin,
                        group=state.gid,
                        hop_count=0,
                        created=message.created,
                        payload=message,
                    )
                    yield from self._transmit_until_accepted(worm)
                return
            if state.scheme == Scheme.HAMILTONIAN:
                circuit: HamiltonianCircuit = state.structure
                hop_count = circuit.initial_hop_count(self.config.confirm_return)
                if hop_count <= 0:
                    return
                nxt = circuit.successor(self.host)
                worm = Worm(
                    source=self.host,
                    dest=nxt,
                    length=message.length,
                    kind=WormKind.MULTICAST,
                    origin=message.origin,
                    group=state.gid,
                    hop_count=hop_count - 1,
                    wrapped=wrapped_base or circuit.is_reversal(self.host, nxt),
                    seqno=message.seqno,
                    created=message.created,
                    payload=message,
                )
                yield from self._transmit_until_accepted(worm)
                yield from self._await_confirmation(message, state)
            elif state.scheme == Scheme.TREE:
                tree: RootedTree = state.structure
                if self.host != tree.root:
                    # Root-start rule: relay to the root first (Section 6).
                    worm = Worm(
                        source=self.host,
                        dest=tree.root,
                        length=message.length,
                        kind=WormKind.MULTICAST,
                        origin=message.origin,
                        group=state.gid,
                        created=message.created,
                        payload=message,
                        seqno=message.seqno,
                        wrapped=False,
                        relay=True,
                    )
                    yield from self._transmit_until_accepted(worm)
                else:
                    yield from self._forward_tree_children(
                        message, state, wrapped=True, exclude=None
                    )
            elif state.scheme == Scheme.TREE_BROADCAST:
                yield from self._flood_tree(message, state, arrived_from=None)
        finally:
            if claim is not None:
                claim.release()

    def _await_confirmation(self, message: MulticastMessage, state: _GroupState):
        """Section 5's reliability option: wait for the worm to return from
        the full circuit; on timeout, retransmit the whole multicast."""
        config = self.config
        if not (config.confirm_return and config.confirm_timeout):
            return
        circuit: HamiltonianCircuit = state.structure
        attempts = 0
        while message.confirmed_at is None:
            yield self.sim.timeout(config.confirm_timeout)
            if message.confirmed_at is not None:
                return
            attempts += 1
            if attempts > config.max_confirm_retries:
                raise ProtocolError(
                    f"host {self.host}: multicast {message.mid} never "
                    f"confirmed after {attempts} retransmissions"
                )
            self.engine.confirm_retransmissions += 1
            nxt = circuit.successor(self.host)
            resend = Worm(
                source=self.host,
                dest=nxt,
                length=message.length,
                kind=WormKind.MULTICAST,
                origin=message.origin,
                group=state.gid,
                hop_count=circuit.initial_hop_count(include_return=True) - 1,
                wrapped=circuit.is_reversal(self.host, nxt),
                seqno=message.seqno,
                created=message.created,
                payload=message,
            )
            yield from self._transmit_until_accepted(resend)

    def _claim_origin_buffer(self, length: int, wrapped: bool):
        """The originator secures buffering for the whole worm before
        sending (Section 4's precondition at host adapter A).

        Retries on the NACK timeout cadence until the class pool (or its
        DMA extension) can hold the worm; a worm that can never fit is a
        configuration error.
        """
        config = self.config
        if config.acceptance == AcceptancePolicy.ALWAYS:
            return None
        largest = max(config.buffer_bytes, config.dma_extension_bytes)
        if length > largest:
            raise ProtocolError(
                f"host {self.host}: worm of {length} bytes exceeds adapter "
                f"buffering ({largest} bytes); split the message"
            )
        while True:
            claim = self.buffers.try_claim(length, wrapped)
            if claim is not None:
                return claim
            backoff = config.retry_timeout * (
                1.0 + self._retry_stream.uniform(0.0, config.retry_jitter)
            )
            yield self.sim.timeout(backoff)

    # -- reception ---------------------------------------------------------------
    def _on_worm_head(self, worm: Worm, transfer: Transfer) -> None:
        """Head arrival: run admission, optionally start cut-through."""
        if worm.kind != WormKind.MULTICAST:
            return
        entry: Dict = {"claim": None, "ct_process": None}
        self._incoming[worm.wid] = entry
        policy = self.config.acceptance
        if policy == AcceptancePolicy.ALWAYS:
            worm.accepted = True
        elif policy == AcceptancePolicy.NACK:
            claim = self.buffers.try_claim(worm.length, self._class_of(worm))
            if claim is None:
                worm.accepted = False
                self.engine.nacks += 1
            else:
                worm.accepted = True
                entry["claim"] = claim
        else:  # WAIT: admission blocks in the completion handler
            worm.accepted = True
        if (
            worm.accepted
            and self.config.cut_through
            and policy != AcceptancePolicy.WAIT
        ):
            entry["ct_process"] = self._maybe_cut_through(worm)

    def _maybe_cut_through(self, worm: Worm):
        """Start forwarding to the first successor while still receiving,
        if the output port is free (Sections 5/6)."""
        if self.net.injection_channel(self.host).busy:
            return None
        state = self.engine.group_state(worm.group)
        first = self._first_successor(worm, state)
        if first is None:
            return None
        fwd = self._next_worm(worm, state, first)
        return self.sim.process(
            self._transmit_until_accepted(fwd),
            name=f"ct-h{self.host}-w{worm.wid}",
        )

    def _on_worm_complete(self, worm: Worm, transfer: Transfer) -> None:
        if worm.kind == WormKind.UNICAST:
            self.engine.record_unicast_delivery(worm, self.sim.now)
            return
        if worm.is_control:
            if worm.kind in (
                WormKind.CREDIT_REQUEST,
                WormKind.CREDIT_GRANT,
                WormKind.TOKEN,
            ):
                controller = self.engine.credit_controllers.get(worm.group)
                if controller is not None:
                    controller.on_control(worm, at_host=self.host)
                return
            self._resolve_control(worm)
            return
        entry = self._incoming.pop(worm.wid, {"claim": None, "ct_process": None})
        if worm.accepted is False:
            # Dropped: upstream retransmits.  Send the NACK if modelled.
            if self.config.model_acks:
                self._send_control(worm, WormKind.NACK)
            return
        if self.config.model_acks:
            self._send_control(worm, WormKind.ACK)
        self.sim.process(
            self._handle_accepted(worm, entry),
            name=f"mc-recv-h{self.host}-w{worm.wid}",
        )

    def _handle_accepted(self, worm: Worm, entry: Dict):
        """Buffer (if needed), deliver locally, forward, release."""
        claim = entry["claim"]
        if self.config.acceptance == AcceptancePolicy.WAIT and claim is None:
            wrapped = self._class_of(worm)
            get = self.buffers.claim_blocking(worm.length, wrapped)
            yield get
            claim = BufferClaim(self.buffers.pool(wrapped), worm.length, spilled=0.0)
        # Tell the upstream adapter its worm is now buffered here, so it may
        # release its own copy (the hold-and-wait edge of Figure 6).
        buffered = self.engine._wait_claims.pop(worm.wid, None)
        if buffered is not None:
            buffered.succeed()
        message: MulticastMessage = worm.payload
        state = self.engine.group_state(worm.group)
        try:
            # Local copy to the host.
            if self.config.copy_latency:
                yield self.sim.timeout(self.config.copy_latency)
            if worm.relay:
                # We are the serializer/root: stamp the sequence number
                # first (relay arrival order IS the total order), so our
                # own delivery record carries it, then distribute.
                if self.config.total_ordering and message.seqno is None:
                    message.seqno = state.next_seq()
                    worm.seqno = message.seqno
                self.engine.record_delivery(self.host, worm, self.sim.now)
                yield from self._distribute_from_relay(message, state)
                return
            if self.host == message.origin:
                # The worm came home: circuit confirmation (Section 5).
                message.confirmed_at = self.sim.now
            elif state.scheme == Scheme.CREDIT_TREE:
                # Sequenced credits give total order: pass worms up to the
                # host strictly in seqno order.
                self._deliver_credit_ordered(worm)
            else:
                self.engine.record_delivery(self.host, worm, self.sim.now)
            yield from self._forward(worm, state, entry["ct_process"])
        finally:
            if claim is not None:
                claim.release()
            if state.scheme == Scheme.CREDIT_TREE and not worm.relay:
                self.engine.credit_controllers[state.gid].mark_freed(
                    self.host, worm.seqno
                )

    def _deliver_credit_ordered(self, worm: Worm) -> None:
        gid = worm.group
        if worm.seqno is None:
            self.engine.record_delivery(self.host, worm, self.sim.now)
            return
        self._credit_stash.setdefault(gid, {})[worm.seqno] = worm
        self._drain_credit_stash(gid)

    def _credit_mark_own(self, gid: int, seqno: int) -> None:
        """Skip our own seqno in the delivery stream (the flood never
        returns to its origin)."""
        self._credit_own.setdefault(gid, set()).add(seqno)
        self._drain_credit_stash(gid)

    def _drain_credit_stash(self, gid: int) -> None:
        stash = self._credit_stash.setdefault(gid, {})
        own = self._credit_own.setdefault(gid, set())
        expected = self._credit_next.get(gid, 0)
        while True:
            if expected in stash:
                held = stash.pop(expected)
                self.engine.record_delivery(self.host, held, self.sim.now)
            elif expected in own:
                own.remove(expected)
            else:
                break
            expected += 1
        self._credit_next[gid] = expected

    def _distribute_from_relay(self, message: MulticastMessage, state: _GroupState):
        yield from self._distribute_inner(message, state)

    def _distribute_inner(self, message: MulticastMessage, state: _GroupState):
        if state.scheme == Scheme.HAMILTONIAN:
            circuit: HamiltonianCircuit = state.structure
            hop_count = circuit.initial_hop_count(self.config.confirm_return)
            if hop_count <= 0:
                return
            nxt = circuit.successor(self.host)
            worm = Worm(
                source=self.host,
                dest=nxt,
                length=message.length,
                kind=WormKind.MULTICAST,
                origin=message.origin,
                group=state.gid,
                hop_count=hop_count - 1,
                wrapped=True,  # serialized distribution rides class 2
                seqno=message.seqno,
                created=message.created,
                payload=message,
            )
            yield from self._transmit_until_accepted(worm)
        else:
            yield from self._forward_tree_children(
                message, state, wrapped=True, exclude=None
            )

    # -- forwarding ---------------------------------------------------------------
    def _forward(self, worm: Worm, state: _GroupState, ct_process) -> object:
        if not self.engine.net.topology.node_alive(self.host) or (
            self.host not in state.group
        ):
            # A crashed host's adapter forwards nothing -- it died with the
            # host.  Without this guard, a member that receives a worm and
            # then crashes (and is spliced off the group structure by the
            # recovery manager) before its forwarding turn would look up its
            # successor on a circuit it no longer belongs to and raise.
            return
        if state.scheme == Scheme.REPEATED_UNICAST:
            return  # terminal copies: nothing to retransmit
        if state.scheme == Scheme.HAMILTONIAN:
            yield from self._forward_hamiltonian(worm, state, ct_process)
        elif state.scheme == Scheme.TREE:
            yield from self._forward_tree(worm, state, ct_process)
        else:
            yield from self._forward_tree_broadcast(worm, state, ct_process)

    def _first_successor(self, worm: Worm, state: _GroupState) -> Optional[int]:
        """The first (cut-through) successor for an incoming worm."""
        if worm.relay or state.scheme == Scheme.REPEATED_UNICAST:
            return None  # relays restart distribution; terminal copies too
        if state.scheme == Scheme.HAMILTONIAN:
            if worm.hop_count <= 0:
                return None
            return state.structure.successor(self.host)
        if state.scheme == Scheme.TREE:
            children = state.structure.children(self.host)
            return children[0] if children else None
        successors = self._broadcast_successors(worm, state.structure)
        return successors[0][0] if successors else None

    def _next_worm(self, worm: Worm, state: _GroupState, nxt: int) -> Worm:
        """Build the retransmitted copy for successor ``nxt``."""
        if state.scheme == Scheme.HAMILTONIAN:
            circuit: HamiltonianCircuit = state.structure
            return worm.forwarded_to(
                nxt,
                hop_count=worm.hop_count - 1,
                wrapped=worm.wrapped or circuit.is_reversal(self.host, nxt),
            )
        if state.scheme == Scheme.TREE:
            return worm.forwarded_to(nxt, wrapped=worm.wrapped)
        # Tree broadcast: phase decides class.
        tree: RootedTree = state.structure
        phase = "climb" if nxt == tree.parent(self.host) else "descend"
        return worm.forwarded_to(nxt, phase=phase, wrapped=(phase == "descend"))

    def _forward_hamiltonian(self, worm: Worm, state: _GroupState, ct_process):
        if ct_process is not None:
            yield ct_process  # the cut-through send covers the (single) successor
            return
        if worm.hop_count <= 0:
            return
        nxt = state.structure.successor(self.host)
        yield from self._transmit_until_accepted(self._next_worm(worm, state, nxt))

    def _forward_tree(self, worm: Worm, state: _GroupState, ct_process):
        tree: RootedTree = state.structure
        children = tree.children(self.host)
        if not children:
            return
        if ct_process is not None:
            yield ct_process
            children = children[1:]
        for child in children:
            yield from self._transmit_until_accepted(
                self._next_worm(worm, state, child)
            )

    def _broadcast_successors(self, worm: Worm, tree: RootedTree) -> List:
        """(next host, phase) pairs for the broadcast-on-tree flood."""
        successors = []
        parent = tree.parent(self.host)
        exclude = worm.source
        # A worm climbing (from a child) keeps climbing and fans out down;
        # a worm descending (from the parent) only descends.
        if parent is not None and parent != exclude and worm.phase != "descend":
            successors.append((parent, "climb"))
        for child in tree.children(self.host):
            if child != exclude:
                successors.append((child, "descend"))
        return successors

    def _forward_tree_broadcast(self, worm: Worm, state: _GroupState, ct_process):
        successors = self._broadcast_successors(worm, state.structure)
        if ct_process is not None:
            yield ct_process
            successors = successors[1:]
        for nxt, phase in successors:
            fwd = worm.forwarded_to(nxt, phase=phase, wrapped=(phase == "descend"))
            yield from self._transmit_until_accepted(fwd)

    def _forward_tree_children(
        self, message: MulticastMessage, state: _GroupState, wrapped: bool, exclude
    ):
        tree: RootedTree = state.structure
        for child in tree.children(self.host):
            if child == exclude:
                continue
            worm = Worm(
                source=self.host,
                dest=child,
                length=message.length,
                kind=WormKind.MULTICAST,
                origin=message.origin,
                group=state.gid,
                wrapped=wrapped,
                seqno=message.seqno,
                created=message.created,
                payload=message,
            )
            yield from self._transmit_until_accepted(worm)

    def _flood_tree(self, message: MulticastMessage, state: _GroupState, arrived_from):
        tree: RootedTree = state.structure
        parent = tree.parent(self.host)
        if parent is not None and parent != arrived_from:
            worm = Worm(
                source=self.host,
                dest=parent,
                length=message.length,
                kind=WormKind.MULTICAST,
                origin=message.origin,
                group=state.gid,
                phase="climb",
                wrapped=False,
                seqno=message.seqno,
                created=message.created,
                payload=message,
            )
            yield from self._transmit_until_accepted(worm)
        for child in tree.children(self.host):
            if child == arrived_from:
                continue
            worm = Worm(
                source=self.host,
                dest=child,
                length=message.length,
                kind=WormKind.MULTICAST,
                origin=message.origin,
                group=state.gid,
                phase="descend",
                wrapped=True,
                seqno=message.seqno,
                created=message.created,
                payload=message,
            )
            yield from self._transmit_until_accepted(worm)

    # -- reliable hop transmission ------------------------------------------------
    def _transmit_until_accepted(self, worm: Worm):
        """Send one hop of the multicast, retrying on NACK (Figure 5).

        Under the WAIT policy the hop is complete only once the downstream
        adapter has *claimed buffering* for the worm -- the sender's own
        buffer stays held until then, which is exactly the hold-and-wait
        pattern the two-buffer-class rule must break (Figure 6).
        """
        config = self.config
        attempts = 0
        current = worm
        while True:
            if config.acceptance == AcceptancePolicy.WAIT:
                buffered = self.sim.event()
                self.engine._wait_claims[current.wid] = buffered
            transfer = self.net.send(current)
            if config.model_acks:
                wait = self.sim.event()
                self._control_waits[current.wid] = wait
                yield transfer.completed
                outcome = yield wait
                accepted = outcome == WormKind.ACK
            else:
                yield transfer.completed
                accepted = current.accepted is not False
            if accepted:
                if config.acceptance == AcceptancePolicy.WAIT:
                    yield buffered
                return
            attempts += 1
            self.engine.retries += 1
            if attempts > config.max_retries:
                raise ProtocolError(
                    f"host {self.host}: worm to {current.dest} NACKed "
                    f"{attempts} times (group {current.group})"
                )
            backoff = config.retry_timeout * (
                1.0 + self._retry_stream.uniform(0.0, config.retry_jitter)
            )
            yield self.sim.timeout(backoff)
            current = current.retry_copy()

    # -- control worms --------------------------------------------------------------
    def _send_credit_control(
        self, kind: WormKind, dest: int, gid: int, payload, length: int
    ) -> None:
        """Send a credit-protocol control worm (request/grant)."""
        self.net.send(
            Worm(
                source=self.host,
                dest=dest,
                length=length,
                kind=kind,
                group=gid,
                payload=payload,
                created=self.sim.now,
            )
        )

    def _send_control(self, original: Worm, kind: WormKind) -> None:
        control = Worm(
            source=self.host,
            dest=original.source,
            length=CONTROL_WORM_BYTES,
            kind=kind,
            payload=original.wid,
            created=self.sim.now,
        )
        self.net.send(control)

    def _resolve_control(self, control: Worm) -> None:
        wait = self._control_waits.pop(control.payload, None)
        if wait is not None:
            wait.succeed(control.kind)

    # -- helpers -----------------------------------------------------------------------
    def _class_of(self, worm: Worm) -> bool:
        """Buffer class selector: False = class 1, True = class 2."""
        return bool(worm.wrapped)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<HostAdapter h{self.host}>"
