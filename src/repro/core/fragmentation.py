"""Large-message fragmentation (Section 4).

'In some applications, the size of the multicast message may exceed the
buffer size on the host adapter ... This may force the originating host to
split the message in smaller fragments.'  :func:`multicast_fragmented`
implements that split: the message is carved into worms no larger than the
adapter budget (and never larger than the Myrinet 9 KB worm limit), sent
in order, and tracked as one :class:`FragmentedMessage`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, List, Optional

from repro.net.worm import MAX_WORM_BYTES

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.adapters import MulticastEngine, MulticastMessage


@dataclass
class FragmentedMessage:
    """A large multicast split into worm-sized fragments."""

    gid: int
    origin: int
    total_bytes: int
    fragment_bytes: int
    fragments: List["MulticastMessage"] = field(default_factory=list)

    @property
    def complete(self) -> bool:
        """Every fragment delivered to every member."""
        return bool(self.fragments) and all(f.complete for f in self.fragments)

    @property
    def fragment_count(self) -> int:
        return len(self.fragments)

    def completion_latency(self) -> float:
        """First-injection to last-delivery across all fragments."""
        if not self.complete:
            raise RuntimeError("fragmented message not complete")
        start = min(f.created for f in self.fragments)
        end = max(f.completed_at for f in self.fragments)
        return end - start

    def in_order_at(self, host: int) -> bool:
        """True when ``host`` received the fragments in send order."""
        times = []
        for fragment in self.fragments:
            when = fragment.deliveries.get(host)
            if when is None:
                return False
            times.append(when)
        return times == sorted(times)


def fragment_sizes(total_bytes: int, fragment_bytes: int) -> List[int]:
    """Split ``total_bytes`` into chunks of at most ``fragment_bytes``."""
    if total_bytes <= 0:
        raise ValueError("total_bytes must be positive")
    if fragment_bytes <= 0:
        raise ValueError("fragment_bytes must be positive")
    count = math.ceil(total_bytes / fragment_bytes)
    sizes = [fragment_bytes] * (count - 1)
    sizes.append(total_bytes - fragment_bytes * (count - 1))
    return sizes


def multicast_fragmented(
    engine: "MulticastEngine",
    origin: int,
    gid: int,
    total_bytes: int,
    fragment_bytes: Optional[int] = None,
    payload: object = None,
) -> FragmentedMessage:
    """Send a message of arbitrary size by splitting it into worms.

    ``fragment_bytes`` defaults to the adapter buffer budget when finite
    (otherwise the Myrinet worm limit).  Fragments are injected
    back-to-back; the injection channel and the group structure keep them
    in order on every path, so members reassemble by arrival order.
    """
    if fragment_bytes is None:
        budget = engine.config.buffer_bytes
        fragment_bytes = (
            int(min(budget, MAX_WORM_BYTES))
            if math.isfinite(budget)
            else MAX_WORM_BYTES
        )
    fragment_bytes = min(fragment_bytes, MAX_WORM_BYTES)
    record = FragmentedMessage(
        gid=gid,
        origin=origin,
        total_bytes=total_bytes,
        fragment_bytes=fragment_bytes,
    )
    for size in fragment_sizes(total_bytes, fragment_bytes):
        record.fragments.append(
            engine.multicast(origin=origin, gid=gid, length=size, payload=payload)
        )
    return record
