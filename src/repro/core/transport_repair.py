"""Transport-level reliable multicast: the [FJM+95] request/repair scheme.

Sections 1 and 9 discuss the alternative to network-level reliability:
relax reliability in the network (worms may be dropped, e.g. by deadlock
resolution) and repair at the transport level.  The paper's own sketch --
members arranged in a chain with the source at one end -- is implemented
here:

* the source numbers its messages; every member forwards each worm to its
  chain successor (an unreliable Hamiltonian-style relay);
* a drop in the middle of the chain leaves every downstream member with a
  sequence *gap*;
* 'the gap in the sequence alerts some hosts of the loss ... one of these
  hosts will time out first and send a retransmission request up the
  chain.  The first host which gets the request and which received the
  original message will rebroadcast it downstream.'
* request timers are randomized and scale with chain position, so the host
  nearest the loss usually times out first and duplicate requests are
  suppressed ([FJM+95]'s slotting/damping, in chain form);
* a periodic heartbeat carrying the highest sequence number lets members
  detect losses at the tail of the stream.

This gives the cost-effectiveness comparison the conclusion asks for:
network-level reliability (circuit confirmation, Section 5) pays on every
message; transport repair pays only on loss, at the price of gap-detection
latency.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from repro.net.worm import Worm, WormKind
from repro.net.wormnet import WormholeNetwork
from repro.sim.engine import Simulator
from repro.sim.rng import RandomStreams

_session_ids = itertools.count(1)

#: Payload markers for the transport control worms.
_DATA = "data"
_REQUEST = "request"
_HEARTBEAT = "heartbeat"


@dataclass
class RepairConfig:
    """Knobs of the request/repair transport.

    ``request_timeout`` is the base gap-detection timer; each member adds
    ``timeout_step`` per chain position plus random jitter, so requests
    near the loss fire first and duplicates downstream are damped.

    ``backoff_factor`` multiplies the timer on every unanswered round
    (capped at ``max_timeout``), so a repair that is itself being lost does
    not flood the chain with requests.  ``damping_interval`` suppresses a
    host re-sending (or re-forwarding) a request for the same sequence
    within the window, and a holder rebroadcasting the same repair within
    it -- [FJM+95]'s duplicate suppression in chain form; 0 disables.
    """

    request_timeout: float = 4_000.0
    timeout_step: float = 500.0
    jitter: float = 500.0
    backoff_factor: float = 1.5
    max_timeout: float = 120_000.0
    damping_interval: float = 2_000.0
    heartbeat_period: float = 20_000.0
    control_bytes: int = 16
    max_rounds: int = 50


@dataclass
class _MemberState:
    host: int
    position: int
    received: Dict[int, float] = field(default_factory=dict)
    pending_request: Set[int] = field(default_factory=set)


class RepairSession:
    """One source streaming sequence-numbered multicasts down a chain.

    Members are ordered by host id; the source is the lowest-id member
    (the paper's 'source is at one end of the chain').
    """

    def __init__(
        self,
        sim: Simulator,
        net: WormholeNetwork,
        members: List[int],
        config: Optional[RepairConfig] = None,
        seed: int = 17,
        sid: Optional[int] = None,
    ) -> None:
        if len(members) < 2:
            raise ValueError("a repair session needs at least two members")
        self.sim = sim
        self.net = net
        self.config = config or RepairConfig()
        self.members = sorted(members)
        self.source = self.members[0]
        # The session id names the RNG substream; the process-global default
        # breaks byte-reproducibility across runs in one process, so
        # reproducible experiments pass an explicit sid.
        self.sid = next(_session_ids) if sid is None else sid
        self._position = {h: i for i, h in enumerate(self.members)}
        self._states = {
            h: _MemberState(h, self._position[h]) for h in self.members
        }
        self._rng = RandomStreams(seed).stream(f"repair{self.sid}")
        self._next_seq = itertools.count(0)
        self.highest_sent = -1
        self._sent_at: Dict[int, float] = {}
        self._lengths: Dict[int, int] = {}
        # Statistics.
        self.requests_sent = 0
        self.repairs_sent = 0
        self.duplicates = 0
        self.requests_damped = 0
        self.repairs_damped = 0
        self.heartbeats_sent = 0
        self.data_bytes_sent = 0
        self.repair_bytes_sent = 0
        self.control_bytes_sent = 0
        #: (host, seq) -> time of that host's last outgoing request /
        #: last repair rebroadcast (the damping windows).
        self._last_request: Dict[tuple, float] = {}
        self._last_repair: Dict[tuple, float] = {}
        self._hb_wake = None
        for host in self.members:
            net.set_receiver(host, self._on_worm)
        sim.process(self._heartbeat_loop(), name=f"repair-hb-{self.sid}")

    # -- public API -------------------------------------------------------------
    def send(self, length: int = 400) -> int:
        """Source-originated multicast; returns its sequence number."""
        seq = next(self._next_seq)
        self.highest_sent = seq
        if self._hb_wake is not None and not self._hb_wake.triggered:
            self._hb_wake.succeed()
        self._sent_at[seq] = self.sim.now
        self._lengths[seq] = length
        self._states[self.source].received[seq] = self.sim.now
        self._forward(self.source, seq, length)
        return seq

    def delivery_time(self, seq: int, host: int) -> Optional[float]:
        return self._states[host].received.get(seq)

    def complete(self, seq: int) -> bool:
        return all(seq in s.received for s in self._states.values())

    def all_complete(self) -> bool:
        return all(self.complete(seq) for seq in range(self.highest_sent + 1))

    def latency(self, seq: int) -> float:
        """Source-send to last-member delivery."""
        if not self.complete(seq):
            raise RuntimeError(f"seq {seq} not fully delivered")
        last = max(s.received[seq] for s in self._states.values())
        return last - self._sent_at[seq]

    def repair_overhead_ratio(self) -> float:
        """Bytes spent on repair (requests + heartbeats + rebroadcasts)
        per byte of original data -- the 'pay only on loss' cost the
        paper's conclusion weighs against circuit confirmation."""
        overhead = self.control_bytes_sent + self.repair_bytes_sent
        return overhead / self.data_bytes_sent if self.data_bytes_sent else 0.0

    def overhead(self) -> Dict[str, float]:
        """Repair-traffic accounting since the session started."""
        return {
            "requests_sent": self.requests_sent,
            "requests_damped": self.requests_damped,
            "repairs_sent": self.repairs_sent,
            "repairs_damped": self.repairs_damped,
            "heartbeats_sent": self.heartbeats_sent,
            "duplicates": self.duplicates,
            "data_bytes": self.data_bytes_sent,
            "repair_bytes": self.repair_bytes_sent,
            "control_bytes": self.control_bytes_sent,
            "overhead_ratio": self.repair_overhead_ratio(),
        }

    # -- chain relay ---------------------------------------------------------------
    def _successor(self, host: int) -> Optional[int]:
        index = self._position[host] + 1
        return self.members[index] if index < len(self.members) else None

    def _predecessor(self, host: int) -> Optional[int]:
        index = self._position[host] - 1
        return self.members[index] if index >= 0 else None

    def _forward(self, host: int, seq: int, length: int, is_repair: bool = False) -> None:
        nxt = self._successor(host)
        if nxt is None:
            return
        if is_repair:
            self.repair_bytes_sent += length
        else:
            self.data_bytes_sent += length
        worm = Worm(
            source=host,
            dest=nxt,
            length=length,
            kind=WormKind.MULTICAST,
            group=self.sid,
            seqno=seq,
            created=self.sim.now,
            payload=(_DATA, seq),
        )
        self.net.send(worm)

    # -- reception -------------------------------------------------------------------
    def _on_worm(self, worm: Worm, transfer) -> None:
        kind, *rest = worm.payload if isinstance(worm.payload, tuple) else (None,)
        host = worm.dest
        if kind == _DATA:
            self._on_data(host, rest[0], worm.length)
        elif kind == _REQUEST:
            self._on_request(host, rest[0])
        elif kind == _HEARTBEAT:
            self._check_gaps(host, rest[0])

    def _on_data(self, host: int, seq: int, length: int) -> None:
        state = self._states[host]
        if seq in state.received:
            self.duplicates += 1
            return
        state.received[seq] = self.sim.now
        state.pending_request.discard(seq)
        self._lengths.setdefault(seq, length)
        self._forward(host, seq, length)
        self._check_gaps(host, seq)

    # -- gap detection and repair --------------------------------------------------
    def _check_gaps(self, host: int, seen_up_to: int) -> None:
        """Receiving seq n (or a heartbeat advertising n) flags every
        missing sequence below n."""
        state = self._states[host]
        for seq in range(seen_up_to):
            if seq not in state.received and seq not in state.pending_request:
                state.pending_request.add(seq)
                self.sim.process(
                    self._request_loop(host, seq),
                    name=f"repair-req-h{host}-s{seq}",
                )

    def _request_loop(self, host: int, seq: int):
        """Randomized, position-scaled timer with exponential backoff; on
        expiry send a request up the chain; repeat until the repair
        arrives."""
        config = self.config
        state = self._states[host]
        rounds = 0
        base = config.request_timeout + config.timeout_step * state.position
        while seq not in state.received:
            delay = min(
                base * config.backoff_factor**rounds, config.max_timeout
            ) + self._rng.uniform(0, config.jitter)
            yield self.sim.timeout(delay)
            if seq in state.received:
                return
            rounds += 1
            if rounds > config.max_rounds:
                raise RuntimeError(
                    f"repair of seq {seq} at host {host} exceeded "
                    f"{config.max_rounds} rounds"
                )
            self._send_request(host, seq)

    def _send_request(self, host: int, seq: int) -> None:
        """Send a retransmission request up the chain, unless this host
        already asked for the same sequence within the damping window
        (concurrent timeouts otherwise multiply requests)."""
        predecessor = self._predecessor(host)
        if predecessor is None:
            return
        config = self.config
        if config.damping_interval > 0:
            last = self._last_request.get((host, seq))
            if last is not None and self.sim.now - last < config.damping_interval:
                self.requests_damped += 1
                return
        self._last_request[(host, seq)] = self.sim.now
        self.requests_sent += 1
        self.control_bytes_sent += config.control_bytes
        self.net.send(
            Worm(
                source=host,
                dest=predecessor,
                length=config.control_bytes,
                kind=WormKind.MULTICAST,
                group=self.sid,
                seqno=seq,
                created=self.sim.now,
                payload=(_REQUEST, seq),
            )
        )

    def _on_request(self, host: int, seq: int) -> None:
        """'The first host which gets the request and which received the
        original message will rebroadcast it downstream'; otherwise the
        request keeps travelling up the chain.

        A holder that just rebroadcast ``seq`` damps further requests for
        it within the damping window: with several downstream members
        timing out concurrently, one repair serves them all.
        """
        state = self._states[host]
        if seq in state.received:
            config = self.config
            if config.damping_interval > 0:
                last = self._last_repair.get((host, seq))
                if (
                    last is not None
                    and self.sim.now - last < config.damping_interval
                ):
                    self.repairs_damped += 1
                    return
            self._last_repair[(host, seq)] = self.sim.now
            self.repairs_sent += 1
            self._forward(host, seq, self._lengths.get(seq, 400), is_repair=True)
            return
        self._send_request(host, seq)

    # -- heartbeats (tail-loss detection) ---------------------------------------------
    def _heartbeat_loop(self):
        config = self.config
        while True:
            if self.highest_sent < 0 or self.all_complete():
                # Quiesce while there is nothing to advertise, so an idle
                # simulation can drain; send() wakes us.
                self._hb_wake = self.sim.event()
                yield self._hb_wake
                self._hb_wake = None
            yield self.sim.timeout(config.heartbeat_period)
            if self.highest_sent < 0 or self.all_complete():
                continue
            advertised = self.highest_sent + 1
            for host in self.members[1:]:
                self.heartbeats_sent += 1
                self.control_bytes_sent += config.control_bytes
                self.net.send(
                    Worm(
                        source=self.source,
                        dest=host,
                        length=config.control_bytes,
                        kind=WormKind.MULTICAST,
                        group=self.sid,
                        created=self.sim.now,
                        payload=(_HEARTBEAT, advertised),
                    )
                )
