"""Transport-level reliable multicast: the [FJM+95] request/repair scheme.

Sections 1 and 9 discuss the alternative to network-level reliability:
relax reliability in the network (worms may be dropped, e.g. by deadlock
resolution) and repair at the transport level.  The paper's own sketch --
members arranged in a chain with the source at one end -- is implemented
here:

* the source numbers its messages; every member forwards each worm to its
  chain successor (an unreliable Hamiltonian-style relay);
* a drop in the middle of the chain leaves every downstream member with a
  sequence *gap*;
* 'the gap in the sequence alerts some hosts of the loss ... one of these
  hosts will time out first and send a retransmission request up the
  chain.  The first host which gets the request and which received the
  original message will rebroadcast it downstream.'
* request timers are randomized and scale with chain position, so the host
  nearest the loss usually times out first and duplicate requests are
  suppressed ([FJM+95]'s slotting/damping, in chain form);
* a periodic heartbeat carrying the highest sequence number lets members
  detect losses at the tail of the stream.

This gives the cost-effectiveness comparison the conclusion asks for:
network-level reliability (circuit confirmation, Section 5) pays on every
message; transport repair pays only on loss, at the price of gap-detection
latency.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from repro.net.worm import Worm, WormKind
from repro.net.wormnet import WormholeNetwork
from repro.sim.engine import Simulator
from repro.sim.rng import RandomStreams

_session_ids = itertools.count(1)

#: Payload markers for the transport control worms.
_DATA = "data"
_REQUEST = "request"
_HEARTBEAT = "heartbeat"


@dataclass
class RepairConfig:
    """Knobs of the request/repair transport.

    ``request_timeout`` is the base gap-detection timer; each member adds
    ``timeout_step`` per chain position plus random jitter, so requests
    near the loss fire first and duplicates downstream are damped.
    """

    request_timeout: float = 4_000.0
    timeout_step: float = 500.0
    jitter: float = 500.0
    heartbeat_period: float = 20_000.0
    control_bytes: int = 16
    max_rounds: int = 50


@dataclass
class _MemberState:
    host: int
    position: int
    received: Dict[int, float] = field(default_factory=dict)
    pending_request: Set[int] = field(default_factory=set)


class RepairSession:
    """One source streaming sequence-numbered multicasts down a chain.

    Members are ordered by host id; the source is the lowest-id member
    (the paper's 'source is at one end of the chain').
    """

    def __init__(
        self,
        sim: Simulator,
        net: WormholeNetwork,
        members: List[int],
        config: Optional[RepairConfig] = None,
        seed: int = 17,
    ) -> None:
        if len(members) < 2:
            raise ValueError("a repair session needs at least two members")
        self.sim = sim
        self.net = net
        self.config = config or RepairConfig()
        self.members = sorted(members)
        self.source = self.members[0]
        self.sid = next(_session_ids)
        self._position = {h: i for i, h in enumerate(self.members)}
        self._states = {
            h: _MemberState(h, self._position[h]) for h in self.members
        }
        self._rng = RandomStreams(seed).stream(f"repair{self.sid}")
        self._next_seq = itertools.count(0)
        self.highest_sent = -1
        self._sent_at: Dict[int, float] = {}
        self._lengths: Dict[int, int] = {}
        # Statistics.
        self.requests_sent = 0
        self.repairs_sent = 0
        self.duplicates = 0
        self._hb_wake = None
        for host in self.members:
            net.set_receiver(host, self._on_worm)
        sim.process(self._heartbeat_loop(), name=f"repair-hb-{self.sid}")

    # -- public API -------------------------------------------------------------
    def send(self, length: int = 400) -> int:
        """Source-originated multicast; returns its sequence number."""
        seq = next(self._next_seq)
        self.highest_sent = seq
        if self._hb_wake is not None and not self._hb_wake.triggered:
            self._hb_wake.succeed()
        self._sent_at[seq] = self.sim.now
        self._lengths[seq] = length
        self._states[self.source].received[seq] = self.sim.now
        self._forward(self.source, seq, length)
        return seq

    def delivery_time(self, seq: int, host: int) -> Optional[float]:
        return self._states[host].received.get(seq)

    def complete(self, seq: int) -> bool:
        return all(seq in s.received for s in self._states.values())

    def all_complete(self) -> bool:
        return all(self.complete(seq) for seq in range(self.highest_sent + 1))

    def latency(self, seq: int) -> float:
        """Source-send to last-member delivery."""
        if not self.complete(seq):
            raise RuntimeError(f"seq {seq} not fully delivered")
        last = max(s.received[seq] for s in self._states.values())
        return last - self._sent_at[seq]

    # -- chain relay ---------------------------------------------------------------
    def _successor(self, host: int) -> Optional[int]:
        index = self._position[host] + 1
        return self.members[index] if index < len(self.members) else None

    def _predecessor(self, host: int) -> Optional[int]:
        index = self._position[host] - 1
        return self.members[index] if index >= 0 else None

    def _forward(self, host: int, seq: int, length: int) -> None:
        nxt = self._successor(host)
        if nxt is None:
            return
        worm = Worm(
            source=host,
            dest=nxt,
            length=length,
            kind=WormKind.MULTICAST,
            group=self.sid,
            seqno=seq,
            created=self.sim.now,
            payload=(_DATA, seq),
        )
        self.net.send(worm)

    # -- reception -------------------------------------------------------------------
    def _on_worm(self, worm: Worm, transfer) -> None:
        kind, *rest = worm.payload if isinstance(worm.payload, tuple) else (None,)
        host = worm.dest
        if kind == _DATA:
            self._on_data(host, rest[0], worm.length)
        elif kind == _REQUEST:
            self._on_request(host, rest[0])
        elif kind == _HEARTBEAT:
            self._check_gaps(host, rest[0])

    def _on_data(self, host: int, seq: int, length: int) -> None:
        state = self._states[host]
        if seq in state.received:
            self.duplicates += 1
            return
        state.received[seq] = self.sim.now
        state.pending_request.discard(seq)
        self._lengths.setdefault(seq, length)
        self._forward(host, seq, length)
        self._check_gaps(host, seq)

    # -- gap detection and repair --------------------------------------------------
    def _check_gaps(self, host: int, seen_up_to: int) -> None:
        """Receiving seq n (or a heartbeat advertising n) flags every
        missing sequence below n."""
        state = self._states[host]
        for seq in range(seen_up_to):
            if seq not in state.received and seq not in state.pending_request:
                state.pending_request.add(seq)
                self.sim.process(
                    self._request_loop(host, seq),
                    name=f"repair-req-h{host}-s{seq}",
                )

    def _request_loop(self, host: int, seq: int):
        """Randomized, position-scaled timer; on expiry send a request up
        the chain; repeat until the repair arrives."""
        config = self.config
        state = self._states[host]
        rounds = 0
        while seq not in state.received:
            delay = (
                config.request_timeout
                + config.timeout_step * state.position
                + self._rng.uniform(0, config.jitter)
            )
            yield self.sim.timeout(delay)
            if seq in state.received:
                return
            rounds += 1
            if rounds > config.max_rounds:
                raise RuntimeError(
                    f"repair of seq {seq} at host {host} exceeded "
                    f"{config.max_rounds} rounds"
                )
            predecessor = self._predecessor(host)
            if predecessor is None:
                continue
            self.requests_sent += 1
            self.net.send(
                Worm(
                    source=host,
                    dest=predecessor,
                    length=config.control_bytes,
                    kind=WormKind.MULTICAST,
                    group=self.sid,
                    seqno=seq,
                    created=self.sim.now,
                    payload=(_REQUEST, seq),
                )
            )

    def _on_request(self, host: int, seq: int) -> None:
        """'The first host which gets the request and which received the
        original message will rebroadcast it downstream'; otherwise the
        request keeps travelling up the chain."""
        state = self._states[host]
        if seq in state.received:
            self.repairs_sent += 1
            self._forward(host, seq, self._lengths.get(seq, 400))
            return
        predecessor = self._predecessor(host)
        if predecessor is not None:
            self.net.send(
                Worm(
                    source=host,
                    dest=predecessor,
                    length=self.config.control_bytes,
                    kind=WormKind.MULTICAST,
                    group=self.sid,
                    seqno=seq,
                    created=self.sim.now,
                    payload=(_REQUEST, seq),
                )
            )

    # -- heartbeats (tail-loss detection) ---------------------------------------------
    def _heartbeat_loop(self):
        config = self.config
        while True:
            if self.highest_sent < 0 or self.all_complete():
                # Quiesce while there is nothing to advertise, so an idle
                # simulation can drain; send() wakes us.
                self._hb_wake = self.sim.event()
                yield self._hb_wake
                self._hb_wake = None
            yield self.sim.timeout(config.heartbeat_period)
            if self.highest_sent < 0 or self.all_complete():
                continue
            advertised = self.highest_sent + 1
            for host in self.members[1:]:
                self.net.send(
                    Worm(
                        source=self.source,
                        dest=host,
                        length=config.control_bytes,
                        kind=WormKind.MULTICAST,
                        group=self.sid,
                        created=self.sim.now,
                        payload=(_HEARTBEAT, advertised),
                    )
                )
