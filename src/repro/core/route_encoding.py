"""Multicast source-route encoding (Section 3, Figure 2).

Unicast source routes in Myrinet are flat lists of output-port bytes.  For
switch-level multicasting the route is a *tree* of port numbers, linearized
depth-first into the worm header:

* at each switch the header holds a list of branches, terminated by an
  end-of-route marker;
* each branch is ``[port, pointer, subtree-bytes...]`` -- the pointer is the
  byte count from just after the pointer to the next port number (i.e. the
  length of the subtree segment);
* the subtree segment is the complete encoding of the branch's next switch
  (itself end-marker-terminated); a leaf branch (next hop is a host) has an
  empty segment and pointer 0.

The switch processes the header exactly as the paper describes: read port
and pointer, copy the pointed-to bytes out of that port (appending an
end-of-route marker when the segment is empty), repeat until the end
marker, then replicate the worm body to all those ports.

Note on Figure 2: the figure renders pointers symbolically as ``P`` and
elides zero pointers; this module uses the normative algorithm from the
text, so leaf branches carry an explicit 0 pointer byte (required for
unambiguous decoding).  The depth-first port order of the figure's example
(1, 2, 5, 3, 4, 1, 7) is preserved exactly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

#: End-of-route marker byte.  Port numbers must stay below this value.
END_MARKER = 0xFF

#: Maximum encodable subtree segment, limited by the one-byte pointer.
_MAX_SEGMENT = 0xFE


class RouteEncodingError(ValueError):
    """Malformed multicast route header."""


@dataclass
class RouteTree:
    """Routing instructions at one switch: ordered (port, subtree) branches.

    A ``None`` subtree means the port leads directly to a destination host.
    """

    branches: List[Tuple[int, Optional["RouteTree"]]] = field(default_factory=list)

    def add(self, port: int, subtree: Optional["RouteTree"] = None) -> "RouteTree":
        """Append a branch; returns the subtree (created if needed) for
        chaining."""
        if subtree is None and port in [p for p, s in self.branches]:
            raise RouteEncodingError(f"duplicate port {port} at switch")
        self.branches.append((port, subtree))
        return subtree if subtree is not None else self

    @property
    def ports(self) -> List[int]:
        return [port for port, _ in self.branches]

    def depth_first_ports(self) -> List[int]:
        """All port numbers in depth-first (header) order."""
        order: List[int] = []
        for port, subtree in self.branches:
            order.append(port)
            if subtree is not None:
                order.extend(subtree.depth_first_ports())
        return order

    def leaf_count(self) -> int:
        """Number of host-facing exits of the tree."""
        total = 0
        for _, subtree in self.branches:
            total += 1 if subtree is None else subtree.leaf_count()
        return total

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, RouteTree):
            return NotImplemented
        return self.branches == other.branches


def encode_multicast_route(tree: RouteTree) -> bytes:
    """Linearize a route tree into the worm-header byte layout."""
    return bytes(_encode(tree))


def _encode(tree: RouteTree) -> List[int]:
    out: List[int] = []
    if not tree.branches:
        raise RouteEncodingError("a route tree node needs at least one branch")
    for port, subtree in tree.branches:
        if not 0 <= port < END_MARKER:
            raise RouteEncodingError(f"port {port} outside the encodable range")
        segment = _encode(subtree) if subtree is not None else []
        if len(segment) > _MAX_SEGMENT:
            raise RouteEncodingError(
                f"subtree segment of {len(segment)} bytes exceeds the "
                f"one-byte pointer limit ({_MAX_SEGMENT})"
            )
        out.append(port)
        out.append(len(segment))
        out.extend(segment)
    out.append(END_MARKER)
    return out


def decode_multicast_route(data: bytes) -> RouteTree:
    """Parse a worm header back into a route tree (inverse of encode)."""
    tree, consumed = _decode(data, 0)
    if consumed != len(data):
        raise RouteEncodingError(
            f"{len(data) - consumed} trailing bytes after the end marker"
        )
    return tree


def _decode(data: bytes, offset: int) -> Tuple[RouteTree, int]:
    tree = RouteTree()
    index = offset
    while True:
        if index >= len(data):
            raise RouteEncodingError("header ended without an end marker")
        byte = data[index]
        index += 1
        if byte == END_MARKER:
            if not tree.branches:
                raise RouteEncodingError("empty branch list at a switch")
            return tree, index
        port = byte
        if index >= len(data):
            raise RouteEncodingError(f"port {port} missing its pointer byte")
        pointer = data[index]
        index += 1
        if pointer == 0:
            tree.branches.append((port, None))
            continue
        segment = data[index : index + pointer]
        if len(segment) < pointer:
            raise RouteEncodingError(
                f"pointer {pointer} runs past the end of the header"
            )
        subtree, consumed = _decode(data, index)
        if consumed - index != pointer:
            raise RouteEncodingError(
                f"subtree consumed {consumed - index} bytes, pointer said {pointer}"
            )
        index = consumed
        tree.branches.append((port, subtree))


def switch_process_header(data: bytes) -> List[Tuple[int, bytes]]:
    """One switch's processing of a multicast header (the paper's algorithm).

    Returns the (output port, stamped header) pairs: read port and pointer,
    copy the pointed-to bytes to that port -- appending an end-of-route
    marker for empty (leaf) segments -- until the end marker is read.
    """
    outputs: List[Tuple[int, bytes]] = []
    index = 0
    while True:
        if index >= len(data):
            raise RouteEncodingError("header ended without an end marker")
        byte = data[index]
        index += 1
        if byte == END_MARKER:
            return outputs
        port = byte
        pointer = data[index]
        index += 1
        segment = bytes(data[index : index + pointer])
        if len(segment) < pointer:
            raise RouteEncodingError("pointer runs past the end of the header")
        index += pointer
        if not segment:
            segment = bytes([END_MARKER])
        outputs.append((port, segment))


def route_tree_from_paths(paths: List[List[int]]) -> RouteTree:
    """Build a route tree from per-destination port paths.

    Each path is the list of output-port numbers a unicast worm to that
    destination would take.  Shared prefixes merge into shared branches;
    branch order follows first appearance (depth-first stamping order).
    """
    if not paths:
        raise RouteEncodingError("no destination paths given")
    root = RouteTree()
    for path in paths:
        if not path:
            raise RouteEncodingError("a destination path cannot be empty")
        node = root
        for depth, port in enumerate(path):
            last = depth == len(path) - 1
            match = None
            for i, (p, subtree) in enumerate(node.branches):
                if p == port:
                    match = i
                    break
            if match is None:
                subtree = None if last else RouteTree()
                node.branches.append((port, subtree))
                node = subtree
            else:
                port_, subtree = node.branches[match]
                if last:
                    if subtree is not None:
                        raise RouteEncodingError(
                            "a destination lies on another destination's path"
                        )
                    # duplicate destination: idempotent
                    node = subtree
                else:
                    if subtree is None:
                        raise RouteEncodingError(
                            "a destination lies on another destination's path"
                        )
                    node = subtree
    return root
