"""Two-buffer-class deadlock prevention (Section 4, Figures 6 and 7).

Each host adapter divides its multicast buffering into two classes: a worm
uses class 1 before the host-ID reversal of its journey and class 2 after
(Hamiltonian), or class 1 while climbing and class 2 while descending
(broadcast-on-tree).  Because every buffer request then points either to a
higher host ID or to a higher buffer class, requests cannot cycle and
buffer deadlock is impossible.

Each class is optionally extended by the host DMA buffer ([VLB96]'s
overflow trick, discussed at the end of Section 4): a claim that does not
fit the adapter SRAM class pool may spill into the shared DMA extension.
"""

from __future__ import annotations

import math
from typing import Optional

from repro.sim.engine import Simulator
from repro.sim.resources import Container, ContainerGet


class BufferDeadlockError(RuntimeError):
    """Raised by the deadlock detector when buffer waits form a cycle."""


class _ClassPool:
    """One buffer class, with optional spill into a shared DMA extension."""

    def __init__(
        self, sim: Simulator, capacity: float, dma: Optional[Container]
    ) -> None:
        self.sram = Container(sim, capacity) if math.isfinite(capacity) else None
        self.dma = dma

    def try_claim(self, amount: float) -> Optional["BufferClaim"]:
        """Non-blocking claim; None when neither pool can hold the worm."""
        if self.sram is None:
            return BufferClaim(self, amount, spilled=0.0)
        if self.sram.try_get(amount):
            return BufferClaim(self, amount, spilled=0.0)
        if self.dma is not None and self.dma.try_get(amount):
            return BufferClaim(self, amount, spilled=amount)
        return None

    def claim_blocking(self, amount: float) -> ContainerGet:
        """Blocking claim on the SRAM pool (the 'wait' acceptance policy)."""
        if self.sram is None:
            raise RuntimeError("blocking claim on an unbounded pool is meaningless")
        return self.sram.get(amount)

    def release(self, claim: "BufferClaim") -> None:
        if claim.spilled:
            self.dma.put(claim.spilled)
        elif self.sram is not None:
            self.sram.put(claim.amount)

    @property
    def free(self) -> float:
        if self.sram is None:
            return math.inf
        level = self.sram.level
        if self.dma is not None:
            level += self.dma.level
        return level


class BufferClaim:
    """A granted buffer reservation; release exactly once."""

    __slots__ = ("pool", "amount", "spilled", "_released")

    def __init__(self, pool: _ClassPool, amount: float, spilled: float) -> None:
        self.pool = pool
        self.amount = amount
        self.spilled = spilled
        self._released = False

    def release(self) -> None:
        if self._released:
            raise RuntimeError("buffer claim released twice")
        self._released = True
        self.pool.release(self)


class BufferClasses:
    """A host adapter's multicast buffer pools.

    Parameters
    ----------
    sim:
        The simulation kernel.
    class_bytes:
        Capacity of *each* class in bytes (``inf`` models the paper's
        simulation runs, which do not exhaust adapter buffering).  The
        Myrinet adapter has about 25 KB total, so roughly one worm per
        class with the DMA extension making up the rest.
    dma_extension_bytes:
        Size of the shared host-DMA overflow pool (0 disables it).
    use_classes:
        When False, both classes share a single pool of ``class_bytes`` --
        the deadlock-prone configuration demonstrated in Figure 6 and
        quantified in the buffer-class ablation.
    """

    def __init__(
        self,
        sim: Simulator,
        class_bytes: float = math.inf,
        dma_extension_bytes: float = 0.0,
        use_classes: bool = True,
    ) -> None:
        if class_bytes <= 0:
            raise ValueError("class capacity must be positive")
        self.sim = sim
        self.use_classes = use_classes
        self.dma = (
            Container(sim, dma_extension_bytes) if dma_extension_bytes > 0 else None
        )
        first = _ClassPool(sim, class_bytes, self.dma)
        self._pools = (first, _ClassPool(sim, class_bytes, self.dma) if use_classes else first)

    def pool(self, wrapped: bool) -> _ClassPool:
        """Class 1 (pre-reversal) or class 2 (post-reversal) pool."""
        return self._pools[1 if wrapped else 0]

    def try_claim(self, length: float, wrapped: bool) -> Optional[BufferClaim]:
        """Implicit-reservation admission test (Figure 5's check at B)."""
        return self.pool(wrapped).try_claim(length)

    def claim_blocking(self, length: float, wrapped: bool) -> ContainerGet:
        return self.pool(wrapped).claim_blocking(length)

    def release(self, claim: BufferClaim) -> None:
        claim.release()

    def free_bytes(self, wrapped: bool) -> float:
        return self.pool(wrapped).free
