"""Total-ordering verification.

Some distributed applications require *totally ordered* multicast: every
member of a group receives the group's messages in the same order.  The
protocols achieve this by serializing all of a group's messages through a
single host (the lowest-ID member on a Hamiltonian circuit, the root of a
rooted tree), which stamps consecutive sequence numbers.

:class:`OrderingChecker` hooks the engine's delivery observer and verifies,
per group, that (a) sequence numbers are delivered in increasing order at
every host and (b) all hosts saw the same message sequence.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple


class TotalOrderError(AssertionError):
    """Raised when a delivery violates total ordering."""


class OrderingChecker:
    """Collects delivery sequences and verifies total ordering.

    Wire it up with::

        checker = OrderingChecker()
        engine.delivery_observer = checker.observe
    """

    def __init__(self, strict: bool = True) -> None:
        #: (gid, host) -> list of (seqno, mid, time)
        self.sequences: Dict[Tuple[int, int], List[Tuple[Optional[int], int, float]]] = {}
        self.strict = strict
        self.violations: List[str] = []

    def observe(self, host: int, worm, message, when: float) -> None:
        """Engine delivery-observer hook."""
        key = (message.gid, host)
        history = self.sequences.setdefault(key, [])
        if history and worm.seqno is not None:
            last_seq = history[-1][0]
            if last_seq is not None and worm.seqno < last_seq:
                problem = (
                    f"group {message.gid} host {host}: seqno {worm.seqno} "
                    f"delivered after {last_seq} (t={when})"
                )
                self.violations.append(problem)
                if self.strict:
                    raise TotalOrderError(problem)
        history.append((worm.seqno, message.mid, when))

    def delivery_order(self, gid: int, host: int) -> List[int]:
        """Message ids in the order ``host`` received them for ``gid``."""
        return [mid for _, mid, _ in self.sequences.get((gid, host), [])]

    def check_group(self, gid: int) -> None:
        """Verify all hosts of a group saw the same message order.

        Hosts join and leave delivery at the edges of a simulation window,
        so sequences are compared on their common prefix ordering: any two
        hosts' sequences must not order the same pair of messages
        differently.
        """
        orders = {
            host: self.delivery_order(gid, host)
            for (group, host) in self.sequences
            if group == gid
        }
        ranks: Dict[int, Dict[int, int]] = {
            host: {mid: i for i, mid in enumerate(seq)} for host, seq in orders.items()
        }
        hosts = list(orders)
        for i, a in enumerate(hosts):
            for b in hosts[i + 1 :]:
                common = set(ranks[a]) & set(ranks[b])
                common_list = sorted(common, key=lambda m: ranks[a][m])
                for first, second in zip(common_list, common_list[1:]):
                    if ranks[b][first] > ranks[b][second]:
                        raise TotalOrderError(
                            f"group {gid}: hosts {a} and {b} disagree on the "
                            f"order of messages {first} and {second}"
                        )

    def check_all(self) -> None:
        """Verify every observed group."""
        for gid in {g for g, _ in self.sequences}:
            self.check_group(gid)
