"""The [VLB96] centralized-credit multicast baseline.

The paper's main related work (Verstoep, Langendoen, Bal -- 'Efficient
reliable multicast on Myrinet') extends the Illinois Fast Messages credit
scheme: multicast runs on a precomputed binary tree spanning the members,
but before sending, the source must acquire a *cumulative buffer credit*
for all destinations from a centralized credit manager (a designated host
adapter).  Sequenced credits guarantee total ordering; the manager
periodically replenishes the pool with a credit-gathering token that tours
the members.

The paper's critique, which this implementation lets you measure
(``bench_baseline_credit.py``):

* latency is increased by the credit request round trip;
* buffer resources are used inefficiently -- the reservation lives from
  grant to token-gathering, far longer than the actual buffer usage;
* the scheme depends on a single manager (here: queries stall when its
  pool is empty until the token tours).

Integration: create a group with ``Scheme.CREDIT_TREE``; the engine builds
a :class:`CreditController` per group.  Credit requests, grants and the
token all travel as real control worms, so their latency is part of the
simulation.
"""

from __future__ import annotations

import itertools
from collections import deque
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Deque, Dict, Optional, Tuple

from repro.net.worm import CONTROL_WORM_BYTES, Worm, WormKind
from repro.sim.monitor import TallyStat

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.adapters import MulticastEngine, _GroupState

_request_ids = itertools.count(1)


@dataclass
class CreditConfig:
    """Knobs of the centralized credit scheme.

    ``initial_credits`` is the number of multicast messages the pool can
    have outstanding at once (a credit covers buffering at *every*
    member -- the cumulative reservation of [VLB96]).
    """

    initial_credits: int = 4
    token_period: float = 20_000.0
    control_bytes: int = CONTROL_WORM_BYTES


@dataclass
class _PendingRequest:
    origin: int
    request_id: int
    queued_at: float


class CreditController:
    """Per-group credit manager state plus the token process.

    The manager is the group's lowest-ID member (the 'designated host
    adapter card').
    """

    def __init__(
        self,
        engine: "MulticastEngine",
        state: "_GroupState",
        config: Optional[CreditConfig] = None,
    ) -> None:
        self.engine = engine
        self.sim = engine.sim
        self.state = state
        self.config = config or CreditConfig()
        if self.config.initial_credits < 1:
            raise ValueError("the credit pool needs at least one credit")
        self.manager = state.group.lowest
        self.available = self.config.initial_credits
        self._seq = itertools.count(0)
        self._queue: Deque[_PendingRequest] = deque()
        #: request id -> event the origin adapter waits on (value = seqno)
        self._grant_waits: Dict[int, object] = {}
        #: member -> messages whose buffers that member has released
        self.freed: Dict[int, int] = {m: 0 for m in state.group.members}
        self._credited = 0
        self._token_busy = False
        self._idle_wait = None
        # Statistics of the paper's critique.
        self.requests = 0
        self.grants = 0
        self.token_tours = 0
        self.grant_wait = TallyStat("credit grant wait")
        self.reservation_time = TallyStat("credit reservation lifetime")
        self._grant_times: Dict[int, float] = {}
        self.sim.process(self._token_loop(), name=f"credit-token-g{state.gid}")

    # -- origin side -----------------------------------------------------------
    def acquire(self, origin: int):
        """Request one cumulative credit; yields until granted.

        Returns the grant's sequence number (the total-ordering stamp).
        Run inside the origin adapter's process (``yield from``).
        """
        request_id = next(_request_ids)
        wait = self.sim.event()
        self._grant_waits[request_id] = wait
        queued_at = self.sim.now
        self.requests += 1
        if origin == self.manager:
            self._on_request(origin, request_id)
        else:
            self.engine.adapters[origin]._send_credit_control(
                WormKind.CREDIT_REQUEST,
                dest=self.manager,
                gid=self.state.gid,
                payload=(request_id, origin),
                length=self.config.control_bytes,
            )
        seqno = yield wait
        self.grant_wait.add(self.sim.now - queued_at)
        self._grant_times[seqno] = self.sim.now
        return seqno

    # -- manager side ------------------------------------------------------------
    def on_control(self, worm: Worm, at_host: int) -> None:
        """Dispatch an arriving credit control worm."""
        if worm.kind == WormKind.CREDIT_REQUEST:
            request_id, origin = worm.payload
            self._on_request(origin, request_id)
        elif worm.kind == WormKind.CREDIT_GRANT:
            request_id, seqno = worm.payload
            self._deliver_grant(request_id, seqno)
        elif worm.kind == WormKind.TOKEN:
            self._on_token(worm, at_host)

    def _on_request(self, origin: int, request_id: int) -> None:
        self._queue.append(_PendingRequest(origin, request_id, self.sim.now))
        self._serve()

    def _serve(self) -> None:
        while self.available > 0 and self._queue:
            self.available -= 1
            self._wake_token_loop()
            pending = self._queue.popleft()
            seqno = next(self._seq)
            self.grants += 1
            if pending.origin == self.manager:
                self._deliver_grant(pending.request_id, seqno)
            else:
                self.engine.adapters[self.manager]._send_credit_control(
                    WormKind.CREDIT_GRANT,
                    dest=pending.origin,
                    gid=self.state.gid,
                    payload=(pending.request_id, seqno),
                    length=self.config.control_bytes,
                )

    def _deliver_grant(self, request_id: int, seqno: int) -> None:
        wait = self._grant_waits.pop(request_id, None)
        if wait is not None:
            wait.succeed(seqno)

    # -- buffer release accounting ---------------------------------------------------
    def mark_freed(self, member: int, seqno: Optional[int]) -> None:
        """A member released the buffer it held for one credited message."""
        self.freed[member] = self.freed.get(member, 0) + 1

    # -- the credit-gathering token (Section 1's description) -------------------------
    def _wake_token_loop(self) -> None:
        if self._idle_wait is not None and not self._idle_wait.triggered:
            self._idle_wait.succeed()

    def _token_loop(self):
        config = self.config
        while True:
            if self.available == config.initial_credits and not self._queue:
                # The pool is full and nobody is waiting: sleep until a
                # credit is actually consumed, so an idle simulation can
                # quiesce (the real token would keep circulating; it would
                # gather nothing).
                self._idle_wait = self.sim.event()
                yield self._idle_wait
                self._idle_wait = None
            yield self.sim.timeout(config.token_period)
            if self._token_busy:
                continue
            self._token_busy = True
            members = [m for m in self.state.group.members if m != self.manager]
            here = self.manager
            for member in members:
                transfer = self.engine.net.send(
                    Worm(
                        source=here,
                        dest=member,
                        length=config.control_bytes,
                        kind=WormKind.TOKEN,
                        group=self.state.gid,
                        created=self.sim.now,
                    )
                )
                yield transfer.completed
                here = member
            if here != self.manager:
                transfer = self.engine.net.send(
                    Worm(
                        source=here,
                        dest=self.manager,
                        length=config.control_bytes,
                        kind=WormKind.TOKEN,
                        group=self.state.gid,
                        created=self.sim.now,
                    )
                )
                yield transfer.completed
            self._replenish()
            self._token_busy = False
        self._idle_wait = None

    def _on_token(self, worm: Worm, at_host: int) -> None:
        # The token's data (freed counts) is read directly; the worm hops
        # themselves model the gathering latency.
        return

    def _replenish(self) -> None:
        self.token_tours += 1
        fully_freed = min(self.freed.values()) if self.freed else 0
        newly = fully_freed - self._credited
        if newly <= 0:
            return
        self._credited = fully_freed
        self.available += newly
        now = self.sim.now
        # Reservation lifetime: grant -> the tour that recycled the credit.
        for seqno in list(self._grant_times):
            if seqno < fully_freed:
                self.reservation_time.add(now - self._grant_times.pop(seqno))
        self._serve()

    def stats_summary(self) -> Dict[str, float]:
        return {
            "requests": self.requests,
            "grants": self.grants,
            "token_tours": self.token_tours,
            "mean_grant_wait": self.grant_wait.mean,
            "mean_reservation_time": self.reservation_time.mean,
            "credits_available": self.available,
        }
