"""Multicast IP interoperation (Section 8.1).

Multicast IP uses class D addresses (224.0.0.0/4), a 28-bit group space,
only ever as destination addresses.  The Myrinet implementation maps an IP
group to the *low eight bits* of its address; group 255 is reserved for
broadcast, leaving 255 usable Myrinet groups.  Because the mapping is
many-to-one, a Myrinet group must be maintained as the union of all IP
groups sharing the low byte, and receivers filter at the IP layer.
"""

from __future__ import annotations

import ipaddress
from typing import Dict, Iterable, List, Set, Union

from repro.core.groups import BROADCAST_GROUP_ID

IpLike = Union[str, int, ipaddress.IPv4Address]


def _to_address(address: IpLike) -> ipaddress.IPv4Address:
    if isinstance(address, ipaddress.IPv4Address):
        return address
    return ipaddress.IPv4Address(address)


def is_class_d(address: IpLike) -> bool:
    """True for 224.0.0.0 -- 239.255.255.255 (IP multicast)."""
    return _to_address(address).is_multicast


def myrinet_group_of(address: IpLike) -> int:
    """The Myrinet multicast group id for a class D address: its low byte.

    Note this never returns the broadcast id semantics -- an IP group whose
    low byte is 255 still maps to id 255, which the driver treats as
    broadcast; the mapper below tracks this case explicitly.
    """
    addr = _to_address(address)
    if not addr.is_multicast:
        raise ValueError(f"{addr} is not a class D (multicast) address")
    return int(addr) & 0xFF


class IpGroupMapper:
    """Driver-side state: which IP groups are joined, and the Myrinet groups
    their union requires.

    >>> mapper = IpGroupMapper()
    >>> mapper.join("224.0.1.5", host=3)
    5
    >>> mapper.join("239.9.9.5", host=4)   # same low byte: same group
    5
    >>> sorted(mapper.members_of_myrinet_group(5))
    [3, 4]
    """

    def __init__(self) -> None:
        #: myrinet gid -> set of joined IP groups mapping to it
        self._ip_groups: Dict[int, Set[ipaddress.IPv4Address]] = {}
        #: myrinet gid -> host -> set of IP groups that host joined
        self._memberships: Dict[int, Dict[int, Set[ipaddress.IPv4Address]]] = {}

    def join(self, address: IpLike, host: int) -> int:
        """Join ``host`` to an IP group; returns the Myrinet group id whose
        membership must now include the host."""
        addr = _to_address(address)
        gid = myrinet_group_of(addr)
        self._ip_groups.setdefault(gid, set()).add(addr)
        self._memberships.setdefault(gid, {}).setdefault(host, set()).add(addr)
        return gid

    def leave(self, address: IpLike, host: int) -> bool:
        """Leave an IP group; returns True when the host no longer needs the
        underlying Myrinet group at all."""
        addr = _to_address(address)
        gid = myrinet_group_of(addr)
        joined = self._memberships.get(gid, {}).get(host)
        if joined is None or addr not in joined:
            raise KeyError(f"host {host} has not joined {addr}")
        joined.remove(addr)
        if joined:
            return False
        del self._memberships[gid][host]
        if not any(
            addr in ips
            for ips in self._memberships.get(gid, {}).values()
        ):
            self._ip_groups[gid].discard(addr)
        return True

    def members_of_myrinet_group(self, gid: int) -> List[int]:
        """Hosts that must be members of Myrinet group ``gid`` (the union
        over all IP groups sharing the low byte)."""
        return sorted(self._memberships.get(gid, {}))

    def ip_groups_of(self, gid: int) -> List[ipaddress.IPv4Address]:
        return sorted(self._ip_groups.get(gid, set()))

    def accepts(self, host: int, gid: int, address: IpLike) -> bool:
        """Receiver-side IP filtering: a packet for ``address`` delivered on
        Myrinet group ``gid`` is passed up only if the host joined that
        exact IP group (Section 8.1's 'filtered by the receiving IP
        layer')."""
        addr = _to_address(address)
        if myrinet_group_of(addr) != gid:
            return False
        return addr in self._memberships.get(gid, {}).get(host, set())

    @property
    def broadcast_collisions(self) -> List[ipaddress.IPv4Address]:
        """IP groups whose low byte collides with the broadcast id 255;
        these ride the broadcast group and rely entirely on IP filtering."""
        return sorted(self._ip_groups.get(BROADCAST_GROUP_ID, set()))
