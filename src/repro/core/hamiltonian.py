"""Hamiltonian-circuit multicasting (Section 5).

The members of a multicast group are arranged in a directed circuit.  The
paper's deadlock-prevention rule orders hosts by increasing ID, with a
single ID reversal (highest back to lowest) closing the circuit; the
reversal switches the worm to the second buffer class.

The circuit is formed over the *host-connectivity graph*: the complete graph
on the members whose edge weights are the hop counts of the unicast routes
between them (Figure 8's transformation).  Besides the paper's ID order,
nearest-neighbour and 2-opt tour optimizations are provided as extensions
for the circuit-order ablation.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.groups import MulticastGroup
from repro.net.updown import UpDownRouting

EdgeWeights = Dict[Tuple[int, int], int]


def host_connectivity_graph(
    routing: UpDownRouting, hosts: Sequence[int]
) -> EdgeWeights:
    """The complete host graph induced on the network topology.

    Edge weight = hop count of the (fixed, legal) unicast route between the
    two hosts; each edge of this graph corresponds to a simple path in the
    network graph (Figure 8).
    """
    weights: EdgeWeights = {}
    for i, a in enumerate(hosts):
        for b in hosts[i + 1 :]:
            w = routing.hop_count(a, b)
            weights[(a, b)] = w
            weights[(b, a)] = w
    return weights


class HamiltonianCircuit:
    """A directed circuit over a multicast group's members.

    Parameters
    ----------
    group:
        The multicast group.
    order:
        ``"id"`` -- increasing host ID, the paper's deadlock-free order
        (default).  ``"nearest"`` -- nearest-neighbour tour over the host
        connectivity graph.  ``"two_opt"`` -- nearest-neighbour improved by
        2-opt.  The optimized orders need ``routing`` for edge weights and
        are *not* deadlock-safe without extra buffer classes: they may
        reverse host-ID order more than once (quantified in the
        circuit-order ablation).
    routing:
        Route provider for weighted orders.
    """

    def __init__(
        self,
        group: MulticastGroup,
        order: str = "id",
        routing: Optional[UpDownRouting] = None,
    ) -> None:
        self.group = group
        self.order = order
        if order == "id":
            self.sequence: List[int] = list(group.members)
        elif order in ("nearest", "two_opt"):
            if routing is None:
                raise ValueError(f"order {order!r} requires a routing instance")
            weights = host_connectivity_graph(routing, group.members)
            tour = _nearest_neighbour(group.members, weights)
            if order == "two_opt":
                tour = _two_opt(tour, weights)
            # Rotate so the tour starts at the lowest id (canonical form).
            pivot = tour.index(min(tour))
            self.sequence = tour[pivot:] + tour[:pivot]
        else:
            raise ValueError(f"unknown circuit order {order!r}")
        self._position = {host: i for i, host in enumerate(self.sequence)}

    @property
    def gid(self) -> int:
        return self.group.gid

    @property
    def size(self) -> int:
        return len(self.sequence)

    def successor(self, host: int) -> int:
        """The next host on the circuit after ``host``."""
        try:
            index = self._position[host]
        except KeyError:
            raise ValueError(f"host {host} not on circuit of group {self.gid}") from None
        return self.sequence[(index + 1) % self.size]

    def predecessor(self, host: int) -> int:
        try:
            index = self._position[host]
        except KeyError:
            raise ValueError(f"host {host} not on circuit of group {self.gid}") from None
        return self.sequence[(index - 1) % self.size]

    def initial_hop_count(self, include_return: bool = False) -> int:
        """The hop count the originator stamps in the worm header.

        ``size - 1`` stops the worm at the originator's predecessor;
        ``size`` (``include_return``) brings it back to the originator as a
        delivery confirmation (Section 5's two transmission approaches).
        """
        return self.size if include_return else self.size - 1

    def is_reversal(self, host: int, nxt: int) -> bool:
        """True when forwarding host -> nxt crosses the ID reversal.

        On the paper's ID-ordered circuit this happens exactly once, on the
        highest-to-lowest edge; the worm switches to the second buffer
        class there (Section 4).
        """
        return nxt < host

    def reversal_count(self) -> int:
        """Number of decreasing-ID edges on the circuit (1 for ID order)."""
        return sum(
            1
            for i, host in enumerate(self.sequence)
            if self.sequence[(i + 1) % self.size] < host
        )

    def remove_member(self, host: int) -> None:
        """Splice a (dead) host out of the circuit: its predecessor now
        forwards directly to its successor.

        This is the local repair a membership service performs on member
        death; splicing preserves the tour order, so an ID-ordered circuit
        stays ID-ordered (still exactly one reversal) and an optimized tour
        stays a valid tour.  The caller updates the
        :class:`~repro.core.groups.MulticastGroup` separately.
        """
        if host not in self._position:
            raise ValueError(f"host {host} not on circuit of group {self.gid}")
        if self.size <= 2:
            raise ValueError(
                f"circuit of group {self.gid} cannot shrink below two members"
            )
        self.sequence.remove(host)
        self._position = {h: i for i, h in enumerate(self.sequence)}

    def walk_from(self, origin: int, hop_count: Optional[int] = None) -> List[int]:
        """Hosts visited (in order) by a multicast starting at ``origin``."""
        if hop_count is None:
            hop_count = self.initial_hop_count()
        visited = []
        host = origin
        for _ in range(hop_count):
            host = self.successor(host)
            visited.append(host)
        return visited

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<HamiltonianCircuit g{self.gid} {self.sequence}>"


def circuit_hop_length(
    circuit: HamiltonianCircuit, routing: UpDownRouting
) -> int:
    """Total network hop count around the circuit (Figure 8's metric)."""
    total = 0
    for host in circuit.sequence:
        total += routing.hop_count(host, circuit.successor(host))
    return total


def _nearest_neighbour(hosts: Sequence[int], weights: EdgeWeights) -> List[int]:
    """Greedy nearest-neighbour tour starting at the lowest-id host."""
    start = min(hosts)
    tour = [start]
    remaining = set(hosts) - {start}
    while remaining:
        here = tour[-1]
        nxt = min(remaining, key=lambda h: (weights[(here, h)], h))
        tour.append(nxt)
        remaining.remove(nxt)
    return tour


def _two_opt(tour: List[int], weights: EdgeWeights, max_rounds: int = 20) -> List[int]:
    """Classic 2-opt improvement: reverse segments while it shortens the tour."""
    n = len(tour)
    if n < 4:
        return list(tour)
    tour = list(tour)
    for _ in range(max_rounds):
        improved = False
        for i in range(n - 1):
            for j in range(i + 2, n if i > 0 else n - 1):
                a, b = tour[i], tour[(i + 1) % n]
                c, d = tour[j], tour[(j + 1) % n]
                delta = (
                    weights[(a, c)] + weights[(b, d)] - weights[(a, b)] - weights[(c, d)]
                )
                if delta < 0:
                    tour[i + 1 : j + 1] = reversed(tour[i + 1 : j + 1])
                    improved = True
        if not improved:
            break
    return tour
