"""The paper's contribution: deadlock-free reliable multicast protocols.

Host-adapter schemes (Sections 4-6):

* :mod:`~repro.core.groups` -- multicast group tables (8-bit Myrinet ids).
* :mod:`~repro.core.hamiltonian` -- Hamiltonian-circuit multicasting.
* :mod:`~repro.core.tree` -- rooted-tree multicasting (root-start and
  broadcast-on-tree variants).
* :mod:`~repro.core.buffers` -- the two-buffer-class deadlock prevention.
* :mod:`~repro.core.adapters` -- the host-adapter multicast engine
  (store-and-forward / cut-through, implicit ACK/NACK buffer reservation).
* :mod:`~repro.core.ordering` -- total-ordering serializers and checkers.

Switch-fabric schemes (Section 3):

* :mod:`~repro.core.route_encoding` -- the multicast source-route tree
  encoding of Figure 2.
* :mod:`~repro.core.switch_mcast` -- the three switch-level schemes over
  the flit-level substrate.

Interoperation:

* :mod:`~repro.core.ip_mapping` -- multicast IP (class D) to Myrinet group
  mapping (Section 8.1).
"""

from repro.core.groups import BROADCAST_GROUP_ID, GroupTable, MulticastGroup
from repro.core.hamiltonian import (
    HamiltonianCircuit,
    circuit_hop_length,
    host_connectivity_graph,
)
from repro.core.tree import RootedTree, tree_hop_length
from repro.core.buffers import BufferClasses, BufferDeadlockError
from repro.core.adapters import (
    AcceptancePolicy,
    AdapterConfig,
    HostAdapter,
    MulticastEngine,
    MulticastMessage,
    Scheme,
)
from repro.core.ordering import OrderingChecker, TotalOrderError
from repro.core.route_encoding import (
    END_MARKER,
    RouteTree,
    decode_multicast_route,
    encode_multicast_route,
)
from repro.core.ip_mapping import (
    IpGroupMapper,
    is_class_d,
    myrinet_group_of,
)
from repro.core.credit import CreditConfig, CreditController
from repro.core.fragmentation import FragmentedMessage
from repro.core.transport_repair import RepairConfig, RepairSession
from repro.core.switch_mcast import (
    Fig3Outcome,
    SwitchScheme,
    build_switch_multicast_network,
    deadlock_rate,
    run_fig3_scenario,
    sweep_fig3_offsets,
)

__all__ = [
    "AcceptancePolicy",
    "AdapterConfig",
    "BROADCAST_GROUP_ID",
    "Fig3Outcome",
    "SwitchScheme",
    "build_switch_multicast_network",
    "deadlock_rate",
    "run_fig3_scenario",
    "sweep_fig3_offsets",
    "BufferClasses",
    "BufferDeadlockError",
    "CreditConfig",
    "CreditController",
    "FragmentedMessage",
    "RepairConfig",
    "RepairSession",
    "END_MARKER",
    "GroupTable",
    "HamiltonianCircuit",
    "HostAdapter",
    "IpGroupMapper",
    "MulticastEngine",
    "MulticastGroup",
    "MulticastMessage",
    "OrderingChecker",
    "RootedTree",
    "RouteTree",
    "Scheme",
    "TotalOrderError",
    "circuit_hop_length",
    "decode_multicast_route",
    "encode_multicast_route",
    "host_connectivity_graph",
    "is_class_d",
    "myrinet_group_of",
    "tree_hop_length",
]
