"""Loaders, validators and renderers for exported observability files.

Three file kinds flow out of an instrumented run:

* a JSONL trace (``EventTracer.export_jsonl``) — header line + one event
  per line;
* a Chrome trace (``EventTracer.export_chrome``) — ``{"traceEvents":
  [...]}``, loadable in ``chrome://tracing`` / Perfetto;
* a metrics snapshot (``Observability.snapshot`` serialized as JSON).

This module reads all three back, checks the invariants the exporters
promise (monotonic timestamps, matched B/E pairs, strict JSON), and turns
them into the plain-text reports the ``python -m repro.obs`` CLI prints.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional, Tuple

from repro.obs.metrics import metric_label, summarize_entry
from repro.obs.tracer import JSONL_KIND, JSONL_VERSION


# -- loading ----------------------------------------------------------------
def load_jsonl(path) -> Tuple[Dict[str, Any], List[Dict[str, Any]]]:
    """Read an exported JSONL trace; returns ``(header, events)``."""
    with open(path) as fh:
        lines = [line for line in fh if line.strip()]
    if not lines:
        raise ValueError(f"{path}: empty trace file")
    header = json.loads(lines[0])
    if header.get("kind") != JSONL_KIND:
        raise ValueError(
            f"{path}: not a {JSONL_KIND} file (kind={header.get('kind')!r})"
        )
    if header.get("version") != JSONL_VERSION:
        raise ValueError(f"{path}: unsupported version {header.get('version')!r}")
    return header, [json.loads(line) for line in lines[1:]]


def load_chrome(path) -> List[Dict[str, Any]]:
    """Read an exported Chrome trace; returns its event entries."""
    with open(path) as fh:
        data = json.load(fh)
    if not isinstance(data, dict) or "traceEvents" not in data:
        raise ValueError(f"{path}: not a Chrome trace (no traceEvents key)")
    return data["traceEvents"]


def load_metrics(path) -> Dict[str, Any]:
    """Read a serialized metrics/observability snapshot."""
    with open(path) as fh:
        snapshot = json.load(fh)
    if "metrics" not in snapshot:
        raise ValueError(f"{path}: not a metrics snapshot (no metrics key)")
    return snapshot


# -- validation -------------------------------------------------------------
def validate_events(
    events: List[Dict[str, Any]], header: Optional[Dict[str, Any]] = None
) -> List[str]:
    """Invariant check for a list of trace events (JSONL or Chrome form).

    Returns a list of human-readable problems (empty == valid):

    * timestamps are monotonically non-decreasing in recording order;
    * every ``E`` closes an earlier ``B`` of the same span (``key`` in the
      JSONL form, ``tid`` in the Chrome form);
    * phases are limited to B/E/i;
    * the header's event count (when given) matches the body.
    """
    problems: List[str] = []
    if header is not None and header.get("events") != len(events):
        problems.append(
            f"header says {header.get('events')} events, file has {len(events)}"
        )
    last_ts: Optional[float] = None
    open_depth: Dict[Tuple[str, Any], int] = {}
    for index, event in enumerate(events):
        ph = event.get("ph")
        ts = event.get("ts")
        name = event.get("name")
        if ph not in ("B", "E", "i"):
            problems.append(f"event {index}: unknown phase {ph!r}")
            continue
        if not isinstance(ts, (int, float)):
            problems.append(f"event {index}: non-numeric ts {ts!r}")
            continue
        if last_ts is not None and ts < last_ts:
            problems.append(
                f"event {index}: ts {ts} goes backwards (previous {last_ts})"
            )
        last_ts = ts
        span = (name, event.get("key", event.get("tid", 0)))
        if ph == "B":
            open_depth[span] = open_depth.get(span, 0) + 1
        elif ph == "E":
            depth = open_depth.get(span, 0)
            if depth <= 0:
                problems.append(
                    f"event {index}: E without matching B for span {span}"
                )
            else:
                open_depth[span] = depth - 1
    return problems


#: Collector kinds a snapshot may contain, with their required fields.
_METRIC_FIELDS = {
    "counter": ("value",),
    "gauge": ("value",),
    "tally": ("count", "mean", "m2", "min", "max"),
    "histogram": ("low", "high", "bins", "counts"),
    "rate": ("total", "events", "elapsed"),
    "time_weighted": ("integral", "elapsed", "value"),
}


def validate_metrics(snapshot: Dict[str, Any]) -> List[str]:
    """Invariant check for a metrics snapshot (empty list == valid).

    Checks the promises :meth:`MetricsRegistry.snapshot` and
    :func:`merge_snapshots` make: a supported version, entries sorted by
    ``(name, tags)`` identity with no duplicates, known collector types
    carrying their required fields, histogram count vectors sized
    ``bins + 2`` (underflow + bins + overflow), and strict JSON — no NaN
    or infinity anywhere (``json.load`` happily parses both).
    """
    problems: List[str] = []
    from repro.obs.metrics import SNAPSHOT_VERSION

    version = snapshot.get("version")
    if version != SNAPSHOT_VERSION:
        problems.append(f"unsupported snapshot version {version!r}")
    entries = snapshot.get("metrics")
    if not isinstance(entries, list):
        problems.append("'metrics' is not a list")
        return problems

    def bad_float(value: Any) -> bool:
        return isinstance(value, float) and (
            value != value or value in (float("inf"), float("-inf"))
        )

    last_identity = None
    seen = set()
    for index, entry in enumerate(entries):
        if not isinstance(entry, dict):
            problems.append(f"entry {index}: not an object")
            continue
        name, tags, kind = entry.get("name"), entry.get("tags"), entry.get("type")
        if not isinstance(name, str) or not isinstance(tags, dict):
            problems.append(f"entry {index}: missing name/tags")
            continue
        identity = (name, tuple(sorted(tags.items())))
        if identity in seen:
            problems.append(f"entry {index}: duplicate metric {identity}")
        seen.add(identity)
        if last_identity is not None and identity < last_identity:
            problems.append(
                f"entry {index}: out of sorted order ({name}{tags} after "
                f"{last_identity[0]})"
            )
        last_identity = identity
        fields = _METRIC_FIELDS.get(kind)
        if fields is None:
            problems.append(f"entry {index}: unknown type {kind!r}")
            continue
        missing = [f for f in fields if f not in entry]
        if missing:
            problems.append(f"entry {index} ({name}): missing fields {missing}")
            continue
        if kind == "histogram" and len(entry["counts"]) != entry["bins"] + 2:
            problems.append(
                f"entry {index} ({name}): counts has {len(entry['counts'])} "
                f"slots, expected bins+2 = {entry['bins'] + 2}"
            )
        for field_name in fields:
            value = entry.get(field_name)
            values = value if isinstance(value, list) else [value]
            if any(bad_float(v) for v in values):
                problems.append(
                    f"entry {index} ({name}): non-finite {field_name}"
                )
    return problems


# -- reports ----------------------------------------------------------------
def _entries_by_name(snapshot: Dict[str, Any], name: str) -> List[Dict[str, Any]]:
    return [e for e in snapshot.get("metrics", []) if e["name"] == name]


def gauge_names(snapshot: Dict[str, Any]) -> List[str]:
    """Distinct gauge metric names present in a snapshot."""
    return sorted(
        {e["name"] for e in snapshot.get("metrics", []) if e["type"] == "gauge"}
    )


def hot_channels(
    snapshot: Dict[str, Any], name: str = "link.flits", top: int = 10
) -> List[Tuple[str, float]]:
    """Top-``top`` gauge entries of metric ``name``, hottest first.

    Works on any per-channel/per-link gauge family: ``link.flits`` (flit
    engines), ``channel.utilization`` (worm-level network),
    ``myrinet.host_throughput_mbps`` (testbed).
    """
    ranked = [
        (metric_label(entry["name"], entry["tags"]), entry["value"])
        for entry in _entries_by_name(snapshot, name)
        if entry["type"] == "gauge" and entry["value"] is not None
    ]
    ranked.sort(key=lambda pair: (-pair[1], pair[0]))
    return ranked[:top]


def histogram_names(snapshot: Dict[str, Any]) -> List[str]:
    """Distinct histogram metric names present in a snapshot."""
    return sorted(
        {e["name"] for e in snapshot.get("metrics", []) if e["type"] == "histogram"}
    )


def render_histogram(entry: Dict[str, Any], width: int = 50) -> str:
    """ASCII bar rendering of one histogram snapshot entry."""
    low, high, bins = entry["low"], entry["high"], entry["bins"]
    counts = entry["counts"]
    total = sum(counts)
    label = metric_label(entry["name"], entry["tags"])
    lines = [f"{label}  (n={total}, range [{low:g}, {high:g}))"]
    if total == 0:
        lines.append("  (empty)")
        return "\n".join(lines)
    bin_width = (high - low) / bins
    peak = max(counts)
    rows = [("< low", counts[0])]
    rows += [
        (f"[{low + i * bin_width:g}, {low + (i + 1) * bin_width:g})", counts[i + 1])
        for i in range(bins)
    ]
    rows.append((">= high", counts[-1]))
    label_width = max(len(r[0]) for r in rows)
    for row_label, count in rows:
        if count == 0:
            continue
        bar = "#" * max(1, round(width * count / peak))
        lines.append(f"  {row_label.rjust(label_width)}  {count:8d}  {bar}")
    return "\n".join(lines)


def render_latency(snapshot: Dict[str, Any], name: str, width: int = 50) -> str:
    """Render every histogram entry registered under ``name``."""
    entries = [
        e for e in _entries_by_name(snapshot, name) if e["type"] == "histogram"
    ]
    if not entries:
        known = ", ".join(histogram_names(snapshot)) or "(none)"
        raise ValueError(f"no histogram {name!r} in snapshot; known: {known}")
    return "\n\n".join(render_histogram(entry, width=width) for entry in entries)


def trace_summary(
    header: Dict[str, Any], events: List[Dict[str, Any]]
) -> Dict[str, Any]:
    """Aggregate an event list: per-name counts and completed-span stats."""
    by_name: Dict[str, Dict[str, int]] = {}
    open_spans: Dict[Tuple[str, Any], List[float]] = {}
    durations: Dict[str, List[float]] = {}
    for event in events:
        name, ph = event["name"], event["ph"]
        by_name.setdefault(name, {"B": 0, "E": 0, "i": 0})[ph] += 1
        span = (name, event.get("key", event.get("tid", 0)))
        if ph == "B":
            open_spans.setdefault(span, []).append(event["ts"])
        elif ph == "E":
            stack = open_spans.get(span)
            if stack:
                durations.setdefault(name, []).append(event["ts"] - stack.pop())
    span_stats = {
        name: {
            "count": len(values),
            "mean": sum(values) / len(values),
            "min": min(values),
            "max": max(values),
        }
        for name, values in sorted(durations.items())
    }
    return {
        "events": len(events),
        "recorded": header.get("recorded", len(events)),
        "dropped": header.get("dropped", 0),
        "first_ts": events[0]["ts"] if events else None,
        "last_ts": events[-1]["ts"] if events else None,
        "by_name": dict(sorted(by_name.items())),
        "spans": span_stats,
    }


def format_trace_summary(summary: Dict[str, Any]) -> str:
    """Human-readable rendering of :func:`trace_summary`."""
    lines = [
        f"events: {summary['events']} retained "
        f"({summary['recorded']} recorded, {summary['dropped']} dropped)",
    ]
    if summary["first_ts"] is not None:
        lines.append(f"time:   [{summary['first_ts']:g}, {summary['last_ts']:g}]")
    lines.append("per-name counts:")
    for name, counts in summary["by_name"].items():
        parts = ", ".join(f"{ph}={n}" for ph, n in counts.items() if n)
        lines.append(f"  {name}: {parts}")
    if summary["spans"]:
        lines.append("completed spans:")
        for name, stats in summary["spans"].items():
            lines.append(
                f"  {name}: n={stats['count']} mean={stats['mean']:.1f} "
                f"min={stats['min']:g} max={stats['max']:g}"
            )
    return "\n".join(lines)


def format_metrics_summary(snapshot: Dict[str, Any], top: int = 20) -> str:
    """Compact table of a metrics snapshot's most informative entries."""
    lines = [f"metrics: {len(snapshot.get('metrics', []))} entries"]
    shown = 0
    for entry in snapshot.get("metrics", []):
        if shown >= top:
            remaining = len(snapshot["metrics"]) - shown
            lines.append(f"  ... and {remaining} more")
            break
        summary = summarize_entry(entry)
        rendered = ", ".join(
            f"{k}={v:.4g}" if isinstance(v, float) else f"{k}={v}"
            for k, v in summary.items()
            if v is not None
        )
        label = metric_label(entry["name"], entry["tags"])
        lines.append(f"  [{entry['type']}] {label}: {rendered or '(empty)'}")
        shown += 1
    kernel = snapshot.get("kernel")
    if kernel:
        lines.append(f"kernel: {kernel.get('events', 0)} events")
    trace = snapshot.get("trace")
    if trace:
        lines.append(
            f"trace:  {trace.get('recorded', 0)} recorded, "
            f"{trace.get('dropped', 0)} dropped"
        )
    phases = snapshot.get("phases")
    if phases:
        total = sum(e.get("seconds", 0.0) for e in phases.values()) or 1.0
        lines.append("phases (engine wall time):")
        for name, entry in sorted(
            phases.items(), key=lambda kv: -kv[1].get("seconds", 0.0)
        ):
            seconds = entry.get("seconds", 0.0)
            lines.append(
                f"  {name.ljust(8)} {seconds:8.4f}s"
                f"  {100.0 * seconds / total:5.1f}%"
                f"  ({entry.get('ticks', 0)} ticks)"
            )
    return "\n".join(lines)
