"""``python -m repro.obs`` — inspect exported observability files.

Subcommands
-----------
``fig3``
    Run the Figure 3 scenario twice — untraced and traced — assert the
    delivery records are byte-identical (tracing must not perturb the
    simulation), and export ``trace.jsonl``, ``trace.chrome.json``,
    ``metrics.json`` and ``deliveries.json`` into an output directory.
``summary``
    Print per-name event counts and completed-span statistics of a JSONL
    trace (and, optionally, a metrics snapshot overview).
``validate``
    Check a JSONL and/or Chrome trace (strict JSON, monotonic timestamps,
    every ``E`` matched by an earlier ``B``) and/or a metrics snapshot
    (sorted unique identities, known types, finite values) — the check the
    CI smoke jobs run over exported artifacts.
``hot-channels``
    Rank a per-channel gauge family (default ``link.flits``) from a
    metrics snapshot, hottest first.
``latency``
    Render a latency histogram family from a metrics snapshot as ASCII
    bars.

Example::

    python -m repro.obs fig3 --out /tmp/fig3obs
    python -m repro.obs hot-channels --metrics /tmp/fig3obs/metrics.json
    python -m repro.obs latency --metrics /tmp/fig3obs/metrics.json \
        --name flit.delivery_latency_hist
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Any, Dict, List, Optional

from repro.obs import Observability
from repro.obs.report import (
    format_metrics_summary,
    format_trace_summary,
    hot_channels,
    load_chrome,
    load_jsonl,
    load_metrics,
    render_latency,
    trace_summary,
    validate_events,
    validate_metrics,
)


def _run_fig3(scheme: str, engine: str, worm_bytes: int, max_ticks: int, obs):
    """One Figure 3 run with direct access to the per-worm records.

    Mirrors :func:`repro.core.switch_mcast.run_fig3_scenario` but returns
    the network so the CLI can export wid-normalized delivery records (worm
    ids come from a process-global counter, so two runs in one process get
    different ids for the same worms — the records are compared by
    content, not id).
    """
    from repro.core.switch_mcast import (
        SwitchScheme,
        build_switch_multicast_network,
    )
    from repro.net.topology import fig3_topology

    topology = fig3_topology()
    names = {topology.node(h).name: h for h in topology.hosts}
    net = build_switch_multicast_network(
        topology, SwitchScheme(scheme), seed=3, engine=engine, obs=obs
    )
    net.send_multicast(
        names["srcM"],
        [names["host_b"], names["host_c"]],
        payload_bytes=worm_bytes,
        start_delay=0,
    )
    net.send_unicast(
        names["host_y"], names["host_b"], payload_bytes=worm_bytes, start_delay=5
    )
    status = net.run(max_ticks=max_ticks, quiet_limit=3_000, raise_on_deadlock=False)
    if obs is not None:
        obs.snapshot_flitnet(net)
    return net, status


def _delivery_records(net) -> List[Dict[str, Any]]:
    """Worm-id-free delivery records, in record insertion order."""
    return [
        {
            "src": record.src,
            "dests": sorted(record.dests),
            "payload_bytes": record.payload_bytes,
            "injected_at": record.injected_at,
            "delivered_at": {str(h): t for h, t in sorted(record.delivered_at.items())},
            "retransmissions": record.retransmissions,
        }
        for record in net.records.values()
    ]


def _cmd_fig3(args: argparse.Namespace) -> int:
    out = Path(args.out)
    out.mkdir(parents=True, exist_ok=True)

    plain_net, plain_status = _run_fig3(
        args.scheme, args.engine, args.worm_bytes, args.max_ticks, obs=None
    )
    obs = Observability(trace_capacity=args.trace_capacity)
    traced_net, traced_status = _run_fig3(
        args.scheme, args.engine, args.worm_bytes, args.max_ticks, obs=obs
    )

    plain = {
        "status": plain_status,
        "ticks": plain_net.now,
        "flushes": plain_net.flushes,
        "deliveries": _delivery_records(plain_net),
    }
    traced = {
        "status": traced_status,
        "ticks": traced_net.now,
        "flushes": traced_net.flushes,
        "deliveries": _delivery_records(traced_net),
    }
    identical = json.dumps(plain, sort_keys=True) == json.dumps(traced, sort_keys=True)
    if not identical:
        print("FAIL: delivery records differ between traced and untraced runs")
        return 1
    print(
        f"tracing on/off identical: {traced_status}, {traced_net.now} ticks, "
        f"{len(traced['deliveries'])} worm records"
    )

    n_jsonl = obs.tracer.export_jsonl(out / "trace.jsonl")
    n_chrome = obs.tracer.export_chrome(out / "trace.chrome.json")
    snapshot = obs.snapshot(traced_net.now)
    (out / "metrics.json").write_text(
        json.dumps(snapshot, indent=2, sort_keys=True, allow_nan=False)
    )
    (out / "deliveries.json").write_text(
        json.dumps(traced, indent=2, sort_keys=True, allow_nan=False)
    )
    print(
        f"exported to {out}: trace.jsonl ({n_jsonl} events), "
        f"trace.chrome.json ({n_chrome} events), metrics.json "
        f"({len(snapshot['metrics'])} metrics), deliveries.json"
    )
    return 0


def _cmd_summary(args: argparse.Namespace) -> int:
    header, events = load_jsonl(args.trace)
    print(format_trace_summary(trace_summary(header, events)))
    if args.metrics:
        print()
        print(format_metrics_summary(load_metrics(args.metrics)))
    return 0


def _cmd_validate(args: argparse.Namespace) -> int:
    if not args.trace and not args.chrome and not args.metrics:
        print("nothing to validate: pass --trace, --chrome and/or --metrics")
        return 2
    failed = False
    if args.trace:
        header, events = load_jsonl(args.trace)
        problems = validate_events(events, header=header)
        _report_validation(args.trace, len(events), problems)
        failed |= bool(problems)
    if args.chrome:
        entries = load_chrome(args.chrome)
        problems = validate_events(entries)
        _report_validation(args.chrome, len(entries), problems)
        failed |= bool(problems)
    if args.metrics:
        snapshot = load_metrics(args.metrics)
        problems = validate_metrics(snapshot)
        _report_validation(
            args.metrics, len(snapshot.get("metrics", [])), problems
        )
        failed |= bool(problems)
    return 1 if failed else 0


def _report_validation(path, count: int, problems: List[str]) -> None:
    if problems:
        print(f"{path}: INVALID ({len(problems)} problems)")
        for problem in problems[:20]:
            print(f"  - {problem}")
        if len(problems) > 20:
            print(f"  ... and {len(problems) - 20} more")
    else:
        print(f"{path}: OK ({count} events)")


def _cmd_hot_channels(args: argparse.Namespace) -> int:
    snapshot = load_metrics(args.metrics)
    ranked = hot_channels(snapshot, name=args.name, top=args.top)
    if not ranked:
        from repro.obs.report import gauge_names

        known = ", ".join(gauge_names(snapshot)) or "(none)"
        print(f"no gauge {args.name!r} in snapshot; known gauges: {known}")
        return 1
    width = max(len(label) for label, _ in ranked)
    print(f"top {len(ranked)} by {args.name}:")
    for label, value in ranked:
        print(f"  {label.ljust(width)}  {value:g}")
    return 0


def _cmd_latency(args: argparse.Namespace) -> int:
    snapshot = load_metrics(args.metrics)
    try:
        print(render_latency(snapshot, args.name, width=args.width))
    except ValueError as error:
        print(str(error))
        return 1
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="Inspect exported observability traces and metric snapshots.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    fig3 = sub.add_parser(
        "fig3", help="run a traced Figure 3 scenario and export its files"
    )
    fig3.add_argument("--out", required=True, help="output directory")
    fig3.add_argument(
        "--scheme",
        default="s3_idle_flush",
        choices=["base", "s1_tree_restricted", "s2_interrupt", "s3_idle_flush"],
    )
    fig3.add_argument(
        "--engine", default="active", choices=["active", "dense", "array"]
    )
    fig3.add_argument("--worm-bytes", type=int, default=400)
    fig3.add_argument("--max-ticks", type=int, default=100_000)
    fig3.add_argument("--trace-capacity", type=int, default=65536)
    fig3.set_defaults(fn=_cmd_fig3)

    summary = sub.add_parser("summary", help="summarize a JSONL trace")
    summary.add_argument("--trace", required=True, help="trace.jsonl path")
    summary.add_argument("--metrics", default=None, help="metrics.json path")
    summary.set_defaults(fn=_cmd_summary)

    validate = sub.add_parser(
        "validate", help="check trace/metrics file invariants"
    )
    validate.add_argument("--trace", default=None, help="trace.jsonl path")
    validate.add_argument("--chrome", default=None, help="trace.chrome.json path")
    validate.add_argument("--metrics", default=None, help="metrics.json path")
    validate.set_defaults(fn=_cmd_validate)

    hot = sub.add_parser("hot-channels", help="rank per-channel gauges")
    hot.add_argument("--metrics", required=True, help="metrics.json path")
    hot.add_argument("--name", default="link.flits", help="gauge family to rank")
    hot.add_argument("--top", type=int, default=10)
    hot.set_defaults(fn=_cmd_hot_channels)

    latency = sub.add_parser("latency", help="render a latency histogram")
    latency.add_argument("--metrics", required=True, help="metrics.json path")
    latency.add_argument(
        "--name",
        default="flit.delivery_latency_hist",
        help="histogram family to render",
    )
    latency.add_argument("--width", type=int, default=50, help="bar width")
    latency.set_defaults(fn=_cmd_latency)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
