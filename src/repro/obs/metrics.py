"""Labeled, tagged metrics over the :mod:`repro.sim.monitor` collectors.

A :class:`MetricsRegistry` is a flat namespace of metrics identified by
``(name, tags)`` — e.g. ``channel.utilization{dst=7,src=3}`` — where each
metric is one of the existing collector types (:class:`TallyStat`,
:class:`Histogram`, :class:`RateMeter`, :class:`TimeWeightedStat`) or one
of the two trivial types added here (:class:`Counter`, :class:`Gauge`).

Three registry operations support the experiment life cycle:

* :meth:`MetricsRegistry.reset` — warm-up reset: every collector restarts
  its observation window at ``now`` (transient samples are discarded);
* :meth:`MetricsRegistry.snapshot` — a canonical, strict-JSON dict of every
  metric's state (NaN-free, tags stringified, entries sorted), suitable for
  embedding in sweep records and for the on-disk caches;
* :func:`merge_snapshots` — fold snapshots from independent runs (the
  multiprocessing sweep workers) into one aggregate.  Merging is performed
  in argument order, so merging per-point snapshots in record order yields
  byte-identical aggregates whether the points executed sequentially or on
  a pool.
"""

from __future__ import annotations

import math
from typing import Any, Dict, Iterator, List, Mapping, Optional, Tuple

from repro.sim.monitor import Histogram, RateMeter, TallyStat, TimeWeightedStat

#: Snapshot schema version (bumped on incompatible layout changes).
SNAPSHOT_VERSION = 1

TagKey = Tuple[str, Tuple[Tuple[str, str], ...]]


class Counter:
    """A monotonically increasing event/byte count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str = "") -> None:
        self.name = name
        self.value = 0.0

    def add(self, amount: float = 1.0) -> None:
        self.value += amount

    def reset(self) -> None:
        self.value = 0.0


class Gauge:
    """A point-in-time value (set at snapshot time, e.g. a utilization)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str = "") -> None:
        self.name = name
        self.value: Optional[float] = None

    def set(self, value: float) -> None:
        self.value = float(value)

    def reset(self) -> None:
        self.value = None


def _tag_key(tags: Mapping[str, Any]) -> Tuple[Tuple[str, str], ...]:
    return tuple(sorted((str(k), str(v)) for k, v in tags.items()))


def _nan_none(value: float) -> Optional[float]:
    return None if value != value else value


def metric_label(name: str, tags: Mapping[str, Any]) -> str:
    """Human-readable ``name{k=v,...}`` form of a metric identity."""
    if not tags:
        return name
    inner = ",".join(f"{k}={v}" for k, v in sorted(tags.items()))
    return f"{name}{{{inner}}}"


class MetricsRegistry:
    """Get-or-create registry of named, tagged collectors.

    Accessors (:meth:`counter`, :meth:`gauge`, :meth:`tally`,
    :meth:`histogram`, :meth:`rate`, :meth:`time_weighted`) return the
    existing collector for ``(name, tags)`` or create it; repeated calls
    with the same identity are cheap and always return the same object, so
    hook sites do not need to cache handles for correctness.
    """

    def __init__(self) -> None:
        self._metrics: Dict[TagKey, Tuple[str, Any]] = {}
        self._start = 0.0

    # -- accessors ----------------------------------------------------------
    def _get(self, kind: str, name: str, tags: Mapping[str, Any], factory):
        key = (name, _tag_key(tags))
        entry = self._metrics.get(key)
        if entry is None:
            entry = (kind, factory())
            self._metrics[key] = entry
            return entry[1]
        if entry[0] != kind:
            raise TypeError(
                f"metric {metric_label(name, tags)} already registered "
                f"as {entry[0]!r}, not {kind!r}"
            )
        return entry[1]

    def counter(self, name: str, **tags: Any) -> Counter:
        return self._get("counter", name, tags, lambda: Counter(name))

    def gauge(self, name: str, **tags: Any) -> Gauge:
        return self._get("gauge", name, tags, lambda: Gauge(name))

    def tally(self, name: str, **tags: Any) -> TallyStat:
        return self._get("tally", name, tags, lambda: TallyStat(name))

    def histogram(
        self,
        name: str,
        low: float = 0.0,
        high: float = 100_000.0,
        bins: int = 50,
        **tags: Any,
    ) -> Histogram:
        """Bounds apply on first creation; later calls reuse the metric."""
        return self._get(
            "histogram", name, tags, lambda: Histogram(low, high, bins, name)
        )

    def rate(self, name: str, now: float = 0.0, **tags: Any) -> RateMeter:
        return self._get("rate", name, tags, lambda: RateMeter(now, name))

    def time_weighted(
        self, name: str, now: float = 0.0, value: float = 0.0, **tags: Any
    ) -> TimeWeightedStat:
        return self._get(
            "time_weighted", name, tags, lambda: TimeWeightedStat(now, value, name)
        )

    # -- iteration ----------------------------------------------------------
    def __len__(self) -> int:
        return len(self._metrics)

    def __iter__(self) -> Iterator[Tuple[str, Dict[str, str], str, Any]]:
        """Yield ``(name, tags, kind, collector)`` in sorted identity order."""
        for (name, tag_key), (kind, collector) in sorted(self._metrics.items()):
            yield name, dict(tag_key), kind, collector

    # -- life cycle ----------------------------------------------------------
    def reset(self, now: float = 0.0) -> None:
        """Warm-up reset: restart every collector's window at ``now``.

        Counters and tallies zero out, histograms clear, gauges unset, and
        the windowed collectors (:class:`RateMeter`, and
        :class:`TimeWeightedStat` via its ``reset(now)``) restart their
        observation window — the time-weighted signal value itself persists
        across the reset, only its accumulated integral is discarded.
        """
        self._start = now
        for kind, collector in self._metrics.values():
            if kind in ("rate", "time_weighted"):
                collector.reset(now)
            elif kind == "tally":
                collector.__init__(collector.name)
            elif kind == "histogram":
                for index in range(len(collector.counts)):
                    collector.counts[index] = 0
            else:  # counter / gauge
                collector.reset()

    # -- snapshot / merge ------------------------------------------------------
    def snapshot(self, now: Optional[float] = None) -> Dict[str, Any]:
        """Canonical strict-JSON state of every metric.

        ``now`` closes the observation window of the windowed collectors
        (rates and time-weighted means); omit it to use each collector's
        last update time.
        """
        entries: List[Dict[str, Any]] = []
        for name, tags, kind, collector in self:
            entry: Dict[str, Any] = {"name": name, "tags": tags, "type": kind}
            if kind == "counter":
                entry["value"] = collector.value
            elif kind == "gauge":
                entry["value"] = collector.value
            elif kind == "tally":
                entry.update(
                    count=collector.count,
                    mean=_nan_none(collector._mean) if collector.count else None,
                    m2=collector._m2 if collector.count else None,
                    min=collector.minimum if collector.count else None,
                    max=collector.maximum if collector.count else None,
                )
            elif kind == "histogram":
                entry.update(
                    low=collector.low,
                    high=collector.high,
                    bins=collector.bins,
                    counts=list(collector.counts),
                )
            elif kind == "rate":
                end = collector._start if now is None else now
                entry.update(
                    total=collector.total,
                    events=collector.events,
                    elapsed=max(0.0, end - collector._start),
                )
            elif kind == "time_weighted":
                end = collector._last_time if now is None else now
                integral = collector._integral
                if end > collector._last_time:
                    integral += collector._value * (end - collector._last_time)
                entry.update(
                    integral=integral,
                    elapsed=max(0.0, end - collector._start),
                    value=collector._value,
                )
            entries.append(entry)
        return {"version": SNAPSHOT_VERSION, "metrics": entries}


def _merge_entry(into: Dict[str, Any], entry: Dict[str, Any]) -> None:
    kind = into["type"]
    if kind != entry["type"]:
        raise ValueError(
            f"metric {metric_label(into['name'], into['tags'])} has "
            f"conflicting types {kind!r} vs {entry['type']!r}"
        )
    if kind == "counter":
        into["value"] += entry["value"]
    elif kind == "gauge":
        if entry["value"] is not None:
            into["value"] = entry["value"]  # last writer wins
    elif kind == "tally":
        if not entry["count"]:
            return
        if not into["count"]:
            into.update(entry)
            return
        n1, n2 = into["count"], entry["count"]
        total = n1 + n2
        delta = entry["mean"] - into["mean"]
        into["m2"] = into["m2"] + entry["m2"] + delta * delta * n1 * n2 / total
        into["mean"] += delta * n2 / total
        into["count"] = total
        into["min"] = min(into["min"], entry["min"])
        into["max"] = max(into["max"], entry["max"])
    elif kind == "histogram":
        if (into["low"], into["high"], into["bins"]) != (
            entry["low"], entry["high"], entry["bins"]
        ):
            raise ValueError(
                f"histogram {metric_label(into['name'], into['tags'])} has "
                "mismatched bounds across snapshots"
            )
        into["counts"] = [a + b for a, b in zip(into["counts"], entry["counts"])]
    elif kind == "rate":
        into["total"] += entry["total"]
        into["events"] += entry["events"]
        into["elapsed"] += entry["elapsed"]
    elif kind == "time_weighted":
        into["integral"] += entry["integral"]
        into["elapsed"] += entry["elapsed"]
        into["value"] = entry["value"]
    else:
        raise ValueError(f"unknown metric type {kind!r}")


def merge_snapshots(snapshots) -> Dict[str, Any]:
    """Fold metric snapshots into one aggregate, in argument order.

    Counters, histograms, rates and time-weighted integrals sum; tallies
    combine with the parallel Welford merge; gauges keep the last defined
    value.  Sums and counts merge associatively; the floating-point tally
    moments are merge-*order*-dependent, so callers wanting reproducible
    aggregates must merge in a deterministic order (the sweep runner merges
    in record order, which is identical for sequential and parallel runs).
    """
    merged: Dict[TagKey, Dict[str, Any]] = {}
    for snapshot in snapshots:
        if snapshot is None:
            continue
        version = snapshot.get("version", SNAPSHOT_VERSION)
        if version != SNAPSHOT_VERSION:
            raise ValueError(f"unsupported snapshot version {version}")
        for entry in snapshot["metrics"]:
            key = (entry["name"], _tag_key(entry["tags"]))
            existing = merged.get(key)
            if existing is None:
                merged[key] = {
                    k: (list(v) if isinstance(v, list) else v)
                    for k, v in entry.items()
                }
            else:
                _merge_entry(existing, entry)
    return {
        "version": SNAPSHOT_VERSION,
        "metrics": [merged[key] for key in sorted(merged)],
    }


def summarize_entry(entry: Dict[str, Any]) -> Dict[str, Any]:
    """Reader-facing summary of one snapshot entry (derived statistics)."""
    kind = entry["type"]
    if kind in ("counter", "gauge"):
        return {"value": entry["value"]}
    if kind == "tally":
        count = entry["count"]
        stdev = None
        if count and count > 1 and entry["m2"] is not None:
            var = entry["m2"] / (count - 1)
            stdev = math.sqrt(var) if var >= 0 else None
        return {
            "count": count,
            "mean": entry.get("mean"),
            "stdev": stdev,
            "min": entry.get("min"),
            "max": entry.get("max"),
        }
    if kind == "histogram":
        return {
            "total": sum(entry["counts"]),
            "under": entry["counts"][0],
            "over": entry["counts"][-1],
        }
    if kind == "rate":
        elapsed = entry["elapsed"]
        return {
            "total": entry["total"],
            "events": entry["events"],
            "rate": entry["total"] / elapsed if elapsed > 0 else None,
        }
    if kind == "time_weighted":
        elapsed = entry["elapsed"]
        return {
            "mean": entry["integral"] / elapsed if elapsed > 0 else None,
            "value": entry["value"],
        }
    raise ValueError(f"unknown metric type {kind!r}")
