"""Unified observability: labeled metrics + structured event tracing.

One :class:`Observability` object bundles the three instrumentation
surfaces and is threaded (opt-in) through every layer of the simulator:

* :attr:`Observability.metrics` — a :class:`~repro.obs.metrics.MetricsRegistry`
  of named, tagged collectors (``channel.utilization{src=3,dst=7}``) with
  warm-up reset, canonical snapshots and cross-process merge;
* :attr:`Observability.tracer` — an :class:`~repro.obs.tracer.EventTracer`
  recording spans (worm inject → head arrival → tail release) and instants
  into a bounded ring buffer, exportable as JSONL or Chrome trace events;
* :attr:`Observability.kernel` — a :class:`~repro.sim.trace.SimTrace`
  counting DES kernel events, attached by passing the bundle to
  ``Simulator(obs=...)``.

Hook sites follow the ``SimTrace`` pattern: a component holds an ``obs``
attribute that defaults to ``None``, and every hot-path hook costs exactly
one pointer test when observability is disabled.  All hooks are passive —
they never schedule events, consume randomness, or touch model state — so
enabling observability leaves simulation results byte-identical (asserted
by ``tests/obs/test_noninterference.py``).

Usage::

    from repro.obs import Observability
    obs = Observability()
    result = run_load_point(scheme, load, obs=obs)
    obs.tracer.export_chrome("trace.json")   # open in chrome://tracing
    snapshot = obs.snapshot(now=result.sim_time)
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.obs.metrics import (
    Counter,
    Gauge,
    MetricsRegistry,
    SNAPSHOT_VERSION,
    metric_label,
    summarize_entry,
)
from repro.obs.metrics import merge_snapshots as _merge_metric_snapshots
from repro.obs.tracer import EventTracer, TraceEvent
from repro.sim.trace import SimTrace

__all__ = [
    "Counter",
    "EventTracer",
    "Gauge",
    "MetricsRegistry",
    "Observability",
    "PhaseTimer",
    "SNAPSHOT_VERSION",
    "TraceEvent",
    "merge_snapshots",
    "metric_label",
    "summarize_entry",
]


class PhaseTimer:
    """Wall-time tally per engine phase (deliver/advance/contend/inject).

    The array flit lane calls :meth:`add` once per phase per tick when an
    observability bundle is attached; with ``obs=None`` the lane holds a
    ``None`` timer and pays exactly one pointer test per phase (the same
    contract as every other hook site).  The tally answers "where does a
    saturated tick's time go" without a profiler in the loop.
    """

    __slots__ = ("seconds", "ticks")

    def __init__(self) -> None:
        self.seconds: Dict[str, float] = {}
        self.ticks: Dict[str, int] = {}

    def add(self, phase: str, elapsed: float) -> None:
        self.seconds[phase] = self.seconds.get(phase, 0.0) + elapsed
        self.ticks[phase] = self.ticks.get(phase, 0) + 1

    def reset(self) -> None:
        self.seconds.clear()
        self.ticks.clear()

    def summary(self) -> Optional[Dict[str, Dict[str, float]]]:
        """Per-phase totals (strict JSON), or ``None`` when nothing ran."""
        if not self.seconds:
            return None
        return {
            phase: {
                "seconds": self.seconds[phase],
                "ticks": self.ticks[phase],
            }
            for phase in sorted(self.seconds)
        }

#: Default histogram bounds per latency family (unit noted per family).
_WORM_LATENCY_BOUNDS = (0.0, 50_000.0, 50)      # byte-times
_FLIT_LATENCY_BOUNDS = (0.0, 20_000.0, 40)      # ticks
_MYRINET_LATENCY_BOUNDS = (0.0, 50_000.0, 50)   # microseconds


class Observability:
    """The opt-in observability bundle handed to models at construction.

    Parameters
    ----------
    tracer:
        ``True`` (default) builds an :class:`EventTracer` with
        ``trace_capacity`` slots; ``False``/``None`` disables tracing
        (metrics only — the cheap mode sweep workers use); an
        :class:`EventTracer` instance is used as-is.
    kernel:
        ``True`` (default) builds a :class:`SimTrace` that
        ``Simulator(obs=...)`` attaches to count kernel events.
    trace_capacity:
        Ring-buffer slots for the default tracer.
    """

    __slots__ = ("metrics", "tracer", "kernel", "phases")

    def __init__(
        self,
        tracer: Any = True,
        kernel: bool = True,
        trace_capacity: int = 65536,
    ) -> None:
        self.metrics = MetricsRegistry()
        if tracer is True:
            self.tracer: Optional[EventTracer] = EventTracer(trace_capacity)
        elif tracer:
            self.tracer = tracer
        else:
            self.tracer = None
        self.kernel: Optional[SimTrace] = SimTrace() if kernel else None
        self.phases = PhaseTimer()

    # -- life cycle ----------------------------------------------------------
    def reset(self, now: float = 0.0) -> None:
        """Warm-up reset: restart metrics windows and kernel counters.

        The trace ring is deliberately *not* cleared — spans opened during
        warm-up must keep their begin events so they still close.
        """
        self.metrics.reset(now)
        if self.kernel is not None:
            self.kernel.reset()
        self.phases.reset()

    def snapshot(self, now: Optional[float] = None) -> Dict[str, Any]:
        """Strict-JSON state of the bundle (see :func:`merge_snapshots`)."""
        snap = self.metrics.snapshot(now)
        snap["kernel"] = (
            self.kernel.summary() if self.kernel is not None else None
        )
        snap["trace"] = (
            {"recorded": self.tracer.recorded, "dropped": self.tracer.dropped}
            if self.tracer is not None
            else None
        )
        snap["phases"] = self.phases.summary()
        return snap

    # ======================================================================
    # Hook points.  Callers guard every call with ``if obs is not None``;
    # the methods themselves never mutate model state.
    # ======================================================================

    # -- worm-level network (byte-times) ------------------------------------
    def worm_injected(
        self, now: float, wid: int, src: int, dst: int, length: float, kind: str
    ) -> None:
        self.metrics.counter("worm.injected").add()
        if self.tracer is not None:
            self.tracer.begin(
                now, "worm", key=wid, src=src, dst=dst, length=length, kind=kind
            )

    def worm_head(self, now: float, wid: int, dst: int) -> None:
        if self.tracer is not None:
            self.tracer.instant(now, "worm.head", key=wid, dst=dst)

    def worm_delivered(
        self, now: float, wid: int, latency: float, blocked: float, length: float
    ) -> None:
        metrics = self.metrics
        metrics.counter("worm.delivered").add()
        metrics.counter("worm.delivered_bytes").add(length)
        metrics.tally("worm.latency").add(latency)
        metrics.histogram("worm.latency_hist", *_WORM_LATENCY_BOUNDS).add(latency)
        metrics.tally("worm.blocked_time").add(blocked)
        if self.tracer is not None:
            self.tracer.end(now, "worm", key=wid, status="delivered")

    def worm_dropped(self, now: float, wid: int, reason: str) -> None:
        self.metrics.counter("worm.lost", reason=reason).add()
        if self.tracer is not None:
            self.tracer.end(now, "worm", key=wid, status=reason)

    def snapshot_wormnet(self, net, now: float) -> None:
        """Publish per-channel gauges from a worm-level network's state."""
        gauge = self.metrics.gauge
        for channel in net.channels:
            tags = {"src": channel.src, "dst": channel.dst}
            gauge("channel.utilization", **tags).set(channel.utilization(now))
            gauge("channel.acquisitions", **tags).set(channel.acquisitions)

    # -- host-adapter multicast engine (byte-times) ----------------------------
    def message_sent(
        self, now: float, mid: int, gid: int, origin: int, length: float
    ) -> None:
        self.metrics.counter("multicast.sent").add()
        if self.tracer is not None:
            self.tracer.begin(
                now, "message", key=mid, gid=gid, origin=origin, length=length
            )

    def message_delivery(self, now: float, mid: int, host: int, latency: float) -> None:
        metrics = self.metrics
        metrics.counter("multicast.deliveries").add()
        metrics.histogram("multicast.delivery_latency", *_WORM_LATENCY_BOUNDS).add(
            latency
        )
        if self.tracer is not None:
            self.tracer.instant(now, "message.delivery", key=mid, host=host)

    def message_completed(self, now: float, mid: int, latency: float) -> None:
        metrics = self.metrics
        metrics.counter("multicast.completed").add()
        metrics.histogram("multicast.completion_latency", *_WORM_LATENCY_BOUNDS).add(
            latency
        )
        if self.tracer is not None:
            self.tracer.end(now, "message", key=mid, status="completed")

    def unicast_delivered(self, now: float, latency: float) -> None:
        metrics = self.metrics
        metrics.counter("unicast.delivered").add()
        metrics.histogram("unicast.latency_hist", *_WORM_LATENCY_BOUNDS).add(latency)

    # -- flit-level network (ticks) -----------------------------------------
    def flit_worm_injected(self, now: int, record) -> None:
        self.metrics.counter("flit.worm_injected").add()
        if self.tracer is not None:
            self.tracer.begin(
                now,
                "flit.worm",
                key=record.wid,
                src=record.src,
                dests=len(record.dests),
                payload=record.payload_bytes,
            )

    def flit_delivery(
        self, now: int, wid: int, host: int, latency: Optional[int], complete: bool
    ) -> None:
        metrics = self.metrics
        metrics.counter("flit.deliveries").add()
        if latency is not None:
            metrics.tally("flit.delivery_latency").add(latency)
            metrics.histogram(
                "flit.delivery_latency_hist", *_FLIT_LATENCY_BOUNDS
            ).add(latency)
        if self.tracer is not None:
            if complete:
                self.tracer.end(now, "flit.worm", key=wid, status="delivered")
            else:
                self.tracer.instant(now, "flit.worm.delivery", key=wid, host=host)

    def flit_flush(self, now: int, wid: int) -> None:
        self.metrics.counter("flit.flushes").add()
        if self.tracer is not None:
            self.tracer.end(now, "flit.worm", key=wid, status="flushed")

    def flit_worm_lost(self, now: int, wid: int, reason: str) -> None:
        self.metrics.counter("flit.worms_lost", reason=reason).add()
        if self.tracer is not None:
            self.tracer.end(now, "flit.worm", key=wid, status=reason)

    def link_fault(self, now: float, link_id: int, kind: str) -> None:
        self.metrics.counter("fault.link", kind=kind).add()
        if self.tracer is not None:
            self.tracer.instant(now, f"fault.{kind}", link=link_id)

    def snapshot_flitnet(self, net) -> None:
        """Publish per-link flit gauges from a flit-level network.

        ``Wire.carried``/``Wire.idles`` accumulate unconditionally in the
        wire model, so this costs nothing on the hot path — the gauges are
        filled only when a snapshot is taken.

        On a multi-lane fabric (``net.lanes > 1``) each switch-to-switch
        link additionally publishes per-lane occupancy gauges
        (``link.lane.flits`` / ``link.lane.idles``, one per virtual
        channel: both directions of that lane's wire pair summed), so a
        lanes sweep can see how the allocator spreads worms across lanes.
        """
        gauge = self.metrics.gauge
        topology = net.topology
        lanes = getattr(net, "lanes", 1)
        for link in topology.links:
            wires = net._link_wires.get(link.id)
            if not wires:
                continue
            carried = sum(w.carried for w in wires if w is not None)
            idles = sum(w.idles for w in wires if w is not None)
            tags = {"link": link.id, "a": link.a, "b": link.b}
            gauge("link.flits", **tags).set(carried)
            gauge("link.idles", **tags).set(idles)
            if lanes > 1 and len(wires) == 2 * lanes:
                # _link_wires orders lane l's wire pair at slots 2l, 2l+1.
                for lane in range(lanes):
                    pair = wires[2 * lane : 2 * lane + 2]
                    gauge("link.lane.flits", lane=lane, **tags).set(
                        sum(w.carried for w in pair if w is not None)
                    )
                    gauge("link.lane.idles", lane=lane, **tags).set(
                        sum(w.idles for w in pair if w is not None)
                    )
        gauge("flit.ticks_executed").set(net.ticks_executed)
        gauge("flit.now").set(net.now)

    # -- myrinet testbed (microseconds) ---------------------------------------
    def myrinet_arrival(self, now: float, host: int) -> None:
        self.metrics.counter("myrinet.arrivals").add()

    def myrinet_drop(self, now: float, host: int, injected: bool) -> None:
        self.metrics.counter(
            "myrinet.drops", cause="injected" if injected else "buffer"
        ).add()
        if self.tracer is not None:
            self.tracer.instant(now, "myrinet.drop", key=host, host=host)

    def myrinet_received(
        self, now: float, host: int, size: int, latency: float
    ) -> None:
        metrics = self.metrics
        metrics.counter("myrinet.received_packets").add()
        metrics.counter("myrinet.received_bytes").add(size)
        metrics.tally("myrinet.packet_latency").add(latency)
        metrics.histogram(
            "myrinet.packet_latency_hist", *_MYRINET_LATENCY_BOUNDS
        ).add(latency)

    def snapshot_testbed(self, per_host_throughput, per_host_loss) -> None:
        gauge = self.metrics.gauge
        for host, mbps in per_host_throughput.items():
            gauge("myrinet.host_throughput_mbps", host=host).set(mbps)
        for host, loss in per_host_loss.items():
            gauge("myrinet.host_loss_rate", host=host).set(loss)

    # -- fault campaigns ------------------------------------------------------
    def fault_applied(self, now: float, kind: str, target: int) -> None:
        self.metrics.counter("fault.applied", kind=kind).add()
        if self.tracer is not None:
            self.tracer.instant(now, f"fault.{kind}", target=target)

    # -- systematic stress search (repro.stress) ------------------------------
    def stress_state(self, pruned: bool) -> None:
        """One search node executed; ``pruned`` if its digest was seen."""
        result = "pruned" if pruned else "explored"
        self.metrics.counter("stress.states", result=result).add()

    def stress_violation(self, invariant: str) -> None:
        """A new (invariant, subject) violation was recorded."""
        self.metrics.counter("stress.violations", invariant=invariant).add()


def merge_snapshots(snapshots) -> Dict[str, Any]:
    """Merge :meth:`Observability.snapshot` bundles, in argument order.

    Metric entries merge per :func:`repro.obs.metrics.merge_snapshots`;
    kernel event counts and trace record/drop counts sum.  Merging
    per-point snapshots in record order yields identical aggregates for
    sequential and parallel sweep executions (asserted in
    ``tests/obs/test_sweep_obs.py``).
    """
    snaps: List[Dict[str, Any]] = [s for s in snapshots if s]
    merged = _merge_metric_snapshots(snaps)
    kernels = [s["kernel"] for s in snaps if s.get("kernel")]
    if kernels:
        by_type: Dict[str, int] = {}
        wakeups: Dict[str, int] = {}
        for kernel in kernels:
            for name, count in kernel.get("by_type", {}).items():
                by_type[name] = by_type.get(name, 0) + count
            for name, count in kernel.get("wakeups", {}).items():
                wakeups[name] = wakeups.get(name, 0) + count
        merged["kernel"] = {
            "events": sum(k.get("events", 0) for k in kernels),
            "by_type": dict(sorted(by_type.items())),
            "wakeups": dict(sorted(wakeups.items())),
        }
    traces = [s["trace"] for s in snaps if s.get("trace")]
    if traces:
        merged["trace"] = {
            "recorded": sum(t.get("recorded", 0) for t in traces),
            "dropped": sum(t.get("dropped", 0) for t in traces),
        }
    phase_snaps = [s["phases"] for s in snaps if s.get("phases")]
    if phase_snaps:
        phases: Dict[str, Dict[str, float]] = {}
        for snap in phase_snaps:
            for name, entry in snap.items():
                into = phases.setdefault(name, {"seconds": 0.0, "ticks": 0})
                into["seconds"] += entry.get("seconds", 0.0)
                into["ticks"] += entry.get("ticks", 0)
        merged["phases"] = dict(sorted(phases.items()))
    return merged
