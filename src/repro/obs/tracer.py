"""Structured event tracing with a bounded ring buffer.

The tracer records three phases, mirroring the Chrome trace-event format:

* ``B``/``E`` — span begin/end, matched by ``(name, key)`` (e.g. one span
  per worm id from injection to tail release);
* ``i`` — instant events (head arrivals, flushes, faults).

Recording is append-only into a fixed-capacity ring buffer: when the
buffer is full the oldest events are overwritten and counted in
:attr:`EventTracer.dropped`, so a tracer can stay attached to an
arbitrarily long run with bounded memory.

Two export formats:

* :meth:`EventTracer.export_jsonl` — one JSON object per line, preceded by
  a header line (``{"kind": "repro-trace", ...}``); the native format the
  ``python -m repro.obs`` CLI summarizes and validates.
* :meth:`EventTracer.export_chrome` — the Chrome trace-event JSON array
  loadable in ``chrome://tracing`` / Perfetto.  Every span key gets its own
  ``tid``, so overlapping worm spans render as parallel tracks and B/E
  pairs nest trivially.  Span ends whose begin was overwritten by the ring
  are skipped (they cannot be rendered), and still-open spans are exported
  as-is — both tools tolerate unclosed ``B`` events.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional, Tuple

JSONL_KIND = "repro-trace"
JSONL_VERSION = 1


class TraceEvent:
    """One recorded event (a slot in the ring buffer)."""

    __slots__ = ("ts", "ph", "name", "key", "args")

    def __init__(
        self, ts: float, ph: str, name: str, key: int, args: Optional[Dict[str, Any]]
    ) -> None:
        self.ts = ts
        self.ph = ph
        self.name = name
        self.key = key
        self.args = args

    def to_dict(self) -> Dict[str, Any]:
        entry: Dict[str, Any] = {
            "ts": self.ts, "ph": self.ph, "name": self.name, "key": self.key,
        }
        if self.args:
            entry["args"] = self.args
        return entry

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<TraceEvent {self.ph} {self.name}/{self.key} @{self.ts}>"


class EventTracer:
    """Bounded ring buffer of :class:`TraceEvent` records."""

    __slots__ = ("capacity", "_ring", "_head", "recorded", "dropped")

    def __init__(self, capacity: int = 65536) -> None:
        if capacity < 1:
            raise ValueError("tracer capacity must be positive")
        self.capacity = capacity
        self._ring: List[TraceEvent] = []
        self._head = 0  # next overwrite position once the ring is full
        #: Total events ever recorded (recorded - len(events()) == dropped).
        self.recorded = 0
        #: Events overwritten by ring wrap-around.
        self.dropped = 0

    # -- recording (hot path) -------------------------------------------------
    def _record(self, event: TraceEvent) -> None:
        ring = self._ring
        self.recorded += 1
        if len(ring) < self.capacity:
            ring.append(event)
            return
        ring[self._head] = event
        self._head = (self._head + 1) % self.capacity
        self.dropped += 1

    def begin(self, ts: float, name: str, key: int = 0, **args: Any) -> None:
        """Open the span ``(name, key)`` at ``ts``."""
        self._record(TraceEvent(ts, "B", name, key, args or None))

    def end(self, ts: float, name: str, key: int = 0, **args: Any) -> None:
        """Close the span ``(name, key)`` at ``ts``."""
        self._record(TraceEvent(ts, "E", name, key, args or None))

    def instant(self, ts: float, name: str, key: int = 0, **args: Any) -> None:
        """Record a point event."""
        self._record(TraceEvent(ts, "i", name, key, args or None))

    # -- reading ------------------------------------------------------------
    def events(self) -> List[TraceEvent]:
        """Retained events in recording order (oldest first)."""
        return self._ring[self._head:] + self._ring[: self._head]

    def __len__(self) -> int:
        return len(self._ring)

    def clear(self) -> None:
        self._ring.clear()
        self._head = 0
        self.recorded = 0
        self.dropped = 0

    def span_durations(self) -> Dict[str, List[float]]:
        """Durations of completed spans, grouped by span name.

        Matches ``B``/``E`` by ``(name, key)`` over the retained events;
        ends without a retained begin (lost to ring wrap) are ignored.
        """
        open_spans: Dict[Tuple[str, int], List[float]] = {}
        durations: Dict[str, List[float]] = {}
        for event in self.events():
            if event.ph == "B":
                open_spans.setdefault((event.name, event.key), []).append(event.ts)
            elif event.ph == "E":
                stack = open_spans.get((event.name, event.key))
                if stack:
                    durations.setdefault(event.name, []).append(
                        event.ts - stack.pop()
                    )
        return durations

    # -- export ------------------------------------------------------------
    def export_jsonl(self, path) -> int:
        """Write header + one event per line; returns the event count."""
        events = self.events()
        with open(path, "w") as fh:
            header = {
                "kind": JSONL_KIND,
                "version": JSONL_VERSION,
                "events": len(events),
                "recorded": self.recorded,
                "dropped": self.dropped,
            }
            fh.write(json.dumps(header, sort_keys=True) + "\n")
            for event in events:
                fh.write(json.dumps(event.to_dict(), sort_keys=True) + "\n")
        return len(events)

    def export_chrome(self, path, pid: int = 1) -> int:
        """Write a Chrome trace-event JSON array; returns the event count.

        Span keys map to ``tid`` so concurrent spans occupy separate
        tracks; instant events share ``tid 0`` with scope ``t``.  ``E``
        events whose ``B`` was overwritten by the ring are skipped so every
        exported ``E`` has a matching earlier ``B`` on its track.
        """
        entries: List[Dict[str, Any]] = []
        open_depth: Dict[Tuple[str, int], int] = {}
        for event in self.events():
            if event.ph == "E":
                key = (event.name, event.key)
                depth = open_depth.get(key, 0)
                if depth <= 0:
                    continue  # begin lost to ring wrap: unmatched end
                open_depth[key] = depth - 1
            elif event.ph == "B":
                key = (event.name, event.key)
                open_depth[key] = open_depth.get(key, 0) + 1
            entry: Dict[str, Any] = {
                "name": event.name,
                "ph": event.ph,
                "ts": event.ts,
                "pid": pid,
                "tid": event.key,
            }
            if event.ph == "i":
                entry["s"] = "t"
            if event.args:
                entry["args"] = event.args
            entries.append(entry)
        with open(path, "w") as fh:
            json.dump({"traceEvents": entries, "displayTimeUnit": "ns"}, fh)
        return len(entries)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<EventTracer {len(self._ring)}/{self.capacity} "
            f"dropped={self.dropped}>"
        )
