"""Conservative synchronous-window coordinator for partitioned scenarios.

``run_partitioned(scenario, k)`` drives K :class:`~repro.par.shard.ShardHarness`
replicas in lockstep barrier windows of width ``W = min(cut-wire delay)``
and reconstructs the sequential run's outcome exactly:

* **Windows.**  Every shard advances to the same edge tick; the edge then
  exchanges boundary batches (see :mod:`repro.par.shard` for the proof
  that nothing pushed inside a window can be consumed before the next
  one).  Windows never cross a fault tick, and in the final segment they
  are additionally capped at the current deadlock candidate so shards
  stop on exactly the tick the sequential run would stop on.

* **Status.**  ``FlitNetwork.run`` terminates on conditions that are
  global (all records complete, or no progress event for ``quiet_limit``
  ticks while nothing is scheduled).  The coordinator reconstructs them
  from per-shard data: delivery events shipped at edges, each shard's
  ``_last_progress_tick``, and the static scheduled-action horizon
  (scenarios whose runs can *create* actions or records mid-run --
  scheme 3 flushes, host-adapter multicast -- are rejected up front).

* **Faults** are barrier events: at the fault tick the edge exchange
  runs first (moving every undelivered cut flit onto its receiver's
  replica), then every shard applies the same ``fail_link`` /
  ``fail_node``; the coordinator unions the per-replica loss sets and
  broadcasts the difference so all replicas expunge identical worm sets.

The sequential *reference* for byte-comparison is :func:`run_sequential`:
the same scenario on one engine, with the same driver-level fault
barriers between ``run_window`` segments and the normal ``run()`` for the
final segment.

Both an in-process backend (``backend="inline"``, used for determinism
proofs and on single-core machines) and a worker-process backend
(``backend="process"``, one OS process per shard talking over pipes) are
provided; they execute the identical barrier schedule, so their merged
timelines are byte-equal.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from time import perf_counter
from typing import Any, Dict, List, Optional, Sequence, Tuple

import repro.net.flitlevel.network as _netmod
from repro.net.flitlevel.switch import IDLE_FLUSH
from repro.net.topology import TopologyPartition, partition_topology
from repro.par.scenarios import ParScenario, SCENARIOS, get_scenario
from repro.par.shard import ShardHarness, fail_node_flit, rebind_worm_ids

__all__ = ["ParResult", "run_partitioned", "run_sequential"]


# ---------------------------------------------------------------------------
# probe
# ---------------------------------------------------------------------------
@dataclass
class _ProbeInfo:
    """Static facts the coordinator needs, extracted from one throwaway
    sequential build of the scenario (traffic applied, nothing run)."""

    k: int
    partition: TopologyPartition
    window: Optional[int]            # min cut-wire delay; None when no cuts
    wid_start: int                   # worm-id counter start for every replica
    n_wids: int                      # ids consumed by one build
    action_times: Tuple[int, ...]    # sorted static scheduled-action ticks
    dests: Dict[int, Tuple[int, ...]]  # wid -> destination hosts
    host_owner: Dict[int, int]       # host id -> shard index
    link_ends: Dict[int, Tuple[int, int]]  # link id -> (a, b)
    fwd_dest: Dict[Tuple[int, int], int] = field(default_factory=dict)
    rev_dest: Dict[Tuple[int, int], int] = field(default_factory=dict)


def _probe(scenario: ParScenario, k: int) -> _ProbeInfo:
    base = next(_netmod._flit_worm_ids)
    wid_start = base + 1
    rebind_worm_ids(wid_start)
    probe = scenario.build_net("dense")
    if probe.mode == IDLE_FLUSH:
        raise ValueError(
            "scheme 3 (idle_flush) cannot run under repro.par: a flush "
            "draws the shared RNG and mints new worm ids at an arbitrary "
            "tick -- a zero-lookahead global effect"
        )
    if probe.host_groups or probe.messages:
        raise ValueError(
            "host-adapter multicast cannot run under repro.par: "
            "delivery-time relay hops create records with zero lookahead"
        )
    topo = probe.topology
    for tick, kind, target in scenario.faults:
        if not 0 <= tick < scenario.max_ticks:
            raise ValueError(f"fault tick {tick} outside (0, max_ticks)")
        if kind == "fail_link":
            topo.links[target]  # raises on bad id
        elif kind == "fail_node":
            topo.node(target)
        else:
            raise ValueError(f"unknown fault kind {kind!r}")
    partition = partition_topology(topo, k, scenario.partition_scheme)
    cut_delays = [
        probe._link_wires[lid][0].delay for lid in partition.cut_links
    ]
    info = _ProbeInfo(
        k=k,
        partition=partition,
        window=min(cut_delays) if cut_delays else None,
        wid_start=wid_start,
        n_wids=len(probe.records),
        action_times=tuple(sorted(t for t, _, _ in probe._actions)),
        dests={
            wid: tuple(record.dests) for wid, record in probe.records.items()
        },
        host_owner={
            host: partition.shard_of[topo.host_switch(host)]
            for host in topo.hosts
        },
        link_ends={link.id: (link.a, link.b) for link in topo.links},
    )
    for lid in partition.cut_links:
        a, b = info.link_ends[lid]
        # Direction key (lid, 0) is the a->b wire: its flits land on b's
        # shard, its reverse STOP/GO symbols on a's.
        info.fwd_dest[(lid, 0)] = partition.shard_of[b]
        info.fwd_dest[(lid, 1)] = partition.shard_of[a]
        info.rev_dest[(lid, 0)] = partition.shard_of[a]
        info.rev_dest[(lid, 1)] = partition.shard_of[b]
    return info


# ---------------------------------------------------------------------------
# backends
# ---------------------------------------------------------------------------
class _InlineBackend:
    """All shards in this process, stepped round-robin.  Per-shard wall
    times are still measured so the critical path (what a truly parallel
    run would cost per window) can be reported on single-core hosts."""

    def __init__(self, scenario, k, engine, wid_start, obs):
        self.shards = [
            ShardHarness(scenario, k, i, engine, wid_start, obs=obs)
            for i in range(k)
        ]

    def window(self, until: int):
        out = []
        for harness in self.shards:
            t0 = perf_counter()
            events, lp = harness.run_window(until)
            fwd, rev, inj, dlv = harness.capture_edge(until)
            out.append((events, lp, fwd, rev, inj, dlv, perf_counter() - t0))
        return out

    def inject(self, batches):
        secs = []
        for harness, (fwd, rev, injected) in zip(self.shards, batches):
            t0 = perf_counter()
            harness.inject(fwd, rev, injected)
            secs.append(perf_counter() - t0)
        return secs

    def fault(self, kind, target):
        return [
            harness.apply_fault(kind, target, emit_obs=(i == 0))
            for i, harness in enumerate(self.shards)
        ]

    def lose(self, extras):
        for i, (harness, wids) in enumerate(zip(self.shards, extras)):
            harness.lose_extras(wids, emit_obs=(i == 0))

    def finalize(self, status, now):
        return [
            harness.finalize(status, now) + (harness.net.ticks_executed,)
            for harness in self.shards
        ]

    def close(self):
        pass


def _worker_main(conn, scenario_name, k, index, engine, wid_start, obs):
    """Worker-process loop: one ShardHarness, commands over a pipe.

    The scenario is looked up by *name* so nothing live crosses the fork;
    traffic RNG comes from the scenario seed through the network's own
    ``repro.sim.rng`` substream derivation -- never from process-local
    seeding -- so every worker builds a bit-identical replica.
    """
    harness = ShardHarness(
        get_scenario(scenario_name), k, index, engine, wid_start, obs=obs
    )
    while True:
        try:
            msg = conn.recv()
        except EOFError:
            return
        op = msg[0]
        if op == "window":
            t0 = perf_counter()
            events, lp = harness.run_window(msg[1])
            fwd, rev, inj, dlv = harness.capture_edge(msg[1])
            conn.send((events, lp, fwd, rev, inj, dlv, perf_counter() - t0))
        elif op == "inject":
            t0 = perf_counter()
            harness.inject(msg[1], msg[2], msg[3])
            conn.send(perf_counter() - t0)
        elif op == "fault":
            conn.send(harness.apply_fault(msg[1], msg[2], emit_obs=msg[3]))
        elif op == "lose":
            harness.lose_extras(msg[1], emit_obs=msg[2])
            conn.send(None)
        elif op == "finalize":
            conn.send(
                harness.finalize(msg[1], msg[2])
                + (harness.net.ticks_executed,)
            )
        elif op == "exit":
            conn.close()
            return


class _ProcessBackend:
    """One OS process per shard; the coordinator fans each barrier
    command out to every worker before collecting replies, so shard
    windows genuinely overlap on multi-core hosts."""

    def __init__(self, scenario, k, engine, wid_start, obs):
        import multiprocessing

        if SCENARIOS.get(scenario.name) is not scenario:
            raise ValueError(
                "backend='process' needs a registered scenario (workers "
                f"look it up by name); {scenario.name!r} is not in SCENARIOS"
            )
        ctx = multiprocessing.get_context()
        self.procs = []
        self.conns = []
        for i in range(k):
            parent, child = ctx.Pipe()
            proc = ctx.Process(
                target=_worker_main,
                args=(child, scenario.name, k, i, engine, wid_start, obs),
                daemon=True,
            )
            proc.start()
            child.close()
            self.procs.append(proc)
            self.conns.append(parent)

    def _broadcast(self, messages):
        for conn, msg in zip(self.conns, messages):
            conn.send(msg)
        return [conn.recv() for conn in self.conns]

    def window(self, until: int):
        return self._broadcast([("window", until)] * len(self.conns))

    def inject(self, batches):
        return self._broadcast(
            [("inject", fwd, rev, injected) for fwd, rev, injected in batches]
        )

    def fault(self, kind, target):
        return self._broadcast(
            [("fault", kind, target, i == 0) for i in range(len(self.conns))]
        )

    def lose(self, extras):
        self._broadcast(
            [("lose", wids, i == 0) for i, wids in enumerate(extras)]
        )

    def finalize(self, status, now):
        return self._broadcast([("finalize", status, now)] * len(self.conns))

    def close(self):
        for conn in self.conns:
            try:
                conn.send(("exit",))
                conn.close()
            except (BrokenPipeError, OSError):
                pass
        for proc in self.procs:
            proc.join(timeout=10)
            if proc.is_alive():  # pragma: no cover - defensive
                proc.terminate()


# ---------------------------------------------------------------------------
# result + merge
# ---------------------------------------------------------------------------
@dataclass
class ParResult:
    """Outcome of one partitioned run, merged back to sequential shape."""

    scenario: str
    status: str
    now: int
    timeline: Dict[str, Any]
    k: int
    engine: str
    backend: str
    scheme: str
    cut_links: int
    window: Optional[int]
    windows_run: int
    events: int                      # progress events summed over shards
    ticks_executed: int              # summed over shards
    flits_exchanged: int
    wall_seconds: float              # coordinator loop, real elapsed
    critical_path_seconds: float     # sum over windows of max shard time
    build_seconds: float
    shard_events: List[int]
    obs_snapshot: Optional[Dict[str, Any]] = None


def _merge_timelines(timelines: List[Dict[str, Any]], info: _ProbeInfo):
    base = timelines[0]
    if len(timelines) == 1:
        return base
    for tl in timelines[1:]:
        # Replicated state must agree bit-for-bit across shards; anything
        # else is a coordinator bug, not a tolerable divergence.
        for key in ("status", "now", "flushes", "worms_lost", "link_faults",
                    "killed"):
            if tl[key] != base[key]:
                raise AssertionError(
                    f"shard disagreement on {key}: {tl[key]!r} vs "
                    f"{base[key]!r}"
                )
        if set(tl["worms"]) != set(base["worms"]):
            raise AssertionError("shard disagreement on worm ordinals")
    worms: Dict[int, Dict[str, Any]] = {}
    for ordinal, worm in base["worms"].items():
        merged = dict(worm)
        delivered = dict(worm["delivered_at"])
        for tl in timelines[1:]:
            other = tl["worms"][ordinal]
            delivered.update(other["delivered_at"])
            if merged["injected_at"] is None:
                merged["injected_at"] = other["injected_at"]
        merged["delivered_at"] = dict(sorted(delivered.items()))
        worms[ordinal] = merged
    received = {}
    received_flits = {}
    for host, owner in info.host_owner.items():
        received[host] = timelines[owner]["received"][host]
        received_flits[host] = timelines[owner]["received_flits"][host]
    return {
        "status": base["status"],
        "now": base["now"],
        "flushes": base["flushes"],
        "worms_lost": base["worms_lost"],
        "link_faults": base["link_faults"],
        "worms_injected": sum(tl["worms_injected"] for tl in timelines),
        "worm_deliveries": sum(tl["worm_deliveries"] for tl in timelines),
        "killed": base["killed"],
        "worms": worms,
        "messages": base["messages"],
        "received": received,
        "received_flits": received_flits,
    }


def _merge_obs(
    snaps: List[Optional[Dict[str, Any]]],
    delivery_log: List[Tuple[int, int, int, Optional[int]]],
    link_stats: Dict[int, Tuple[int, int]],
    link_ends: Dict[int, Tuple[int, int]],
    now: int,
) -> Optional[Dict[str, Any]]:
    if not any(snap is not None for snap in snaps):
        return None
    from repro.obs.metrics import MetricsRegistry, merge_snapshots

    merged = merge_snapshots(snaps)
    # The Welford tally merge is float-grouping-dependent, so the merged
    # delivery-latency moments would differ across K.  Recompute the tally
    # from the shipped delivery events in canonical order -- (tick, host)
    # is exactly the order the sequential adapters record deliveries in --
    # and substitute it, making the merged snapshot K-invariant.
    registry = MetricsRegistry()
    tally = registry.tally("flit.delivery_latency")
    for _tick, _host, _wid, latency in delivery_log:
        if latency is not None:
            tally.add(latency)
    canonical = {
        entry["name"]: entry
        for entry in registry.snapshot()["metrics"]
    }
    replacement = canonical.get("flit.delivery_latency")
    metrics = []
    for entry in merged["metrics"]:
        if entry["name"] == "flit.delivery_latency" and not entry["tags"]:
            if replacement is not None:
                metrics.append(replacement)
        else:
            metrics.append(entry)
    merged["metrics"] = metrics
    # Per-link gauges from the per-direction wire stats each sender shard
    # owns -- the same sums ``Observability.snapshot_flitnet`` publishes.
    registry = MetricsRegistry()
    gauge = registry.gauge
    for lid in sorted(link_stats):
        a, b = link_ends[lid]
        carried, idles = link_stats[lid]
        gauge("link.flits", link=lid, a=a, b=b).set(carried)
        gauge("link.idles", link=lid, a=a, b=b).set(idles)
    gauge("flit.now").set(now)
    merged = merge_snapshots([merged, registry.snapshot()])
    # Wall-clock phase timers and kernel/trace counts are not meaningful
    # across shards; ticks_executed is deliberately omitted (shards tick
    # their windows independently).
    merged["phases"] = None
    merged["kernel"] = None
    merged["trace"] = None
    return merged


# ---------------------------------------------------------------------------
# the coordinator
# ---------------------------------------------------------------------------
def run_partitioned(
    scenario,
    partitions: int,
    engine: str = "array",
    backend: str = "inline",
    obs: bool = False,
) -> ParResult:
    """Run ``scenario`` sharded ``partitions`` ways; byte-identical to
    :func:`run_sequential` on the same scenario and engine."""
    if isinstance(scenario, str):
        scenario = get_scenario(scenario)
    k = int(partitions)
    info = _probe(scenario, k)
    try:
        build_t0 = perf_counter()
        if backend == "inline":
            be = _InlineBackend(scenario, k, engine, info.wid_start, obs)
        elif backend == "process":
            be = _ProcessBackend(scenario, k, engine, info.wid_start, obs)
        else:
            raise ValueError(f"unknown backend {backend!r}")
    finally:
        # Replica builds rebound the module-global worm-id counters;
        # leave them past everything this run minted.
        rebind_worm_ids(info.wid_start + info.n_wids)
    build_seconds = perf_counter() - build_t0
    try:
        return _drive(scenario, info, be, engine, backend, build_seconds)
    finally:
        be.close()


def _drive(scenario, info, be, engine, backend, build_seconds) -> ParResult:
    k = info.k
    max_ticks = scenario.max_ticks
    quiet = scenario.quiet_limit
    action_max = info.action_times[-1] if info.action_times else None
    incomplete = {wid: set(dests) for wid, dests in info.dests.items()}
    lps = [0] * k
    seg_start = 0
    last_completion = 0
    status: Optional[str] = None
    now_final: Optional[int] = None
    delivery_log: List[Tuple[int, int, int, Optional[int]]] = []
    total_events = 0
    shard_events = [0] * k
    windows_run = 0
    flits_exchanged = 0
    critical_path = 0.0
    wall_t0 = perf_counter()

    def stall_candidate(t: int) -> Optional[int]:
        # run()'s stall clock: the latest progress event, except that
        # pending scheduled actions pin it to the current tick (so the
        # clock can only start once the last action has fired).
        if quiet is None:
            return None
        floor = max(seg_start, max(lps))
        if action_max is not None:
            floor = max(floor, min(t, action_max - 1))
        return floor + quiet

    def run_window_batch(t_next: int) -> None:
        nonlocal total_events, windows_run, critical_path, flits_exchanged
        nonlocal last_completion
        results = be.window(t_next)
        windows_run += 1
        critical_path += max(result[6] for result in results)
        forward_for: List[dict] = [dict() for _ in range(k)]
        reverse_for: List[dict] = [dict() for _ in range(k)]
        injections: List[Tuple[int, int]] = []
        deliveries: List[Tuple[int, int, int, Optional[int]]] = []
        for si, (events, lp, fwd, rev, inj, dlv, _secs) in enumerate(results):
            total_events += events
            shard_events[si] += events
            lps[si] = lp
            for key, batch in fwd.items():
                forward_for[info.fwd_dest[key]][key] = batch
                flits_exchanged += len(batch)
            for key, batch in rev.items():
                reverse_for[info.rev_dest[key]][key] = batch
            injections.extend(inj)
            deliveries.extend(dlv)
        if k > 1:
            injections.sort()
            secs = be.inject(
                [
                    (forward_for[i], reverse_for[i], injections)
                    for i in range(k)
                ]
            )
            critical_path += max(secs)
        deliveries.sort()
        for tick, host, wid, latency in deliveries:
            remaining = incomplete.get(wid)
            if remaining is not None and host in remaining:
                remaining.discard(host)
                if not remaining:
                    del incomplete[wid]
                    if not incomplete:
                        last_completion = tick
        delivery_log.extend(deliveries)

    def check_status(t_edge: int) -> None:
        nonlocal status, now_final
        if not incomplete and (action_max is None or action_max <= t_edge):
            status = "delivered"
            now_final = max(last_completion, action_max or 0, seg_start + 1)
            return
        if incomplete and quiet is not None:
            candidate = stall_candidate(t_edge)
            if candidate is not None and candidate <= min(t_edge, max_ticks):
                status = "deadlock"
                now_final = candidate

    t = 0
    faults = sorted(scenario.faults)
    fault_index = 0
    while status is None:
        if fault_index < len(faults):
            seg_end, final = faults[fault_index][0], False
        else:
            seg_end, final = max_ticks, True
        while t < seg_end and status is None:
            t_next = min(t + info.window, seg_end) if info.window else seg_end
            if final and quiet is not None and incomplete:
                candidate = stall_candidate(t)
                if candidate is not None and candidate < t_next:
                    t_next = candidate
            run_window_batch(t_next)
            t = t_next
            if final:
                check_status(t)
        if status is not None or final:
            break
        # Fault barrier: the edge exchange above already moved every
        # undelivered cut flit onto its receiver's replica, so the
        # replicated fail loses exactly what the sequential run loses.
        _tick, kind, target = faults[fault_index]
        local_lost = be.fault(kind, target)
        union = set()
        for lost in local_lost:
            union.update(lost)
        union_sorted = sorted(union)
        be.lose(
            [
                [w for w in union_sorted if w not in set(lost)]
                for lost in local_lost
            ]
        )
        for wid in union_sorted:
            incomplete.pop(wid, None)
        seg_start = t
        fault_index += 1
    if status is None:
        status = "timeout"
        now_final = max_ticks

    finals = be.finalize(status, now_final)
    wall_seconds = perf_counter() - wall_t0
    timelines = [f[0] for f in finals]
    link_stats: Dict[int, Tuple[int, int]] = {}
    for _tl, stats, _snap, _ticks in finals:
        for lid, (carried, idles) in stats.items():
            have = link_stats.get(lid, (0, 0))
            link_stats[lid] = (have[0] + carried, have[1] + idles)
    timeline = _merge_timelines(timelines, info)
    obs_snapshot = _merge_obs(
        [f[2] for f in finals], delivery_log, link_stats, info.link_ends,
        now_final,
    )
    return ParResult(
        scenario=scenario.name,
        status=status,
        now=now_final,
        timeline=timeline,
        k=k,
        engine=engine,
        backend=backend,
        scheme=info.partition.scheme,
        cut_links=len(info.partition.cut_links),
        window=info.window,
        windows_run=windows_run,
        events=total_events,
        ticks_executed=sum(f[3] for f in finals),
        flits_exchanged=flits_exchanged,
        wall_seconds=wall_seconds,
        critical_path_seconds=critical_path,
        build_seconds=build_seconds,
        shard_events=shard_events,
        obs_snapshot=obs_snapshot,
    )


# ---------------------------------------------------------------------------
# sequential reference
# ---------------------------------------------------------------------------
def run_sequential(
    scenario,
    engine: str = "dense",
    obs=None,
    wid_start: Optional[int] = None,
):
    """The scenario on one engine with the same driver-level fault
    barriers the coordinator uses.  Returns ``(net, status)``; the
    timeline of this run is the byte-identity baseline for every K."""
    if isinstance(scenario, str):
        scenario = get_scenario(scenario)
    if wid_start is not None:
        rebind_worm_ids(wid_start)
    net = scenario.build_net(engine, obs=obs)
    # Traffic injection at build time records progress events; stash the
    # count so callers can report run-only events (the partitioned
    # runner's numerator).
    net._build_events = net._progress_events
    if net.mode == IDLE_FLUSH:
        raise ValueError("scheme 3 (idle_flush) is outside repro.par scope")
    for tick, kind, target in sorted(scenario.faults):
        net.run_window(tick)
        if kind == "fail_link":
            net.fail_link(target)
        elif kind == "fail_node":
            fail_node_flit(net, target)
        else:
            raise ValueError(f"unknown fault kind {kind!r}")
    status = net.run(
        scenario.max_ticks, scenario.quiet_limit, raise_on_deadlock=False
    )
    return net, status
