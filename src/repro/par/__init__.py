"""Conservative synchronous-window parallel simulation of one scenario.

Shards a :class:`~repro.net.topology.Topology` into K pieces, runs one
flit-level engine per shard in barrier windows sized by the minimum
cross-cut lookahead, and merges the results back into the exact byte
timeline the sequential engines produce.  See :mod:`repro.par.runner`
for the coordinator and :mod:`repro.par.shard` for the window-exactness
argument.
"""

from repro.par.runner import ParResult, run_partitioned, run_sequential
from repro.par.scenarios import SCENARIOS, ParScenario, get_scenario

__all__ = [
    "ParResult",
    "ParScenario",
    "SCENARIOS",
    "get_scenario",
    "run_partitioned",
    "run_sequential",
]
