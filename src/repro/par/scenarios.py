"""Named, picklable scenarios for the partitioned runner.

A :class:`ParScenario` splits what ``FlitNetwork`` drivers usually fuse --
build, traffic injection, and ``run()`` -- so the same scenario can be
replayed three ways with byte-identical timelines:

* sequentially on one engine (:func:`repro.par.runner.run_sequential`),
* sharded across K in-process harnesses (``backend="inline"``),
* sharded across K worker processes (``backend="process"``).

Worker processes receive only the scenario *name* and look the definition
up in :data:`SCENARIOS`, so everything here must be importable module-level
code (no closures over live networks).

Faults are **driver-level**: applied between barrier windows at the listed
tick, exactly as the sequential reference applies them between
``run_window`` segments.  This is what makes a fault on a *cut* link
well-defined -- at a window edge every in-flight flit of the link lives on
the receiving shard's replica wire, so the replicated ``fail_link`` loses
exactly the flits the sequential run loses.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Tuple

from repro.net.flitlevel.network import FlitNetwork, MulticastMode
from repro.net.topology import (
    Topology,
    bidirectional_shufflenet,
    fig3_topology,
    torus,
)

__all__ = ["ParScenario", "SCENARIOS", "get_scenario"]


@dataclass(frozen=True)
class ParScenario:
    """One partitionable scenario: topology, network config, traffic,
    run budget, and driver-level fault events ``(tick, kind, target)``
    with ``kind`` in ``{"fail_link", "fail_node"}``."""

    name: str
    topology: Callable[[], Topology]
    traffic: Callable[[FlitNetwork], None]
    net_kwargs: Dict[str, object] = field(default_factory=dict)
    max_ticks: int = 100_000
    quiet_limit: Optional[int] = 2_000
    faults: Tuple[Tuple[int, str, int], ...] = ()
    partition_scheme: str = "auto"

    def build_net(self, engine: str, shard=None, obs=None) -> FlitNetwork:
        net = FlitNetwork(
            self.topology(), engine=engine, shard=shard, obs=obs,
            **self.net_kwargs,
        )
        self.traffic(net)
        return net


# -- traffic generators --------------------------------------------------------
def _fig3_traffic(net: FlitNetwork) -> None:
    """Figure 3's race: a two-branch multicast vs a crosslink unicast."""
    names = {net.topology.node(h).name: h for h in net.topology.hosts}
    net.send_multicast(
        names["srcM"], [names["host_b"], names["host_c"]],
        payload_bytes=400, start_delay=0,
    )
    net.send_unicast(
        names["host_y"], names["host_b"], payload_bytes=400, start_delay=5,
    )


def _mixed_torus_traffic(net: FlitNetwork) -> None:
    """The crosscheck harness's mixed scenario: staggered unicasts plus
    one multicast on a 3x3 torus (headers, grants, replication)."""
    hosts = net.topology.hosts
    for i, src in enumerate(hosts):
        net.send_unicast(
            src, hosts[(i + 3) % len(hosts)],
            payload_bytes=40 + 8 * (i % 4), start_delay=i * 17,
        )
    net.send_multicast(
        hosts[0], [hosts[2], hosts[5], hosts[7]],
        payload_bytes=120, start_delay=9,
    )


def _saturated_traffic(stride: int, payload: int):
    def traffic(net: FlitNetwork) -> None:
        hosts = net.topology.hosts
        for i, src in enumerate(hosts):
            net.send_unicast(
                src, hosts[(i + stride) % len(hosts)], payload_bytes=payload
            )
    return traffic


_saturated_stride7_150 = _saturated_traffic(7, 150)
_saturated_stride7_96 = _saturated_traffic(7, 96)
_saturated_stride9_192 = _saturated_traffic(9, 192)


def _broadcast_traffic(n_src: int, payload: int, stagger: int):
    """Staggered hardware broadcasts from ``n_src`` hosts spread around the
    address space (paper Section 3: a unicast worm to the up*/down* root,
    then the broadcast byte replicates down every down-link).  Each source
    floods the entire down-tree, so per-tick event density scales with the
    topology instead of with injection contention -- this is the workload
    where partitioning pays, because nearly all of a tick's work is
    replicated flit movement that shards cleanly."""

    def traffic(net: FlitNetwork) -> None:
        hosts = net.topology.hosts
        n = len(hosts)
        step = n // n_src
        for j in range(n_src):
            net.send_broadcast(
                hosts[(j * step + 5) % n],
                payload_bytes=payload,
                start_delay=j * stagger,
            )
    return traffic


def _fault_torus_traffic(net: FlitNetwork) -> None:
    """Row-crossing unicasts on a 4x4 torus, sized so worms are mid-flight
    when the boundary fault fires."""
    hosts = net.topology.hosts
    n = len(hosts)
    for i, src in enumerate(hosts):
        net.send_unicast(
            src, hosts[(i + n // 2) % n], payload_bytes=200,
            start_delay=3 * i,
        )


def _boundary_cut_link(rows: int, cols: int, k: int = 2) -> int:
    """A vertical torus link crossing the first row-band boundary for a
    ``k``-way partition (deterministic: derived from the same partitioner
    the runner uses)."""
    from repro.net.topology import partition_topology

    topo = torus(rows, cols)
    part = partition_topology(topo, k)
    assert part.cut_links, "row-banded torus partition must have cuts"
    return part.cut_links[len(part.cut_links) // 2]


def _boundary_node(rows: int, cols: int, k: int = 2) -> int:
    """A switch adjacent to the first band boundary (endpoint of a cut
    link), so failing it kills cut wires mid-worm."""
    from repro.net.topology import partition_topology

    topo = torus(rows, cols)
    part = partition_topology(topo, k)
    link = next(l for l in topo.links if l.id == part.cut_links[0])
    return link.a


# -- registry ------------------------------------------------------------------
def _fig3(name: str, mode: MulticastMode, restrict: bool) -> ParScenario:
    return ParScenario(
        name=name,
        topology=fig3_topology,
        traffic=_fig3_traffic,
        net_kwargs={"mode": mode, "restrict_to_tree": restrict, "seed": 3},
        max_ticks=100_000,
        quiet_limit=3_000,
    )


SCENARIOS: Dict[str, ParScenario] = {}


def _register(s: ParScenario) -> ParScenario:
    SCENARIOS[s.name] = s
    return s


#: Figure 3 under the base scheme deadlocks at these offsets -- exercises
#: the coordinator's cross-shard stall-clock reconstruction.
_register(_fig3("fig3_base", MulticastMode.IDLE_FILL, False))
#: Scheme 1 (tree-restricted) and scheme 2 (interrupt) deliver; scheme 3
#: (idle_flush) is rejected by the runner (flush retransmission draws
#: shared RNG and mints new worm ids -- a zero-lookahead global effect).
_register(_fig3("fig3_s1", MulticastMode.IDLE_FILL, True))
_register(_fig3("fig3_s2", MulticastMode.INTERRUPT, False))

_register(ParScenario(
    name="mixed_torus",
    topology=lambda: torus(3, 3),
    traffic=_mixed_torus_traffic,
    net_kwargs={"seed": 7},
    max_ticks=80_000,
))

_register(ParScenario(
    name="saturated_shufflenet",
    topology=lambda: bidirectional_shufflenet(2, 3),
    traffic=_saturated_stride7_150,
    net_kwargs={"seed": 21},
    max_ticks=60_000,
))

_register(ParScenario(
    name="saturated_torus_8",
    topology=lambda: torus(8, 8),
    traffic=_saturated_stride7_96,
    net_kwargs={"seed": 11},
    max_ticks=30_000,
))

_register(ParScenario(
    name="saturated_torus_16",
    topology=lambda: torus(16, 16),
    traffic=_saturated_stride7_150,
    net_kwargs={"seed": 13},
    max_ticks=60_000,
))

#: The headline benchmark workload: a 32x32 torus (1024 switches, the
#: scale that motivates partitioning -- ROADMAP item 2/4) saturated by
#: staggered hardware broadcasts.  Broadcast replication floods every
#: down-link, so per-tick work is dominated by flit movement that is
#: *proportional to topology size* -- exactly the component a K-way
#: shard divides by K.  Per-link propagation delay 4 gives cut
#: lookahead 1 + 4 = 5 ticks; the sequential baseline runs the *same*
#: topology (including the delay), so the lookahead amortizes barriers
#: without skewing the comparison.  ~2.3M delivered payload-flit events.
_register(ParScenario(
    name="saturated_torus_32",
    topology=lambda: torus(32, 32, prop_delay=4.0),
    traffic=_broadcast_traffic(6, 384, 120),
    net_kwargs={"seed": 17},
    max_ticks=120_000,
))

#: The unicast-saturated variant of the 32x32 workload (every host sends
#: one stride-9 unicast).  Injection contention caps delivery concurrency
#: at a few dozen events/tick here, so the fixed per-tick engine overhead
#: dominates and partitioning yields ~2.5x at best -- kept as an identity
#: scenario and as the honest record of why the broadcast workload is the
#: benchmark one.
_register(ParScenario(
    name="saturated_torus_32_stride",
    topology=lambda: torus(32, 32, prop_delay=4.0),
    traffic=_saturated_stride9_192,
    net_kwargs={"seed": 17},
    max_ticks=20_000,
))

#: Small broadcast scenario for the test suite: same send_broadcast
#: replication path as the headline workload on an 8x8 torus, cheap
#: enough for K in {1,2,4} digest identity checks in tier-1.
_register(ParScenario(
    name="bcast_torus_8",
    topology=lambda: torus(8, 8),
    traffic=_broadcast_traffic(3, 96, 40),
    net_kwargs={"seed": 19},
    max_ticks=30_000,
))

#: Boundary-crossing link fault: a vertical (cut) link on a 4x4 torus is
#: failed at tick 120, while row-crossing worms are streaming through it.
_register(ParScenario(
    name="torus_boundary_fault",
    topology=lambda: torus(4, 4),
    traffic=_fault_torus_traffic,
    net_kwargs={"seed": 5},
    max_ticks=40_000,
    faults=((120, "fail_link", _boundary_cut_link(4, 4)),),
))

#: Boundary-crossing node fault: a switch on the band boundary dies at
#: tick 150, taking all its (cut and internal) links down mid-worm.
_register(ParScenario(
    name="torus_boundary_node_fault",
    topology=lambda: torus(4, 4),
    traffic=_fault_torus_traffic,
    net_kwargs={"seed": 5},
    max_ticks=40_000,
    faults=((150, "fail_node", _boundary_node(4, 4)),),
))


def get_scenario(name: str) -> ParScenario:
    try:
        return SCENARIOS[name]
    except KeyError:
        raise KeyError(
            f"unknown par scenario {name!r}; known: {sorted(SCENARIOS)}"
        ) from None
