"""CLI for the partitioned runner.

``python -m repro.par crosscheck`` proves byte-identity between the
sequential reference and K-way-partitioned runs; ``python -m repro.par
bench`` measures the scaling that identity makes trustworthy.

Examples::

    python -m repro.par crosscheck --partitions 2 4 --scenario fig3_base
    python -m repro.par crosscheck --partitions 2 --backend process
    python -m repro.par bench --scenario saturated_torus_32 --shards 2,4,8
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.net.flitlevel.crosscheck import (
    crosscheck_partitioned,
    timeline_digest,
)
from repro.par import SCENARIOS, run_partitioned, run_sequential


def _cmd_crosscheck(args) -> int:
    names = args.scenario or sorted(SCENARIOS)
    failed = False
    for name in names:
        for k in args.partitions:
            try:
                report = crosscheck_partitioned(
                    name, k, engine=args.engine, backend=args.backend
                )
            except ValueError as exc:
                print(f"SKIP {name} [K={k}]: {exc}")
                continue
            line = report.describe().splitlines()[0]
            print(("OK   " if report.ok else "FAIL ")
                  + f"{name} [K={k}]: {line}")
            if args.digests and report.ok:
                print(f"     digest {timeline_digest(report.baseline)}")
            if not report.ok:
                print(report.describe())
                failed = True
    return 1 if failed else 0


def _cmd_bench(args) -> int:
    import time

    out = []
    for name in args.scenario or ["saturated_torus_32"]:
        for engine in args.engines:
            t0 = time.perf_counter()
            net, status = run_sequential(name, engine)
            secs = time.perf_counter() - t0
            # Run-only events (injection at build time records some), the
            # same numerator the partitioned runner sums over windows.
            events = net._progress_events - net._build_events
            out.append({
                "scenario": name, "engine": engine, "k": 1,
                "backend": "sequential", "status": status,
                "now": net.now, "events": events,
                "wall_seconds": round(secs, 4),
                "events_per_sec": round(events / secs, 1),
            })
            print(f"{name}/{engine}/seq: {events} events in {secs:.2f}s "
                  f"({events / secs:,.0f} ev/s)")
        for k in args.shards:
            res = run_partitioned(
                name, k, engine=args.engines[-1], backend=args.backend
            )
            crit = res.critical_path_seconds
            out.append({
                "scenario": name, "engine": res.engine, "k": k,
                "backend": res.backend, "status": res.status,
                "now": res.now, "events": res.events,
                "windows": res.windows_run, "window": res.window,
                "cut_links": res.cut_links,
                "flits_exchanged": res.flits_exchanged,
                "wall_seconds": round(res.wall_seconds, 4),
                "critical_path_seconds": round(crit, 4),
                "events_per_sec": round(res.events / crit, 1),
                "digest": timeline_digest(res.timeline),
            })
            print(f"{name}/{res.engine}/K={k}: {res.events} events, "
                  f"critical path {crit:.2f}s "
                  f"({res.events / crit:,.0f} ev/s)")
    if args.json:
        with open(args.json, "w") as fh:
            json.dump(out, fh, indent=2)
        print(f"wrote {args.json}")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.par",
        description="partitioned-run crosscheck and scaling bench",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    cc = sub.add_parser("crosscheck", help="sequential vs K-way byte parity")
    cc.add_argument("--partitions", type=int, nargs="+", default=[2],
                    metavar="K")
    cc.add_argument("--scenario", action="append", default=None)
    cc.add_argument("--engine", default="array")
    cc.add_argument("--backend", default="inline",
                    choices=("inline", "process"))
    cc.add_argument("--digests", action="store_true",
                    help="print the shared timeline digest per scenario")
    cc.set_defaults(func=_cmd_crosscheck)

    bench = sub.add_parser("bench", help="sequential vs partitioned rates")
    bench.add_argument("--scenario", action="append", default=None)
    bench.add_argument("--shards", type=lambda s: [int(x) for x in
                                                   s.split(",")],
                       default=[2, 4], metavar="N,M,...")
    bench.add_argument("--engines", nargs="+", default=["active"],
                       help="sequential engines to time; the last one is "
                            "also the shard engine")
    bench.add_argument("--backend", default="inline",
                       choices=("inline", "process"))
    bench.add_argument("--json", default=None, metavar="PATH",
                       help="write results as JSON to PATH")
    bench.set_defaults(func=_cmd_bench)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover - exercised by CI
    sys.exit(main())
