"""One shard of a window-partitioned flit-level simulation.

A :class:`ShardHarness` wraps a *replica* of the full scenario network
(`FlitNetwork(shard=...)`) that only advances its local partition.  The
coordinator (:mod:`repro.par.runner`) drives every shard in lockstep
barrier windows; at each window edge the harness

* **captures** everything its components pushed onto outbound cut wires
  (forward flits) and inbound cut wires (reverse STOP/GO symbols) since
  the previous edge, clearing the wires so nothing ships twice, and
* **injects** the batches addressed to it into its replica wires with the
  exact bookkeeping a local ``Wire.push`` / ``signal_stop`` would have
  done (site tracking, empty->non-empty wake, ring-slot writes).

Why this is exact: with window width ``W = min(cut wire delay)``, a flit
pushed at tick ``t`` in window ``(t0, t1]`` has due tick ``t + delay >=
t1 + 1`` -- nothing pushed inside a window can be consumed before the
next window starts, so moving it between replicas at the edge is
invisible to the simulation.  The same holds for reverse symbols (same
per-wire delay).  Batches stay due-sorted across windows because each
wire's delay is constant, so dues are monotonic in the push tick.

Fault barriers: the coordinator injects the edge's batches *first*, then
calls :meth:`apply_fault` on every shard.  Post-capture the sender's
replica of a cut wire is empty and the receiver's replica holds every
undelivered flit, so the replicated ``fail_link`` loses exactly the worms
the sequential run loses.  Only one designated shard keeps its
:class:`~repro.obs.Observability` bundle enabled during barrier
operations so fault/loss counters are not multiplied by K.
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Optional, Tuple

import repro.net.flitlevel.network as _netmod
from repro.net.flitlevel.array_lane import _WID_SHIFT, decode_flit, encode_flit
from repro.net.topology import TopologyPartition, partition_topology

__all__ = ["ShardHarness", "fail_node_flit", "rebind_worm_ids"]

#: Forward batches: cut-direction key -> [(due_tick, encoded_flit), ...].
#: Reverse batches: cut-direction key -> [(due_tick, stop_bool), ...].
#: A direction key is ``(link_id, slot)`` where ``slot`` indexes the
#: link's wire list (lane ``l``'s a->b wire at slot ``2l``, its b->a wire
#: at ``2l + 1`` -- see ``FlitNetwork._link_wires``); a single-lane fabric
#: therefore keeps the original ``(link_id, 0)`` / ``(link_id, 1)`` keys.
#: A given wire is *outbound* for the shard owning the sending endpoint
#: and *inbound* for the other.
CutKey = Tuple[int, int]


def rebind_worm_ids(base: int) -> None:
    """Restart the module-global worm/message id counters at ``base``.

    Every replica (and the sequential reference) must mint identical ids
    for identical traffic: encoded flits reference worm ids across shard
    boundaries, so the counters are aligned before each network build.
    """
    _netmod._flit_worm_ids = itertools.count(base)
    _netmod._flit_message_ids = itertools.count(base)


def fail_node_flit(net, nid: int) -> List[int]:
    """Node-fault semantics for a flit-level network: cut every live
    adjacent link (in link-id order -- in-flight flits are lost, worms
    expunged), then mark the node itself dead for routing.  Used
    identically by the sequential reference and every shard replica, so
    loss sets and obs event streams match by construction."""
    topo = net.topology
    lost: set = set()
    for link in sorted(topo.adjacent(nid), key=lambda l: l.id):
        if topo.link_alive(link.id):
            lost.update(net.fail_link(link.id))
    topo.fail_node(nid)
    net._refresh_down_ports()
    net._wake_all()
    return sorted(lost)


class ShardHarness:
    """A shard replica plus its window-edge exchange machinery.

    Parameters
    ----------
    scenario:
        The :class:`~repro.par.scenarios.ParScenario` to replicate.
    k, index:
        Shard count and this shard's index in the deterministic
        partition of the scenario topology.
    engine:
        Flit engine for the replica (``"dense"``, ``"active"`` or
        ``"array"``).
    wid_base:
        Start value for the worm-id counters; identical across replicas.
    obs:
        When true the replica carries a metrics-only Observability
        bundle (no tracer/kernel) whose snapshot the coordinator merges.
    """

    def __init__(
        self,
        scenario,
        k: int,
        index: int,
        engine: str,
        wid_base: int,
        obs: bool = False,
    ) -> None:
        self.scenario = scenario
        self.k = k
        self.index = index
        self.engine = engine
        self.partition: TopologyPartition = partition_topology(
            scenario.topology(), k, scenario.partition_scheme
        )
        rebind_worm_ids(wid_base)
        local = frozenset(self.partition.shards[index]) if k > 1 else None
        bundle = None
        if obs:
            from repro.obs import Observability

            bundle = Observability(tracer=False, kernel=False)
        self.net = scenario.build_net(engine, shard=local, obs=bundle)
        self.obs = bundle
        self._lane = self.net._lane

        # -- cut-wire classification ------------------------------------
        topo = self.net.topology
        shard_of = self.partition.shard_of
        self.out_wires: Dict[CutKey, object] = {}
        self.in_wires: Dict[CutKey, object] = {}
        for lid in self.partition.cut_links:
            link = topo.links[lid]
            for slot, wire in enumerate(self.net._link_wires[lid]):
                a_to_b = slot % 2 == 0
                if shard_of[link.a] == index:
                    side = self.out_wires if a_to_b else self.in_wires
                    side[(lid, slot)] = wire
                if shard_of[link.b] == index:
                    side = self.in_wires if a_to_b else self.out_wires
                    side[(lid, slot)] = wire
        if self._lane is not None:
            self._out_groups = self._delay_groups(self.out_wires)
            self._in_groups = self._delay_groups(self.in_wires)

        # -- injection / delivery capture -------------------------------
        # All call sites look these methods up on the network instance at
        # call time, so instance-attribute shadowing intercepts every
        # engine (object adapters and the array lane's receive path).
        self._new_injections: List[Tuple[int, int]] = []
        self._new_deliveries: List[Tuple[int, int, int, Optional[int]]] = []
        net = self.net
        orig_note = net._note_injection
        records = net.records

        def _note_injection(record) -> None:
            orig_note(record)
            self._new_injections.append((record.wid, record.injected_at))

        orig_delivery = net.record_delivery

        def _record_delivery(wid: int, host: int, now: int) -> None:
            record = records.get(wid)
            fresh = record is not None and host not in record.delivered_at
            orig_delivery(wid, host, now)
            if fresh:
                latency = (
                    now - record.injected_at
                    if record.injected_at is not None
                    else None
                )
                self._new_deliveries.append((now, host, wid, latency))

        net._note_injection = _note_injection
        net.record_delivery = _record_delivery

    def _delay_groups(self, wires: Dict[CutKey, object]):
        """Group cut wires by delay for block ring scans: one fancy-index
        gather per (delay, direction-set) instead of one per wire."""
        import numpy as np

        by_delay: Dict[int, List[CutKey]] = {}
        for key, wire in wires.items():
            by_delay.setdefault(wire.delay, []).append(key)
        groups = []
        for delay in sorted(by_delay):
            keys = sorted(by_delay[delay])
            rows = np.array([wires[key]._row for key in keys], dtype=np.int64)
            groups.append((delay, keys, rows))
        return groups

    # -- windows ---------------------------------------------------------------
    def run_window(self, until: int) -> Tuple[int, int]:
        """Advance to exactly ``until``; returns (progress events inside
        the window, latest tick a progress event fired on).

        The progress baseline is resynced first: barrier-time record
        churn (``lose_worm`` at a fault) must not read as an event on the
        window's first tick -- the sequential ``run()`` likewise snapshots
        its counters after the driver's fault is applied."""
        net = self.net
        net._last_progress_events = net._progress_events
        events = net.run_window(until)
        return events, net._last_progress_tick

    # -- window-edge capture -----------------------------------------------------
    def capture_edge(self, t_edge: int):
        """Drain everything pushed since the previous edge.

        Returns ``(forward, reverse, injections, deliveries)`` where
        forward/reverse map cut-direction keys to due-ordered batches and
        injections/deliveries are this window's newly observed
        ``(wid, injected_at)`` / ``(tick, host, wid, latency)`` events.
        """
        forward: Dict[CutKey, list] = {}
        reverse: Dict[CutKey, list] = {}
        if self._lane is None:
            for key in sorted(self.out_wires):
                wire = self.out_wires[key]
                if wire._forward:
                    forward[key] = [
                        (due, encode_flit(flit)) for due, flit in wire._forward
                    ]
                    wire._forward.clear()
            for key in sorted(self.in_wires):
                wire = self.in_wires[key]
                if wire._reverse:
                    reverse[key] = [
                        (due, bool(stop)) for due, stop in wire._reverse
                    ]
                    wire._reverse.clear()
        else:
            import numpy as np

            lane = self._lane
            dmask = lane.dmask
            for delay, keys, rows in self._out_groups:
                cols = np.arange(t_edge + 1, t_edge + 1 + delay) & dmask
                block = lane.w_buf[np.ix_(rows, cols)]
                ii, jj = np.nonzero(block)
                if ii.size:
                    vals = block[ii, jj].tolist()
                    for i, j, code in zip(ii.tolist(), jj.tolist(), vals):
                        forward.setdefault(keys[i], []).append(
                            (t_edge + 1 + j, code)
                        )
                    lane.w_buf[rows[ii], cols[jj]] = 0
            for delay, keys, rows in self._in_groups:
                cols = np.arange(t_edge + 1, t_edge + 1 + delay) & dmask
                block = lane.w_rsig[np.ix_(rows, cols)]
                ii, jj = np.nonzero(block >= 0)
                if ii.size:
                    vals = block[ii, jj].tolist()
                    for i, j, sig in zip(ii.tolist(), jj.tolist(), vals):
                        reverse.setdefault(keys[i], []).append(
                            (t_edge + 1 + j, bool(sig))
                        )
                    lane.w_rsig[rows[ii], cols[jj]] = -1
                    lane._rsig_pending -= ii.size
        injections = self._new_injections
        deliveries = self._new_deliveries
        self._new_injections = []
        self._new_deliveries = []
        return forward, reverse, injections, deliveries

    # -- window-edge injection ---------------------------------------------------
    def inject(self, forward, reverse, injected) -> None:
        """Apply the batches addressed to this shard, mirroring the
        bookkeeping of a local push: dead wires swallow forward flits,
        first-flit-of-a-worm registers the wire in the site index, and
        the active engine's empty->non-empty wake fires.  ``injected``
        carries ``(wid, injected_at)`` stamps from remote source
        adapters (needed for delivery-latency obs on this side)."""
        net = self.net
        if self._lane is None:
            for key in sorted(forward):
                wire = self.in_wires[key]
                if not wire.alive:
                    continue  # a dead wire swallows flits, as push does
                if not wire._forward and wire.notify is not None:
                    wire.notify()
                append = wire._forward.append
                for due, code in forward[key]:
                    flit = decode_flit(code)
                    if flit.wid != wire._tracked_wid:
                        wire._tracked_wid = flit.wid
                        net._register_site(flit.wid, wire)
                    append((due, flit))
            for key in sorted(reverse):
                # signal_stop has no aliveness gate; neither does this.
                wire = self.out_wires[key]
                append = wire._reverse.append
                for due, stop in reverse[key]:
                    append((due, stop))
        else:
            lane = self._lane
            dmask = lane.dmask
            tracked = lane.w_tracked
            for key in sorted(forward):
                wire = self.in_wires[key]
                row = wire._row
                if not lane.w_alive[row]:
                    continue
                for due, code in forward[key]:
                    wid = code >> _WID_SHIFT
                    if wid != tracked[row]:
                        tracked[row] = wid
                        net._register_site(wid, wire)
                    lane.w_buf[row, due & dmask] = code
            for key in sorted(reverse):
                row = self.out_wires[key]._row
                for due, stop in reverse[key]:
                    lane.w_rsig[row, due & dmask] = 1 if stop else 0
                    lane._rsig_pending += 1
        records = net.records
        for wid, tick in injected:
            record = records.get(wid)
            if record is not None and record.injected_at is None:
                record.injected_at = tick

    # -- fault barriers ----------------------------------------------------------
    def apply_fault(self, kind: str, target: int, emit_obs: bool) -> List[int]:
        """Replicated fault at a barrier; returns worm ids lost from
        *this replica's* wires (the coordinator unions them).  Obs is
        disabled unless this shard is the designated emitter, so fault
        and loss counters are not K-multiplied."""
        net = self.net
        saved = net.obs
        if not emit_obs:
            net.obs = None
        try:
            if kind == "fail_link":
                return net.fail_link(target)
            if kind == "fail_node":
                return fail_node_flit(net, target)
            raise ValueError(f"unknown fault kind {kind!r}")
        finally:
            net.obs = saved

    def lose_extras(self, wids, emit_obs: bool) -> None:
        """Expunge worms lost on *other* shards' replica wires, so every
        replica's record/killed sets stay identical."""
        net = self.net
        saved = net.obs
        if not emit_obs:
            net.obs = None
        try:
            for wid in wids:
                net.lose_worm(wid)
        finally:
            net.obs = saved

    # -- finalization ------------------------------------------------------------
    def wire_stats(self) -> Dict[int, Tuple[int, int]]:
        """(carried, idles) sums per link for the wire *directions* this
        shard pushes on -- each direction of each link is counted on
        exactly one shard, so the coordinator's per-link sums equal the
        sequential ``snapshot_flitnet`` gauges."""
        net = self.net
        topo = net.topology
        shard_of = self.partition.shard_of
        index = self.index
        stats: Dict[int, Tuple[int, int]] = {}
        for link in topo.links:
            wire_ab, wire_ba = net._link_wires[link.id]
            a_host = topo.node(link.a).is_host
            if a_host or topo.node(link.b).is_host:
                host = link.a if a_host else link.b
                if shard_of[topo.host_switch(host)] != index:
                    continue
                owned = (wire_ab, wire_ba)
            else:
                owned = tuple(
                    wire
                    for end, wire in ((link.a, wire_ab), (link.b, wire_ba))
                    if shard_of[end] == index
                )
                if not owned:
                    continue
            stats[link.id] = (
                sum(w.carried for w in owned),
                sum(w.idles for w in owned),
            )
        return stats

    def finalize(self, status: str, now: int):
        """Land the replica on the coordinator's final clock and reduce
        it: returns (canonical timeline, owned wire stats, normalized obs
        snapshot or None)."""
        from repro.net.flitlevel.crosscheck import worm_timeline

        self.net.now = now
        timeline = worm_timeline(self.net, status)
        snap = None
        if self.obs is not None:
            snap = self.obs.snapshot()
            # The array lane's phase timer measures wall seconds --
            # nondeterministic across runs and shard counts.
            snap["phases"] = None
            snap["kernel"] = None
            snap["trace"] = None
        return timeline, self.wire_stats(), snap
