"""The simulation event loop."""

from __future__ import annotations

from heapq import heappop, heappush
from typing import Any, Generator, List, Optional, Tuple

from repro.sim.events import AllOf, AnyOf, Event, Timeout
from repro.sim.process import Process

Infinity = float("inf")


class EmptySchedule(Exception):
    """Raised internally when the event queue is exhausted."""


class Simulator:
    """A discrete-event simulator with a floating-point clock.

    The clock unit is arbitrary; throughout this reproduction it is the
    *byte-time* of a 640 Mb/s link.

    Example
    -------
    >>> sim = Simulator()
    >>> def proc():
    ...     yield sim.timeout(5)
    ...     return "done"
    >>> p = sim.process(proc())
    >>> sim.run()
    >>> sim.now, p.value
    (5.0, 'done')
    """

    def __init__(self, start_time: float = 0.0) -> None:
        self._now = float(start_time)
        self._queue: List[Tuple[float, int, int, Event]] = []
        self._eid = 0
        self._active_process: Optional[Process] = None

    # -- clock -------------------------------------------------------------
    @property
    def now(self) -> float:
        """The current simulation time."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        """The process currently being resumed, if any."""
        return self._active_process

    # -- event factories ----------------------------------------------------
    def event(self) -> Event:
        """Create a fresh pending event."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """An event that fires ``delay`` time units from now."""
        return Timeout(self, delay, value)

    def process(self, generator: Generator[Event, Any, Any], name: str = "") -> Process:
        """Start a new process running ``generator``."""
        return Process(self, generator, name=name)

    def all_of(self, events) -> AllOf:
        """Composite event triggering when all ``events`` have triggered."""
        return AllOf(self, events)

    def any_of(self, events) -> AnyOf:
        """Composite event triggering when any of ``events`` has triggered."""
        return AnyOf(self, events)

    # -- scheduling ----------------------------------------------------------
    def _schedule(self, event: Event, delay: float, priority: int) -> None:
        self._eid += 1
        heappush(self._queue, (self._now + delay, priority, self._eid, event))

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none."""
        return self._queue[0][0] if self._queue else Infinity

    def step(self) -> None:
        """Process exactly one event."""
        try:
            when, _, _, event = heappop(self._queue)
        except IndexError:
            raise EmptySchedule() from None
        self._now = when
        event._process()

    def run(self, until: Optional[float] = None) -> None:
        """Run until the queue drains, or until time ``until`` is reached.

        When ``until`` is given the clock is advanced exactly to ``until``
        even if no event is scheduled there.
        """
        if until is not None:
            until = float(until)
            if until < self._now:
                raise ValueError(f"until ({until}) is in the past (now={self._now})")
        try:
            while True:
                if until is not None and self.peek() > until:
                    self._now = until
                    return
                self.step()
        except EmptySchedule:
            if until is not None and until is not Infinity:
                self._now = until
            return

    def run_process(self, generator: Generator[Event, Any, Any]) -> Any:
        """Convenience: run ``generator`` as a process to completion.

        Returns the process return value; raises if the process failed.
        """
        proc = self.process(generator)
        while proc.is_alive:
            self.step()
        if not proc.ok:
            raise proc.value
        return proc.value
