"""The simulation event loop."""

from __future__ import annotations

from heapq import heappop, heappush
from typing import Any, Callable, Generator, List, Optional, Tuple

from repro.sim.events import AllOf, AnyOf, Event, Timeout
from repro.sim.process import Process
from repro.sim.trace import SimTrace

Infinity = float("inf")

#: Heap keys pack (priority, eid) into one integer: normal events (the vast
#: majority) keep their raw small-int eid, urgent events are biased negative
#: by this constant, so a single int comparison replaces the old
#: (priority, eid) tuple comparison while preserving urgent-before-normal
#: ordering at equal timestamps — and the common case pays no arithmetic.
_URGENT_KEY = 1 << 62


class EmptySchedule(Exception):
    """Raised internally when the event queue is exhausted."""


class _DeferredCall:
    """A bare scheduled callback: cheaper than a Timeout + callback pair.

    Queue entries only need a ``_process()`` method; this skips the Event
    machinery (state, value, callback list) for fire-and-forget actions such
    as channel releases on the worm hot path.
    """

    __slots__ = ("fn",)

    def __init__(self, fn: Callable[[], None]) -> None:
        self.fn = fn

    def _process(self) -> None:
        self.fn()


class Simulator:
    """A discrete-event simulator with a floating-point clock.

    The clock unit is arbitrary; throughout this reproduction it is the
    *byte-time* of a 640 Mb/s link.

    Parameters
    ----------
    start_time:
        Initial clock value.
    trace:
        Optional :class:`~repro.sim.trace.SimTrace` that counts processed
        events and process wakeups (cheap enough to leave on for profiling
        runs; ``None`` costs one pointer test per event).
    obs:
        Optional :class:`~repro.obs.Observability` bundle; when given (and
        ``trace`` is not), its kernel :class:`SimTrace` is attached so
        kernel event counts land in the bundle's snapshots.

    Example
    -------
    engine:
        ``"heap"`` (default) for this single-heap engine, or ``"packed"``
        to construct a :class:`~repro.sim.packed.PackedSimulator` — a
        byte-compatible core with a timestamp-bucket queue and an inlined
        dispatch loop that is several times faster on cascade-heavy
        workloads (see ``benchmarks/bench_kernel_events.py``).

    Example
    -------
    >>> sim = Simulator()
    >>> def proc():
    ...     yield sim.timeout(5)
    ...     return "done"
    >>> p = sim.process(proc())
    >>> sim.run()
    >>> sim.now, p.value
    (5.0, 'done')
    """

    def __new__(
        cls,
        start_time: float = 0.0,
        trace: Optional[SimTrace] = None,
        obs: Optional[Any] = None,
        engine: str = "heap",
    ) -> "Simulator":
        if engine not in ("heap", "packed"):
            raise ValueError(
                f"unknown simulator engine {engine!r}; choose 'heap' or 'packed'"
            )
        if engine == "packed" and cls is Simulator:
            from repro.sim.packed import PackedSimulator

            cls = PackedSimulator
        return object.__new__(cls)

    def __init__(
        self,
        start_time: float = 0.0,
        trace: Optional[SimTrace] = None,
        obs: Optional[Any] = None,
        engine: str = "heap",
    ) -> None:
        if trace is None and obs is not None:
            trace = obs.kernel
        self._now = float(start_time)
        self._queue: List[Tuple[float, int, Any]] = []
        self._eid = 0
        self._active_process: Optional[Process] = None
        self._trace = trace

    # -- clock -------------------------------------------------------------
    @property
    def now(self) -> float:
        """The current simulation time."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        """The process currently being resumed, if any."""
        return self._active_process

    @property
    def trace(self) -> Optional[SimTrace]:
        """The attached profiling trace, if any."""
        return self._trace

    @property
    def engine(self) -> str:
        """The active event-core implementation (``"heap"`` or ``"packed"``)."""
        return "heap"

    @property
    def pending_count(self) -> int:
        """Number of queued-but-unprocessed entries."""
        return len(self._queue)

    # -- event factories ----------------------------------------------------
    def event(self) -> Event:
        """Create a fresh pending event."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """An event that fires ``delay`` time units from now."""
        return Timeout(self, delay, value)

    def process(self, generator: Generator[Event, Any, Any], name: str = "") -> Process:
        """Start a new process running ``generator``."""
        return Process(self, generator, name=name)

    def all_of(self, events) -> AllOf:
        """Composite event triggering when all ``events`` have triggered."""
        return AllOf(self, events)

    def any_of(self, events) -> AnyOf:
        """Composite event triggering when any of ``events`` has triggered."""
        return AnyOf(self, events)

    # -- scheduling ----------------------------------------------------------
    def _schedule(self, event: Event, delay: float, priority: int) -> None:
        if delay < 0:
            # Timeout and schedule_call validate their own delays, but a
            # buggy internal caller could otherwise schedule into the past
            # and silently break clock monotonicity.
            raise ValueError(f"negative delay {delay}")
        self._eid += 1
        heappush(
            self._queue,
            (self._now + delay, self._eid if priority else self._eid - _URGENT_KEY, event),
        )

    def _post(self, event: Any) -> None:
        """Enqueue an *already triggered* event at the current instant.

        Used by the resource grant cascade: the caller has just verified
        the event is pending and set its value, so the state checks of
        :meth:`~repro.sim.events.Event.succeed` would be redundant.
        """
        self._eid += 1
        heappush(self._queue, (self._now, self._eid, event))

    def schedule_many(
        self,
        events: Any,
        delay: float = 0.0,
        value: Any = None,
        priority: int = 1,
    ) -> None:
        """Trigger and enqueue a batch of pending events at ``now + delay``.

        Semantically ``ev.succeed(value, priority)`` per event at the given
        offset; the packed engine overrides this to resolve the target
        bucket once for the whole batch.
        """
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        when = self._now + delay
        queue = self._queue
        for ev in events:
            if ev._state:  # not PENDING
                raise RuntimeError(f"{ev!r} has already been triggered")
            ev._ok = True
            ev._value = value
            ev._state = 1  # TRIGGERED
            self._eid += 1
            heappush(
                queue,
                (when, self._eid if priority else self._eid - _URGENT_KEY, ev),
            )

    def pop_ready(self) -> List[Any]:
        """Advance the clock to the next scheduled instant and return every
        entry due there (in dispatch order), removing them from the queue.

        The caller takes over dispatch (``entry._process()``).  Returns an
        empty list when nothing is scheduled.
        """
        queue = self._queue
        if not queue:
            return []
        when = queue[0][0]
        self._now = when
        ready: List[Any] = []
        while queue and queue[0][0] == when:
            ready.append(heappop(queue)[2])
        return ready

    def schedule_call(self, delay: float, fn: Callable[[], None]) -> None:
        """Run ``fn()`` at ``now + delay`` without allocating an Event.

        The callback cannot be waited on or cancelled; use :meth:`timeout`
        when a process needs to yield on the delay.
        """
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        self._eid += 1
        heappush(
            self._queue,
            (self._now + delay, self._eid, _DeferredCall(fn)),
        )

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none."""
        return self._queue[0][0] if self._queue else Infinity

    def step(self) -> None:
        """Process exactly one event."""
        try:
            when, _, event = heappop(self._queue)
        except IndexError:
            raise EmptySchedule() from None
        self._now = when
        trace = self._trace
        if trace is not None:
            trace._record(event)
        event._process()

    def run(self, until: Optional[float] = None) -> None:
        """Run until the queue drains, or until time ``until`` is reached.

        When ``until`` is given the clock is advanced exactly to ``until``
        even if no event is scheduled there.
        """
        queue = self._queue
        trace = self._trace
        if until is None:
            if trace is None:
                while queue:
                    when, _, event = heappop(queue)
                    self._now = when
                    event._process()
            else:
                while queue:
                    when, _, event = heappop(queue)
                    self._now = when
                    trace._record(event)
                    event._process()
            return
        until = float(until)
        if until < self._now:
            raise ValueError(f"until ({until}) is in the past (now={self._now})")
        if trace is None:
            while queue and queue[0][0] <= until:
                when, _, event = heappop(queue)
                self._now = when
                event._process()
        else:
            while queue and queue[0][0] <= until:
                when, _, event = heappop(queue)
                self._now = when
                trace._record(event)
                event._process()
        if until is not Infinity:
            self._now = until

    def run_window(self, until: float) -> int:
        """Window-bounded run for barrier-synchronized parallel drivers
        (:mod:`repro.par`): process every event with timestamp ``<=
        until``, land the clock exactly on ``until``, and return the
        number of events processed.  Unlike :meth:`run` the caller learns
        whether the window did any work, which a conservative coordinator
        needs to reconstruct global quiescence across shards."""
        until = float(until)
        if until < self._now:
            raise ValueError(f"until ({until}) is in the past (now={self._now})")
        queue = self._queue
        trace = self._trace
        processed = 0
        while queue and queue[0][0] <= until:
            when, _, event = heappop(queue)
            self._now = when
            if trace is not None:
                trace._record(event)
            event._process()
            processed += 1
        self._now = until
        return processed

    def run_process(self, generator: Generator[Event, Any, Any]) -> Any:
        """Convenience: run ``generator`` as a process to completion.

        Returns the process return value; raises if the process failed.
        Raises :class:`RuntimeError` (naming the stuck process) if the event
        queue drains while the process still waits on an event that will
        never be triggered.
        """
        proc = self.process(generator)
        while proc.is_alive:
            try:
                self.step()
            except EmptySchedule:
                raise RuntimeError(
                    f"process {proc.name!r} starved: the event queue drained "
                    "while it was still waiting on an event that is never "
                    "triggered"
                ) from None
        if not proc.ok:
            raise proc.value
        return proc.value
