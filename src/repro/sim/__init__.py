"""Discrete-event simulation kernel.

A small, dependency-free, simpy-style kernel used as the substitute for the
Maisie simulation language the paper's simulator [BGK+96] was written in.

The kernel provides:

* :class:`~repro.sim.engine.Simulator` -- the event loop and clock.
* :class:`~repro.sim.events.Event`, :class:`~repro.sim.events.Timeout`,
  condition events and interrupts.
* :class:`~repro.sim.process.Process` -- generator-coroutine processes.
* :mod:`~repro.sim.resources` -- FIFO resources, stores and byte-counted
  containers (used for links, ports and adapter buffer pools).
* :mod:`~repro.sim.monitor` -- statistics collectors.
* :mod:`~repro.sim.rng` -- named, reproducible random streams.

The simulation clock unit throughout the reproduction is the **byte-time**:
the time to transmit one byte on a 640 Mb/s Myrinet link (12.5 ns).
"""

from repro.sim.engine import Simulator
from repro.sim.events import (
    AllOf,
    AnyOf,
    Event,
    Interrupt,
    Timeout,
)
from repro.sim.process import Process
from repro.sim.resources import Container, Resource, Store
from repro.sim.monitor import Histogram, RateMeter, TallyStat, TimeWeightedStat
from repro.sim.rng import RandomStreams
from repro.sim.trace import SimTrace

__all__ = [
    "AllOf",
    "AnyOf",
    "Container",
    "Event",
    "Histogram",
    "Interrupt",
    "Process",
    "RandomStreams",
    "RateMeter",
    "Resource",
    "SimTrace",
    "Simulator",
    "Store",
    "TallyStat",
    "Timeout",
    "TimeWeightedStat",
]
