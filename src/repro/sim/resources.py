"""Shared resources: FIFO resources, stores and counted containers.

These model the contended entities of the wormhole network: channels and
output ports (:class:`Resource`), adapter packet queues (:class:`Store`) and
adapter buffer pools counted in bytes (:class:`Container`).
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Any, Callable, Deque, List, Optional

from repro.sim.events import Event

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import Simulator


class Request(Event):
    """A pending claim on a :class:`Resource`; triggers when granted."""

    __slots__ = ("resource",)

    def __init__(self, resource: "Resource") -> None:
        # Flattened Event.__init__ + request admission: every worm hop
        # allocates one of these, so the super().__init__ dispatch and the
        # _do_request indirection are folded into straight-line slot writes.
        self.sim = resource.sim
        self._defused = False
        self.resource = resource
        users = resource.users
        if len(users) < resource.capacity:
            users.append(self)
            # Uncontended grant: no waiter can be subscribed yet (the
            # request object is still being constructed), so skip the
            # event-queue round-trip — the requester resumes synchronously
            # on yield (the _succeed_immediately fast path, inlined).
            self._value = self
            self._ok = True
            self._state = 2  # PROCESSED
            self.callbacks = None
        else:
            self._value = None
            self._ok = True
            self._state = 0  # PENDING
            self.callbacks = []
            resource.queue.append(self)

    def cancel(self) -> None:
        """Withdraw an ungranted request (e.g. on timeout)."""
        self.resource._cancel(self)


class Resource:
    """A resource with ``capacity`` slots and a FIFO wait queue.

    The paper's switches serve blocked worms in round-robin order across
    input ports; at the worm level a FIFO per contended channel is the
    equivalent arrival-order discipline (true per-port round-robin is
    implemented in the flit-level substrate).
    """

    def __init__(self, sim: "Simulator", capacity: int = 1) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.sim = sim
        self.capacity = capacity
        self.users: List[Request] = []
        self.queue: Deque[Request] = deque()

    @property
    def count(self) -> int:
        """Number of granted requests."""
        return len(self.users)

    def request(self) -> Request:
        """Claim a slot; the returned event triggers when the claim is granted."""
        return Request(self)

    def release(self, request: Request) -> None:
        """Return a previously granted slot."""
        try:
            self.users.remove(request)
        except ValueError:
            raise RuntimeError("releasing a request that does not hold the resource")
        if self.queue:
            self._grant_next()

    def _cancel(self, request: Request) -> None:
        if request in self.users:
            self.release(request)
            return
        try:
            self.queue.remove(request)
        except ValueError:
            pass

    def _grant_next(self) -> None:
        queue = self.queue
        users = self.users
        capacity = self.capacity
        while queue and len(users) < capacity:
            nxt = queue.popleft()
            if nxt._state:  # triggered: cancelled/failed while queued
                continue
            users.append(nxt)
            # The contended-grant cascade: succeed() re-checks state we
            # just verified, so poke the grant straight onto the queue at
            # the current instant (identical ordering and semantics).
            nxt._ok = True
            nxt._value = nxt
            nxt._state = 1  # TRIGGERED
            self.sim._post(nxt)


class StorePut(Event):
    __slots__ = ("item",)

    def __init__(self, store: "Store", item: Any) -> None:
        super().__init__(store.sim)
        self.item = item
        store._do_put(self)


class StoreGet(Event):
    __slots__ = ("filter",)

    def __init__(self, store: "Store", filter: Optional[Callable[[Any], bool]]) -> None:
        super().__init__(store.sim)
        self.filter = filter
        store._do_get(self)


class Store:
    """An unbounded-or-bounded FIFO of items with blocking get/put."""

    def __init__(self, sim: "Simulator", capacity: float = float("inf")) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.sim = sim
        self.capacity = capacity
        self.items: Deque[Any] = deque()
        self._putters: Deque[StorePut] = deque()
        self._getters: Deque[StoreGet] = deque()

    def __len__(self) -> int:
        return len(self.items)

    def put(self, item: Any) -> StorePut:
        """Deposit ``item``; blocks (as an event) while the store is full."""
        return StorePut(self, item)

    def get(self, filter: Optional[Callable[[Any], bool]] = None) -> StoreGet:
        """Withdraw the first item (matching ``filter`` if given)."""
        return StoreGet(self, filter)

    def _do_put(self, event: StorePut) -> None:
        if len(self.items) < self.capacity:
            self.items.append(event.item)
            event.succeed()
            self._serve_getters()
        else:
            self._putters.append(event)

    def _do_get(self, event: StoreGet) -> None:
        self._getters.append(event)
        self._serve_getters()

    def _serve_getters(self) -> None:
        served = True
        while served and self._getters:
            served = False
            for getter in list(self._getters):
                item = self._match(getter)
                if item is _NO_ITEM:
                    continue
                self.items.remove(item)
                self._getters.remove(getter)
                getter.succeed(item)
                served = True
                self._admit_putters()
                break

    def _match(self, getter: StoreGet) -> Any:
        for item in self.items:
            if getter.filter is None or getter.filter(item):
                return item
        return _NO_ITEM

    def _admit_putters(self) -> None:
        while self._putters and len(self.items) < self.capacity:
            putter = self._putters.popleft()
            self.items.append(putter.item)
            putter.succeed()


class _NoItem:
    __slots__ = ()


_NO_ITEM = _NoItem()


class ContainerGet(Event):
    __slots__ = ("amount", "container")

    def __init__(self, container: "Container", amount: float) -> None:
        super().__init__(container.sim)
        self.amount = amount
        self.container = container
        container._do_get(self)

    def cancel(self) -> None:
        """Withdraw an unsatisfied get (e.g. buffer-wait timeout)."""
        try:
            self.container._waiters.remove(self)
        except ValueError:
            pass


class Container:
    """A counted pool (e.g. an adapter buffer pool measured in bytes).

    ``get`` blocks until the requested amount is available; ``put`` returns
    capacity and wakes waiters in FIFO order.  FIFO wake-up preserves the
    paper's arrival-order service of blocked worms.
    """

    def __init__(
        self, sim: "Simulator", capacity: float, init: Optional[float] = None
    ) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.sim = sim
        self.capacity = capacity
        self.level = capacity if init is None else float(init)
        if not 0 <= self.level <= capacity:
            raise ValueError("init level outside [0, capacity]")
        self._waiters: Deque[ContainerGet] = deque()

    def get(self, amount: float) -> ContainerGet:
        """Take ``amount`` from the pool; blocks while insufficient."""
        if amount < 0:
            raise ValueError("amount must be non-negative")
        if amount > self.capacity:
            raise ValueError(
                f"requested {amount} exceeds container capacity {self.capacity}"
            )
        return ContainerGet(self, amount)

    def put(self, amount: float) -> None:
        """Return ``amount`` to the pool (immediate, never blocks)."""
        if amount < 0:
            raise ValueError("amount must be non-negative")
        if self.level + amount > self.capacity + 1e-9:
            raise RuntimeError("container overfull: put exceeds capacity")
        self.level += amount
        self._serve()

    def try_get(self, amount: float) -> bool:
        """Non-blocking take; True on success.

        Only succeeds when no earlier waiter is queued, preserving FIFO
        fairness.
        """
        if not self._waiters and self.level >= amount:
            self.level -= amount
            return True
        return False

    def _do_get(self, event: ContainerGet) -> None:
        if not self._waiters and self.level >= event.amount:
            self.level -= event.amount
            event.succeed(event.amount)
        else:
            self._waiters.append(event)

    def _serve(self) -> None:
        while self._waiters and self.level >= self._waiters[0].amount:
            waiter = self._waiters.popleft()
            if waiter.triggered:
                continue
            self.level -= waiter.amount
            waiter.succeed(waiter.amount)
