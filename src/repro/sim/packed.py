"""A packed, bucketed event core for the DES kernel.

``Simulator(engine="packed")`` swaps the single binary heap of
``(time, eid, event)`` tuples for a *timestamp-bucket* queue: a heap of
distinct timestamps plus a side table mapping each timestamp to the list
of events due at that instant (normal and urgent lists kept separately,
preallocated lists recycled through a freelist).  The saturated workloads
this targets — the contended-grant cascade in
:mod:`repro.sim.resources`, worm hops releasing at the same byte-time —
schedule dozens of events per instant, so the bucket design collapses
per-event heap traffic into one heap operation per *distinct* timestamp
and turns same-instant scheduling into a list append (same-instant
grants go straight into the bucket currently being drained).

On top of the queue, :meth:`PackedSimulator.run` dispatches each bucket
in a tight inlined loop: the event-processing state machine and the
generator-resume step of :class:`PackedProcess` are unrolled into the
loop body, eliminating the callback-closure and bound-method allocations
that dominate the stock engine's profile.  Buckets are drained by
popping from a reversed list, so an exception mid-dispatch leaves the
queue exactly as the heap engine would (processed entries gone, the rest
intact) without per-event cursor bookkeeping.  The semantics are
identical to the heap engine — same FIFO order within a priority class,
urgent events still preempt normals scheduled at the same instant (even
while that instant is being drained), failures still surface after
callbacks — and the packed parity suite pins this behaviour against the
stock engine's trace counts.

Design note: an int-key packing of ``(time, seq)`` into one word was
considered first, but times are floats in this kernel and per-event heap
sifts remain the cost either way; grouping same-instant events removes
them entirely, which measures strictly faster on the cascade workloads.
"""

from __future__ import annotations

from heapq import heappop, heappush
from typing import Any, Callable, Generator, Iterable, List, Optional

from repro.sim.engine import EmptySchedule, Infinity, Simulator, _DeferredCall
from repro.sim.events import NORMAL, TRIGGERED, Event, Timeout
from repro.sim.process import Process
from repro.sim.trace import SimTrace


class PackedProcess(Process):
    """A process that subscribes *itself* to the event it waits on.

    The stock :class:`Process` appends a fresh ``self._waiter`` bound
    method per wait; on the packed engine the process object itself is
    the callback (it is callable), saving that allocation and letting
    the packed run loop recognise waiters with one ``type()`` check and
    resume them inline.
    """

    __slots__ = ()

    def __call__(self, event: Event) -> None:
        # Generic-callback entry point: anything that collected ``self``
        # from an event's callback list (e.g. ``step()``) lands here.
        self._target = None
        self._resume(event)

    def _resume(self, event: Event) -> None:
        # Mirrors Process._resume exactly, except the final subscription
        # appends ``self`` instead of a fresh ``self._waiter`` closure.
        # The inlined copy in PackedSimulator.run() must stay in sync.
        trace = self.sim._trace
        if trace is not None:
            trace._wakeup(self.name)
        self.sim._active_process = self
        while True:
            try:
                if event._ok:
                    target = self._gen.send(event._value)
                else:
                    event._defused = True
                    target = self._gen.throw(event._value)
            except StopIteration as stop:
                self.sim._active_process = None
                self.succeed(stop.value)
                return
            except BaseException as exc:
                self.sim._active_process = None
                self.fail(exc)
                return

            if not isinstance(target, Event):
                exc = RuntimeError(
                    f"process {self.name!r} yielded a non-event: {target!r}"
                )
                event = Event(self.sim)
                event._ok = False
                event._value = exc
                event._defused = True
                continue
            if target.sim is not self.sim:
                raise RuntimeError("yielded an event from a different simulator")

            if target._state == 2:  # PROCESSED: value already available
                event = target
                continue

            self._target = target
            target.callbacks.append(self)
            break
        self.sim._active_process = None

    def _resume_interrupt(self, event: Event) -> None:
        if not self.is_alive:
            event._defused = True
            return
        if self._target is not None and self._target.callbacks is not None:
            try:
                self._target.callbacks.remove(self)
            except ValueError:  # pragma: no cover - defensive
                pass
            self._target = None
        self._resume(event)


# The profiling trace keys event counts by class name; the packed process
# is behaviourally identical to the stock one, so it reports as such.
PackedProcess.__name__ = "Process"
PackedProcess.__qualname__ = "Process"


class _BatchProbe:
    """Placeholder pushed to materialise a bucket in ``schedule_many``."""

    __slots__ = ()


_BATCH_PROBE = _BatchProbe()

#: Shared always-empty list standing in for the inbox/urgent lists while a
#: singleton bucket is dispatched without opening full drain state.  Nothing
#: ever appends to it: the append paths are guarded by ``_cur_t``, which
#: stays ``None`` on the singleton fast path.
_EMPTY: List[Any] = []


class PackedSimulator(Simulator):
    """Drop-in :class:`Simulator` with the bucketed queue and inlined loop.

    Construct via ``Simulator(engine="packed")`` (or directly).  All public
    behaviour matches the heap engine; see the module docstring for the
    mechanism and ``tests/sim/test_packed_parity.py`` for the pinned
    equivalences.

    Drain-state invariants (``_cur_t is not None`` while a bucket is being
    dispatched):

    * ``_drain`` — the current bucket's normal events, *reversed*, consumed
      by ``pop()`` from the tail (so exceptions leave it consistent);
    * ``_inbox`` — normals scheduled at the current instant mid-drain, in
      FIFO order; swapped (reversed) into ``_drain`` once it empties;
    * ``_cur_u``/``_cui`` — urgent events for the instant plus a cursor
      (urgents are rare, so index bookkeeping is confined to them).
    """

    def __init__(
        self,
        start_time: float = 0.0,
        trace: Optional[SimTrace] = None,
        obs: Optional[Any] = None,
        engine: str = "packed",
    ) -> None:
        super().__init__(start_time, trace, obs)
        #: Heap of *distinct* due timestamps (one entry per bucket).
        self._theap: List[float] = []
        #: time -> list of normal-priority events due at that time.
        self._buckets: dict = {}
        #: time -> list of urgent events (rare: bootstraps, interrupts).
        self._ubuckets: dict = {}
        #: Recycled (cleared) bucket lists.
        self._free: List[list] = []
        #: Append cache: the bucket most recently scheduled into.  Many
        #: same-instant timeouts (the saturated pattern) then skip the
        #: dict probe.  Invalidated when that bucket is popped for drain.
        self._lt: Optional[float] = None
        self._lb: Optional[list] = None
        # Drain state; see the class docstring.
        self._drain: Optional[list] = None
        self._inbox: Optional[list] = None
        self._cur_u: Optional[list] = None
        self._cur_t: Optional[float] = None
        self._cui = 0

    # -- introspection -------------------------------------------------------
    @property
    def engine(self) -> str:
        return "packed"

    @property
    def pending_count(self) -> int:
        """Number of queued-but-unprocessed entries (all buckets)."""
        n = sum(len(b) for b in self._buckets.values())
        n += sum(len(b) for b in self._ubuckets.values())
        if self._cur_t is not None:
            n += len(self._drain) + len(self._inbox)
            n += len(self._cur_u) - self._cui
        return n

    # -- event factories -----------------------------------------------------
    def timeout(self, delay: float, value: Any = None) -> Timeout:
        # Flattened Timeout construction: skip the type-call and
        # ``_schedule`` dispatch on the hottest factory.
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        ev = Timeout.__new__(Timeout)
        ev.sim = self
        ev.callbacks = []
        ev._value = value
        ev._ok = True
        ev._state = TRIGGERED
        ev._defused = False
        ev.delay = delay
        t = self._now + delay
        if t == self._lt:
            self._lb.append(ev)
        elif t == self._cur_t:
            self._inbox.append(ev)
        else:
            self._enqueue_normal(ev, t)
        return ev

    def process(
        self, generator: Generator[Event, Any, Any], name: str = ""
    ) -> PackedProcess:
        return PackedProcess(self, generator, name=name)

    # -- scheduling ----------------------------------------------------------
    def _enqueue_normal(self, event: Any, t: float) -> None:
        buckets = self._buckets
        b = buckets.get(t)
        if b is None:
            free = self._free
            b = free.pop() if free else []
            buckets[t] = b
            ub = self._ubuckets
            if not ub or t not in ub:
                heappush(self._theap, t)
        self._lt = t
        self._lb = b
        b.append(event)

    def _schedule(self, event: Event, delay: float, priority: int) -> None:
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        t = self._now + delay
        if priority:  # NORMAL
            if t == self._lt:
                self._lb.append(event)
            elif t == self._cur_t:
                self._inbox.append(event)
            else:
                self._enqueue_normal(event, t)
            return
        # URGENT: preempts normals at the same instant, even mid-drain.
        if t == self._cur_t:
            self._cur_u.append(event)
            return
        ub = self._ubuckets
        b = ub.get(t)
        if b is None:
            free = self._free
            b = free.pop() if free else []
            ub[t] = b
            if t not in self._buckets:
                heappush(self._theap, t)
        b.append(event)

    def _post(self, event: Any) -> None:
        # Already-triggered event due now (the resource grant cascade).
        if self._now == self._cur_t:
            self._inbox.append(event)
        else:
            self._enqueue_normal(event, self._now)

    def schedule_call(self, delay: float, fn: Callable[[], None]) -> None:
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        self._schedule(_DeferredCall(fn), delay, NORMAL)

    # -- batched API ---------------------------------------------------------
    def schedule_many(
        self,
        events: Iterable[Event],
        delay: float = 0.0,
        value: Any = None,
        priority: int = NORMAL,
    ) -> None:
        """Trigger and enqueue a batch of pending events at ``now + delay``.

        Semantically ``ev.succeed(value, priority)`` per event at the given
        offset, but the target bucket is resolved once for the whole batch.
        """
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        t = self._now + delay
        if t == self._cur_t:
            bucket = self._inbox if priority else self._cur_u
        else:
            self._schedule(_BATCH_PROBE, delay, priority)
            bucket = self._lb if priority else self._ubuckets[t]
            bucket.pop()
        append = bucket.append
        for ev in events:
            if ev._state:  # not PENDING
                raise RuntimeError(f"{ev!r} has already been triggered")
            ev._ok = True
            ev._value = value
            ev._state = TRIGGERED
            append(ev)

    def pop_ready(self) -> List[Any]:
        """Advance the clock to the next scheduled instant and return every
        entry due there (urgents first), removing them from the queue.

        The caller takes over dispatch (``entry._process()``); entries the
        caller schedules while processing land in a fresh bucket at the same
        instant and are returned by the next call, preserving engine order.
        Returns an empty list when nothing is scheduled.
        """
        if self._cur_t is not None:
            ready = self._cur_u[self._cui:]
            drain = self._drain
            drain.reverse()
            ready.extend(drain)
            ready.extend(self._inbox)
            self._release_drain_lists()
            if ready:
                return ready
        if not self._theap:
            return []
        t = heappop(self._theap)
        if t == self._lt:
            self._lt = None
        self._now = t
        ready = list(self._ubuckets.pop(t, ()))
        ready.extend(self._buckets.pop(t, ()))
        return ready

    # -- dispatch ------------------------------------------------------------
    def _release_drain_lists(self) -> None:
        free = self._free
        for lst in (self._drain, self._inbox, self._cur_u):
            del lst[:]
            free.append(lst)
        self._drain = self._inbox = self._cur_u = self._cur_t = None
        self._cui = 0

    def _open_bucket(self) -> None:
        """Pop the earliest bucket into the drain state (queue non-empty)."""
        t = heappop(self._theap)
        if t == self._lt:
            self._lt = None
        free = self._free
        nq = self._buckets.pop(t, None)
        if nq is None:
            nq = free.pop() if free else []
        nq.reverse()
        ub = self._ubuckets
        uq = ub.pop(t, None) if ub else None
        if uq is None:
            uq = free.pop() if free else []
        inbox = free.pop() if free else []
        self._drain = nq
        self._inbox = inbox
        self._cur_u = uq
        self._cui = 0
        self._cur_t = t
        self._now = t

    def peek(self) -> float:
        if self._cur_t is not None and (
            self._drain or self._inbox or self._cui < len(self._cur_u)
        ):
            return self._now
        return self._theap[0] if self._theap else Infinity

    def _take_next(self) -> Any:
        while True:
            if self._cur_t is not None:
                uq = self._cur_u
                ui = self._cui
                if ui < len(uq):
                    self._cui = ui + 1
                    return uq[ui]
                drain = self._drain
                if drain:
                    return drain.pop()
                inbox = self._inbox
                if inbox:
                    inbox.reverse()
                    self._drain = inbox
                    self._inbox = drain
                    return inbox.pop()
                self._release_drain_lists()
            theap = self._theap
            if not theap:
                raise EmptySchedule() from None
            # Singleton fast path: a lone normal event at the next instant
            # (sparse-timestamp workloads) skips the drain-state setup.
            t = theap[0]
            ub = self._ubuckets
            if not ub or t not in ub:
                nq = self._buckets.get(t)
                if nq is not None and len(nq) == 1:
                    heappop(theap)
                    del self._buckets[t]
                    if t == self._lt:
                        self._lt = None
                    self._now = t
                    ev = nq.pop()
                    self._free.append(nq)
                    return ev
            self._open_bucket()

    def step(self) -> None:
        event = self._take_next()
        trace = self._trace
        if trace is not None:
            trace._record(event)
        event._process()

    def run_window(self, until: float) -> int:
        """Window-bounded run (see :meth:`Simulator.run_window`): the
        bucket queue replaces the base heap, so the window loop goes
        through :meth:`peek`/:meth:`step`, which understand open drain
        state."""
        until = float(until)
        if until < self._now:
            raise ValueError(f"until ({until}) is in the past (now={self._now})")
        processed = 0
        while True:
            nxt = self.peek()
            if nxt > until or nxt == Infinity:
                break
            self.step()
            processed += 1
        self._now = until
        return processed

    def run(self, until: Optional[float] = None) -> None:
        if until is not None:
            until = float(until)
            if until < self._now:
                raise ValueError(f"until ({until}) is in the past (now={self._now})")
            while True:
                nxt = self.peek()
                if nxt > until or nxt == Infinity:
                    break
                self.step()
            if until is not Infinity:
                self._now = until
            return
        if self._trace is not None:
            # Traced runs are profiling runs; correctness over speed.
            try:
                while True:
                    self.step()
            except EmptySchedule:
                return

        # Untraced drain: the hot loop.  Inlines Event._process and
        # PackedProcess._resume (keep in sync with both).  Normal events
        # pop off the reversed drain list, so an exception propagating out
        # of a callback leaves the queue resumable exactly like the heap
        # engine; only the rare urgent path keeps an index cursor.
        theap = self._theap
        free = self._free
        buckets = self._buckets
        while True:
            fast = False
            if self._cur_t is None:
                if not theap:
                    return
                # Inlined _open_bucket, plus a singleton fast path: a lone
                # normal event at the next instant (sparse-timestamp
                # workloads such as timeout churn) is dispatched without
                # opening drain state — the schedule-at-current-instant
                # appends are guarded by _cur_t, which stays None, so a
                # mid-dispatch same-time schedule lands in a fresh bucket
                # and is popped on the next outer iteration (same order).
                t = heappop(theap)
                if t == self._lt:
                    self._lt = None
                ub = self._ubuckets
                uq = ub.pop(t, None) if ub else None
                nq = buckets.pop(t, None)
                self._now = t
                if uq is None:
                    if nq is not None and len(nq) == 1:
                        fast = True
                        drain = nq
                        inbox = _EMPTY
                        uq = _EMPTY
                    else:
                        uq = free.pop() if free else []
                if not fast:
                    if nq is None:
                        nq = free.pop() if free else []
                    else:
                        nq.reverse()
                    inbox = free.pop() if free else []
                    self._drain = nq
                    self._inbox = inbox
                    self._cur_u = uq
                    self._cui = 0
                    self._cur_t = t
                    drain = nq
            else:
                drain = self._drain
                inbox = self._inbox
                uq = self._cur_u
            while True:
                if uq:
                    ui = self._cui
                    if ui < len(uq):
                        self._cui = ui + 1
                        ev = uq[ui]
                        self._dispatch(ev)
                        continue
                if drain:
                    ev = drain.pop()
                elif inbox:
                    # Mid-drain arrivals become the next drain; the emptied
                    # drain list is recycled as the new inbox.
                    inbox.reverse()
                    self._drain = inbox
                    self._inbox = drain
                    drain, inbox = inbox, drain
                    continue
                else:
                    break
                if type(ev) is _DeferredCall:
                    ev.fn()
                    continue
                # -- inlined Event._process --
                ev._state = 2
                cbs = ev.callbacks
                ev.callbacks = None
                if cbs:
                    for cb in cbs:
                        if type(cb) is not PackedProcess:
                            cb(ev)
                            continue
                        # -- inlined PackedProcess._resume --
                        cb._target = None
                        self._active_process = cb
                        gen = cb._gen
                        event = ev
                        while True:
                            try:
                                if event._ok:
                                    target = gen.send(event._value)
                                else:
                                    event._defused = True
                                    target = gen.throw(event._value)
                            except StopIteration as stop:
                                self._active_process = None
                                cb.succeed(stop.value)
                                break
                            except BaseException as exc:
                                self._active_process = None
                                cb.fail(exc)
                                break
                            if isinstance(target, Event):
                                if target.sim is not self:
                                    raise RuntimeError(
                                        "yielded an event from a different simulator"
                                    )
                                if target._state == 2:
                                    event = target
                                    continue
                                cb._target = target
                                target.callbacks.append(cb)
                                break
                            exc = RuntimeError(
                                f"process {cb.name!r} yielded a non-event: {target!r}"
                            )
                            event = Event(self)
                            event._ok = False
                            event._value = exc
                            event._defused = True
                        self._active_process = None
                if not ev._ok and not ev._defused:
                    raise ev._value
            if fast:
                free.append(drain)
                continue
            for lst in (drain, inbox, uq):
                free.append(lst)
            del uq[:]
            self._drain = self._inbox = self._cur_u = self._cur_t = None
            self._cui = 0

    def _dispatch(self, ev: Any) -> None:
        """Generic single-entry dispatch (urgent/slow path)."""
        if type(ev) is _DeferredCall:
            ev.fn()
        else:
            ev._process()
