"""Event primitives for the discrete-event kernel.

Events follow simpy-like semantics: an event is created *pending*, becomes
*triggered* when given a value (``succeed``/``fail``) and is scheduled on the
simulator's queue, and becomes *processed* once the simulator pops it and runs
its callbacks.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Iterable, List, Optional

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from repro.sim.engine import Simulator

PENDING = 0
TRIGGERED = 1
PROCESSED = 2

#: Scheduling priorities.  Urgent events (process bootstraps, interrupts) run
#: before normal events scheduled at the same instant.
URGENT = 0
NORMAL = 1


class Event:
    """A one-shot occurrence that processes can wait for.

    Parameters
    ----------
    sim:
        The owning :class:`~repro.sim.engine.Simulator`.
    """

    __slots__ = ("sim", "callbacks", "_value", "_ok", "_state", "_defused")

    def __init__(self, sim: "Simulator") -> None:
        self.sim = sim
        self.callbacks: Optional[List[Callable[["Event"], None]]] = []
        self._value: Any = None
        self._ok: bool = True
        self._state: int = PENDING
        self._defused = False

    # -- state inspection -------------------------------------------------
    @property
    def triggered(self) -> bool:
        """True once the event has a value (it may not be processed yet)."""
        return self._state >= TRIGGERED

    @property
    def processed(self) -> bool:
        """True once the event's callbacks have run."""
        return self._state == PROCESSED

    @property
    def ok(self) -> bool:
        """True if the event succeeded; only meaningful once triggered."""
        return self._ok

    @property
    def value(self) -> Any:
        """The event's value (or the exception for a failed event)."""
        return self._value

    # -- triggering --------------------------------------------------------
    def succeed(self, value: Any = None, priority: int = NORMAL) -> "Event":
        """Trigger the event successfully with ``value`` at the current time."""
        if self._state != PENDING:
            raise RuntimeError(f"{self!r} has already been triggered")
        self._ok = True
        self._value = value
        self._state = TRIGGERED
        self.sim._schedule(self, 0.0, priority)
        return self

    def fail(self, exception: BaseException, priority: int = NORMAL) -> "Event":
        """Trigger the event as failed; waiters will have it raised."""
        if self._state != PENDING:
            raise RuntimeError(f"{self!r} has already been triggered")
        if not isinstance(exception, BaseException):
            raise TypeError("fail() requires an exception instance")
        self._ok = False
        self._value = exception
        self._state = TRIGGERED
        self.sim._schedule(self, 0.0, priority)
        return self

    def _succeed_immediately(self, value: Any = None) -> "Event":
        """Fast-path succeed: trigger *and* process in place, skipping the
        event queue entirely.

        Only valid for an event nobody has subscribed to yet (freshly
        created, empty callback list): there is no callback to run, so the
        queue round-trip of :meth:`succeed` buys nothing.  A process that
        later yields the event resumes synchronously (the processed-event
        path in :meth:`Process._resume`).  Used for uncontended resource
        grants, the dominant case on the worm hot path.
        """
        if self._state != PENDING:
            raise RuntimeError(f"{self!r} has already been triggered")
        if self.callbacks:
            raise RuntimeError("cannot fast-path an event with subscribers")
        self._ok = True
        self._value = value
        self._state = PROCESSED
        self.callbacks = None
        return self

    def trigger(self, event: "Event") -> None:
        """Trigger this event with the state of another event (chaining)."""
        if event._ok:
            self.succeed(event._value)
        else:
            event._defused = True
            self.fail(event._value)

    # -- engine hook -------------------------------------------------------
    def _process(self) -> None:
        """Run callbacks; called by the simulator when the event is popped."""
        self._state = PROCESSED
        callbacks, self.callbacks = self.callbacks, None
        if callbacks:
            for callback in callbacks:
                callback(self)
        if not self._ok and not self._defused:
            # Nobody handled the failure: surface it so errors never pass
            # silently.
            raise self._value

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = {PENDING: "pending", TRIGGERED: "triggered", PROCESSED: "processed"}
        return f"<{type(self).__name__} {state[self._state]} at t={self.sim.now}>"


class Timeout(Event):
    """An event that fires ``delay`` time units after creation."""

    __slots__ = ("delay",)

    def __init__(self, sim: "Simulator", delay: float, value: Any = None) -> None:
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        # Flattened Event.__init__: timeouts are the single most allocated
        # event type, so the super() dispatch is folded into slot writes.
        self.sim = sim
        self.callbacks = []
        self._value = value
        self._ok = True
        self._state = TRIGGERED
        self._defused = False
        self.delay = delay
        sim._schedule(self, delay, NORMAL)


class Initialize(Event):
    """Internal event that bootstraps a process at the current instant."""

    __slots__ = ()

    def __init__(self, sim: "Simulator", process: Any) -> None:
        super().__init__(sim)
        self.callbacks.append(process._resume)
        self._ok = True
        self._state = TRIGGERED
        sim._schedule(self, 0.0, URGENT)


class Interrupt(Exception):
    """Raised inside a process that has been interrupted.

    The interrupt ``cause`` is available as :attr:`cause`.
    """

    @property
    def cause(self) -> Any:
        return self.args[0] if self.args else None


class Interruption(Event):
    """Internal urgent event delivering an :class:`Interrupt` to a process."""

    __slots__ = ()

    def __init__(self, process: Any, cause: Any) -> None:
        super().__init__(process.sim)
        self._ok = False
        self._value = Interrupt(cause)
        self._defused = True
        self._state = TRIGGERED
        self.callbacks.append(process._resume_interrupt)
        self.sim._schedule(self, 0.0, URGENT)


class Condition(Event):
    """Base for :class:`AllOf` / :class:`AnyOf` composite events."""

    __slots__ = ("_events", "_count")

    def __init__(self, sim: "Simulator", events: Iterable[Event]) -> None:
        super().__init__(sim)
        self._events = list(events)
        self._count = 0
        for event in self._events:
            if event.sim is not sim:
                raise ValueError("cannot mix events from different simulators")
        if not self._events:
            self.succeed({})
            return
        for event in self._events:
            if event._state == PROCESSED:
                self._check(event)
            else:
                event.callbacks.append(self._check)

    def _evaluate(self) -> bool:  # pragma: no cover - abstract
        raise NotImplementedError

    def _collect(self) -> dict:
        # Only events whose callbacks have run count as "arrived": a Timeout
        # is born triggered (it is pre-scheduled) but has not happened yet.
        return {e: e._value for e in self._events if e._state == PROCESSED}

    def _check(self, event: Event) -> None:
        if self._state != PENDING:
            return
        self._count += 1
        if not event._ok:
            event._defused = True
            self.fail(event._value)
        elif self._evaluate():
            self.succeed(self._collect())


class AllOf(Condition):
    """Triggered when *all* component events have triggered."""

    __slots__ = ()

    def _evaluate(self) -> bool:
        return self._count == len(self._events)


class AnyOf(Condition):
    """Triggered when *any* component event has triggered."""

    __slots__ = ()

    def _evaluate(self) -> bool:
        return self._count >= 1
