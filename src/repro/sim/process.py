"""Generator-coroutine processes."""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Generator, Optional

from repro.sim.events import Event, Initialize, Interruption

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import Simulator


class Process(Event):
    """A simulation process driving a generator.

    A process is itself an :class:`~repro.sim.events.Event` that triggers when
    the generator returns; other processes can therefore ``yield`` a process
    to wait for its completion and obtain its return value.

    Use :meth:`~repro.sim.engine.Simulator.process` to create one.
    """

    __slots__ = ("_gen", "_target", "name")

    def __init__(
        self, sim: "Simulator", generator: Generator[Event, Any, Any], name: str = ""
    ) -> None:
        if not hasattr(generator, "send") or not hasattr(generator, "throw"):
            raise TypeError(f"process body must be a generator, got {generator!r}")
        super().__init__(sim)
        self._gen = generator
        self._target: Optional[Event] = None
        self.name = name or getattr(generator, "__name__", "process")
        Initialize(sim, self)

    @property
    def is_alive(self) -> bool:
        """True while the generator has not finished."""
        return self._state == 0  # PENDING

    def interrupt(self, cause: Any = None) -> None:
        """Deliver an :class:`~repro.sim.events.Interrupt` into the process."""
        if not self.is_alive:
            raise RuntimeError(f"cannot interrupt finished process {self.name!r}")
        if self._target is None and self.sim.active_process is self:
            raise RuntimeError("a process cannot interrupt itself")
        Interruption(self, cause)

    # -- engine hooks ------------------------------------------------------
    def _resume(self, event: Event) -> None:
        """Advance the generator with the value (or exception) of ``event``."""
        trace = self.sim._trace
        if trace is not None:
            trace._wakeup(self.name)
        self.sim._active_process = self
        while True:
            try:
                if event._ok:
                    target = self._gen.send(event._value)
                else:
                    event._defused = True
                    target = self._gen.throw(event._value)
            except StopIteration as stop:
                self.sim._active_process = None
                self.succeed(stop.value)
                return
            except BaseException as exc:
                self.sim._active_process = None
                self.fail(exc)
                return

            if not isinstance(target, Event):
                exc = RuntimeError(
                    f"process {self.name!r} yielded a non-event: {target!r}"
                )
                event = Event(self.sim)
                event._ok = False
                event._value = exc
                event._defused = True
                continue
            if target.sim is not self.sim:
                raise RuntimeError("yielded an event from a different simulator")

            if target._state == 2:  # PROCESSED: value already available
                event = target
                continue

            self._target = target
            target.callbacks.append(self._waiter)
            break
        self.sim._active_process = None

    def _waiter(self, event: Event) -> None:
        self._target = None
        self._resume(event)

    def _resume_interrupt(self, event: Event) -> None:
        """Deliver an interruption: detach from the current target first."""
        if not self.is_alive:
            # The process finished between scheduling and delivery of the
            # interrupt; drop it silently (matches simpy behaviour).
            event._defused = True
            return
        if self._target is not None and self._target.callbacks is not None:
            try:
                self._target.callbacks.remove(self._waiter)
            except ValueError:  # pragma: no cover - defensive
                pass
            self._target = None
        self._resume(event)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Process {self.name!r} alive={self.is_alive}>"
