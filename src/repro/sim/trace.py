"""Opt-in lightweight profiling for the DES kernel.

Attach a :class:`SimTrace` via ``Simulator(trace=SimTrace())`` to count the
events the engine processes (by event class) and the process wakeups (by
process name).  The counters answer "where does kernel time go?" without a
real profiler: a component that wakes up orders of magnitude more often than
its peers is the one worth optimizing next.

The overhead is one dict update per event, so traced runs stay within a few
percent of untraced ones; a disabled trace (the default) costs a single
pointer test per event.
"""

from __future__ import annotations

from typing import Any, Dict


class SimTrace:
    """Counts processed events and process wakeups during a run."""

    __slots__ = ("events", "by_type", "wakeups")

    def __init__(self) -> None:
        #: Total queue entries processed.
        self.events = 0
        #: Processed-entry counts keyed by class name (Timeout, Request, ...).
        self.by_type: Dict[str, int] = {}
        #: Generator resumptions keyed by process name.
        self.wakeups: Dict[str, int] = {}

    # -- engine hooks (underscored: called on the hot path) -----------------
    def _record(self, event: Any) -> None:
        self.events += 1
        name = type(event).__name__
        by_type = self.by_type
        by_type[name] = by_type.get(name, 0) + 1

    def _wakeup(self, name: str) -> None:
        wakeups = self.wakeups
        wakeups[name] = wakeups.get(name, 0) + 1

    # -- reporting ----------------------------------------------------------
    @property
    def total_wakeups(self) -> int:
        return sum(self.wakeups.values())

    def summary(self) -> Dict[str, Any]:
        """A JSON-friendly snapshot of the counters, largest first."""

        def ranked(counts: Dict[str, int]) -> Dict[str, int]:
            return dict(sorted(counts.items(), key=lambda kv: -kv[1]))

        return {
            "events": self.events,
            "by_type": ranked(self.by_type),
            "wakeups": ranked(self.wakeups),
        }

    def reset(self) -> None:
        """Zero all counters (e.g. after warm-up)."""
        self.events = 0
        self.by_type.clear()
        self.wakeups.clear()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<SimTrace events={self.events} wakeups={self.total_wakeups}>"
