"""Statistics collectors for simulation output.

All collectors are cheap enough to update on every sample and expose a
``summary()`` dict used by the analysis layer and benchmark harness.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence


class TallyStat:
    """Streaming mean/variance/min/max over discrete observations (Welford)."""

    def __init__(self, name: str = "") -> None:
        self.name = name
        self.count = 0
        self._mean = 0.0
        self._m2 = 0.0
        self.minimum = math.inf
        self.maximum = -math.inf

    def add(self, value: float) -> None:
        """Record one observation."""
        self.count += 1
        delta = value - self._mean
        self._mean += delta / self.count
        self._m2 += delta * (value - self._mean)
        if value < self.minimum:
            self.minimum = value
        if value > self.maximum:
            self.maximum = value

    @property
    def mean(self) -> float:
        return self._mean if self.count else math.nan

    @property
    def variance(self) -> float:
        """Sample variance (n-1 denominator)."""
        if self.count < 2:
            return math.nan
        return self._m2 / (self.count - 1)

    @property
    def stdev(self) -> float:
        var = self.variance
        return math.sqrt(var) if var == var else math.nan

    def merge(self, other: "TallyStat") -> None:
        """Fold another tally into this one (parallel Welford merge)."""
        if other.count == 0:
            return
        if self.count == 0:
            self.count = other.count
            self._mean = other._mean
            self._m2 = other._m2
            self.minimum = other.minimum
            self.maximum = other.maximum
            return
        total = self.count + other.count
        delta = other._mean - self._mean
        self._m2 += other._m2 + delta * delta * self.count * other.count / total
        self._mean += delta * other.count / total
        self.count = total
        self.minimum = min(self.minimum, other.minimum)
        self.maximum = max(self.maximum, other.maximum)

    def summary(self) -> Dict[str, float]:
        return {
            "count": self.count,
            "mean": self.mean,
            "stdev": self.stdev,
            "min": self.minimum if self.count else math.nan,
            "max": self.maximum if self.count else math.nan,
        }


class TimeWeightedStat:
    """Time-average of a piecewise-constant signal (e.g. queue length)."""

    def __init__(self, now: float = 0.0, value: float = 0.0, name: str = "") -> None:
        self.name = name
        self._last_time = now
        self._value = value
        self._integral = 0.0
        self._start = now

    @property
    def value(self) -> float:
        return self._value

    def update(self, now: float, value: float) -> None:
        """Set the signal to ``value`` at time ``now``."""
        if now < self._last_time:
            raise ValueError("time went backwards")
        self._integral += self._value * (now - self._last_time)
        self._last_time = now
        self._value = value

    def add(self, now: float, delta: float) -> None:
        """Increment the signal by ``delta`` at time ``now``."""
        self.update(now, self._value + delta)

    def mean(self, now: Optional[float] = None) -> float:
        """Time-average from the window start until ``now`` (default: last
        update).  The window starts at creation or the last :meth:`reset`."""
        end = self._last_time if now is None else now
        if end < self._last_time:
            raise ValueError("time went backwards")
        elapsed = end - self._start
        if elapsed <= 0:
            return math.nan
        return (self._integral + self._value * (end - self._last_time)) / elapsed

    def reset(self, now: float) -> None:
        """Restart the averaging window (used to discard warm-up transients).

        The current signal *value* persists — a queue does not empty just
        because measurement starts — but the accumulated integral is
        discarded, so time-weighted means cover only the post-reset window
        (mirroring :meth:`RateMeter.reset`).
        """
        if now < self._last_time:
            raise ValueError("time went backwards")
        self._integral = 0.0
        self._start = now
        self._last_time = now


class RateMeter:
    """Counts events/bytes and reports a rate over the observation window."""

    def __init__(self, start: float = 0.0, name: str = "") -> None:
        self.name = name
        self._start = start
        self.total = 0.0
        self.events = 0

    def add(self, amount: float = 1.0) -> None:
        self.total += amount
        self.events += 1

    def rate(self, now: float) -> float:
        """Amount per time unit from the window start until ``now``."""
        elapsed = now - self._start
        if elapsed <= 0:
            return math.nan
        return self.total / elapsed

    def reset(self, now: float) -> None:
        """Restart the window (used to discard warm-up transients)."""
        self._start = now
        self.total = 0.0
        self.events = 0


class Histogram:
    """Fixed-width bin histogram with open-ended tails."""

    def __init__(self, low: float, high: float, bins: int, name: str = "") -> None:
        if bins < 1 or high <= low:
            raise ValueError("invalid histogram bounds")
        self.name = name
        self.low = low
        self.high = high
        self.bins = bins
        self.counts = [0] * (bins + 2)  # [under, bins..., over]
        self._width = (high - low) / bins

    def add(self, value: float) -> None:
        if value < self.low:
            self.counts[0] += 1
        elif value >= self.high:
            self.counts[-1] += 1
        else:
            index = 1 + int((value - self.low) / self._width)
            if index > self.bins:
                # Float rounding at a bin edge can push an in-range value
                # (value < high) to index bins + 1, which would land it in
                # the overflow tail; clamp to the last real bin.
                index = self.bins
            self.counts[index] += 1

    @property
    def total(self) -> int:
        return sum(self.counts)

    def bin_edges(self) -> List[float]:
        return [self.low + i * self._width for i in range(self.bins + 1)]

    def quantile(self, q: float) -> float:
        """Approximate quantile from bin midpoints (tails clamp to bounds)."""
        if not 0 <= q <= 1:
            raise ValueError("q outside [0, 1]")
        total = self.total
        if total == 0:
            return math.nan
        target = q * total
        cumulative = 0
        for index, count in enumerate(self.counts):
            cumulative += count
            if cumulative >= target:
                if index == 0:
                    return self.low
                if index == len(self.counts) - 1:
                    return self.high
                return self.low + (index - 0.5) * self._width
        return self.high


def batch_means_ci(
    samples: Sequence[float], batches: int = 10, z: float = 1.96
) -> Dict[str, float]:
    """Batch-means confidence interval for a (possibly correlated) series.

    Splits ``samples`` into ``batches`` contiguous batches and treats batch
    means as approximately independent — the standard steady-state DES
    output-analysis technique.  When ``n`` is not divisible by ``batches``
    the remainder ``n % batches`` samples are folded into the final batch,
    so every sample contributes (dropping the tail would bias the reported
    mean towards the earlier part of the series).
    """
    n = len(samples)
    if n == 0:
        return {"mean": math.nan, "half_width": math.nan, "batches": 0}
    batches = max(1, min(batches, n))
    size = n // batches
    if size == 0:
        batches, size = n, 1
    means = []
    for b in range(batches):
        end = (b + 1) * size if b < batches - 1 else n
        chunk = samples[b * size : end]
        means.append(sum(chunk) / len(chunk))
    grand = sum(means) / len(means)
    if len(means) < 2:
        return {"mean": grand, "half_width": math.nan, "batches": len(means)}
    var = sum((m - grand) ** 2 for m in means) / (len(means) - 1)
    half = z * math.sqrt(var / len(means))
    return {"mean": grand, "half_width": half, "batches": len(means)}
