"""Named, reproducible random streams.

Every stochastic component draws from its own named substream so that
changing one traffic source does not perturb the sample path of another —
the standard variance-reduction / reproducibility discipline for DES studies.
"""

from __future__ import annotations

import hashlib
import math
import random
from typing import Dict, Sequence, TypeVar

T = TypeVar("T")


class Stream:
    """A single reproducible random stream with the distributions we need."""

    def __init__(self, seed: int) -> None:
        self._rng = random.Random(seed)

    def exponential(self, mean: float) -> float:
        """Exponential inter-arrival time with the given mean (Poisson process)."""
        if mean <= 0:
            raise ValueError(f"mean must be positive, got {mean}")
        return self._rng.expovariate(1.0 / mean)

    def geometric(self, mean: float, minimum: int = 1) -> int:
        """Geometric variate with the given mean, support {minimum, minimum+1, ...}.

        The paper's worm lengths are geometrically distributed with mean
        400 bytes; ``minimum`` accounts for the non-zero header.
        """
        if mean <= minimum:
            raise ValueError(f"mean ({mean}) must exceed minimum ({minimum})")
        # Shifted geometric: X = minimum + G where G >= 0, E[G] = mean - minimum.
        p = 1.0 / (mean - minimum + 1.0)
        u = self._rng.random()
        if u >= 1.0:
            # random.Random.random() is half-open, but a swapped-in
            # generator (tests, numpy bridges) may return exactly 1.0,
            # which would pass log(0.0) below.  The clamp is the largest
            # double below 1.0, so genuine draws are never altered.
            u = 1.0 - 2.0 ** -53
        g = int(math.floor(math.log(1.0 - u) / math.log(1.0 - p)))
        return minimum + g

    def uniform(self, low: float = 0.0, high: float = 1.0) -> float:
        return self._rng.uniform(low, high)

    def randint(self, low: int, high: int) -> int:
        """Uniform integer in [low, high] inclusive."""
        return self._rng.randint(low, high)

    def choice(self, seq: Sequence[T]) -> T:
        return self._rng.choice(seq)

    def sample(self, seq: Sequence[T], k: int) -> list:
        return self._rng.sample(seq, k)

    def shuffle(self, seq: list) -> None:
        self._rng.shuffle(seq)

    def random(self) -> float:
        return self._rng.random()

    def bernoulli(self, p: float) -> bool:
        if not 0.0 <= p <= 1.0:
            raise ValueError(f"probability outside [0,1]: {p}")
        return self._rng.random() < p


class RandomStreams:
    """Factory of named :class:`Stream` substreams derived from a master seed."""

    def __init__(self, seed: int = 1) -> None:
        self.seed = seed
        self._streams: Dict[str, Stream] = {}

    def stream(self, name: str) -> Stream:
        """The stream for ``name``, created deterministically on first use."""
        existing = self._streams.get(name)
        if existing is not None:
            return existing
        digest = hashlib.sha256(f"{self.seed}/{name}".encode()).digest()
        substream_seed = int.from_bytes(digest[:8], "big")
        stream = Stream(substream_seed)
        self._streams[name] = stream
        return stream

    def __getitem__(self, name: str) -> Stream:
        return self.stream(name)
