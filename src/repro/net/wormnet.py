"""Event-driven, worm-level wormhole network.

This is the engine behind the Figure 10/11 experiments.  It models wormhole
dynamics at the *worm* level:

* the head acquires the directed channels of its source route hop by hop;
* while the head is blocked waiting for a channel, every channel already
  acquired stays held (backpressure: the worm's body backs up into slack
  buffers, links carry no other traffic);
* once the head reaches the destination adapter the body streams at link
  rate (1 byte per byte-time), so the tail arrives ``length`` byte-times
  after the head;
* each channel is released when the worm's tail passes it, so short worms on
  long links (the 1000-byte-time propagation delays of Figure 11) do not
  hold whole paths needlessly.

Blocked worms queue per channel in arrival order, the worm-level equivalent
of the crossbar's round-robin service of blocked worms.  Per-byte slack
buffer/STOP/GO behaviour is modelled exactly in :mod:`repro.net.flitlevel`;
at the loads and worm sizes of the paper's experiments the worm-level
abstraction preserves the contention behaviour that dominates latency.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from repro.sim.engine import Simulator
from repro.sim.events import Event
from repro.sim.monitor import TallyStat
from repro.sim.resources import Request, Resource
from repro.net.topology import Link, Topology
from repro.net.updown import UpDownRouting
from repro.net.worm import Worm

ReceiverFn = Callable[[Worm, "Transfer"], None]


class Channel:
    """A directed channel over one physical link."""

    __slots__ = (
        "sim",
        "link",
        "src",
        "dst",
        "prop_delay",
        "resource",
        "busy_time",
        "acquisitions",
        "failed",
        "_busy_since",
        "_stats_start",
    )

    def __init__(self, sim: Simulator, link: Link, src: int, dst: int) -> None:
        self.sim = sim
        self.link = link
        self.src = src
        self.dst = dst
        self.prop_delay = link.prop_delay
        self.resource = Resource(sim, capacity=1)
        self.busy_time = 0.0
        self.acquisitions = 0
        #: True while the underlying link (or an endpoint) is down; worms
        #: that touch a failed channel are flushed out of the network.
        self.failed = False
        self._busy_since = 0.0
        self._stats_start = 0.0

    @property
    def busy(self) -> bool:
        return self.resource.count > 0

    def acquire(self) -> Request:
        return self.resource.request()

    def on_granted(self, now: float) -> None:
        """Bookkeeping hook: channel became busy at ``now``."""
        self.acquisitions += 1
        self._busy_since = now

    def release(self, request: Request, now: float) -> None:
        self.busy_time += now - self._busy_since
        self.resource.release(request)

    def utilization(self, now: float) -> float:
        """Fraction of time busy since the last stats reset."""
        window = now - self._stats_start
        busy = self.busy_time
        if self.busy:
            busy += now - self._busy_since
        return busy / window if window > 0 else 0.0

    def reset_stats(self, now: float) -> None:
        self.busy_time = 0.0
        self.acquisitions = 0
        self._stats_start = now
        if self.busy:
            self._busy_since = now

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Channel {self.src}->{self.dst} busy={self.busy}>"


class Transfer:
    """Handle for one worm's trip through the network.

    Exposes two waitable events:

    * :attr:`head_arrived` -- the worm's head reached the destination
      adapter (used for cut-through forwarding decisions);
    * :attr:`completed` -- the tail arrived; the worm is fully received.
    """

    __slots__ = (
        "worm",
        "head_arrived",
        "completed",
        "start_time",
        "head_time",
        "finish_time",
        "blocked_time",
        "blocked_hops",
        "dropped",
        "_blocked_since",
    )

    def __init__(self, sim: Simulator, worm: Worm) -> None:
        self.worm = worm
        self.head_arrived: Event = sim.event()
        self.completed: Event = sim.event()
        self.start_time = sim.now
        self.head_time: Optional[float] = None
        self.finish_time: Optional[float] = None
        self.blocked_time = 0.0
        self.blocked_hops = 0
        #: True when the worm was flushed mid-network (loss injection).
        self.dropped = False
        self._blocked_since: Optional[float] = None

    @property
    def latency(self) -> float:
        """Injection-to-tail-delivery time of this hop."""
        if self.finish_time is None:
            raise RuntimeError("transfer not complete")
        return self.finish_time - self.start_time

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Transfer {self.worm!r} done={self.finish_time is not None}>"


class WormholeNetwork:
    """The wormhole LAN: channels + routing + the transfer engine.

    Parameters
    ----------
    sim:
        The simulation kernel.
    topology:
        The switch/host graph.
    routing:
        An :class:`~repro.net.updown.UpDownRouting`; built with default root
        if omitted.
    switch_latency:
        Per-hop head processing time in byte-times (route byte strip +
        crossbar setup; order of a byte-time in Myrinet).
    restrict_to_tree:
        Confine *all* routes to the up/down spanning tree (the Section 3
        S1 scheme).
    obs:
        Optional :class:`~repro.obs.Observability`; records worm spans
        (inject → head → tail) and delivery metrics.  ``None`` (the
        default) costs one pointer test per worm event.
    """

    def __init__(
        self,
        sim: Simulator,
        topology: Topology,
        routing: Optional[UpDownRouting] = None,
        switch_latency: float = 1.0,
        restrict_to_tree: bool = False,
        loss_rate: float = 0.0,
        loss_seed: int = 99,
        obs=None,
    ) -> None:
        self.sim = sim
        self.obs = obs
        self.topology = topology
        self.routing = routing or UpDownRouting(topology)
        if self.routing.topology is not topology:
            raise ValueError("routing was computed for a different topology")
        self.switch_latency = switch_latency
        self.restrict_to_tree = restrict_to_tree
        if not 0.0 <= loss_rate < 1.0:
            raise ValueError(f"loss rate outside [0, 1): {loss_rate}")
        #: Fault injection: probability that a worm is flushed (e.g. by a
        #: reset clearing a wedged path) somewhere along its route.  The
        #: paper's reliability option -- circuit return + timeout
        #: retransmission (Section 5) -- is exercised against this.
        self.loss_rate = loss_rate
        from repro.sim.rng import RandomStreams

        self._loss_stream = RandomStreams(loss_seed).stream("wormnet.loss")
        self._channels: Dict[Tuple[int, int], Channel] = {}
        for link in topology.links:
            self._channels[(link.a, link.b)] = Channel(sim, link, link.a, link.b)
            self._channels[(link.b, link.a)] = Channel(sim, link, link.b, link.a)
        # The channel population is fixed for the network's lifetime: cache
        # the list view and the switch-to-switch subset (mean_utilization is
        # called per measurement point, and `channels` sits in test/benchmark
        # inner loops).
        self._channel_list: List[Channel] = list(self._channels.values())
        self._switch_channels: List[Channel] = [
            ch
            for ch in self._channel_list
            if topology.node(ch.src).is_switch and topology.node(ch.dst).is_switch
        ]
        #: Per-(src, dst) memo of the channel sequence of the legal route;
        #: worms between the same host pair re-use it without re-walking the
        #: routing tables (restrict_to_tree is fixed per network).
        self._route_channel_cache: Dict[Tuple[int, int], Tuple[Channel, ...]] = {}
        self._receivers: Dict[int, ReceiverFn] = {}
        self._head_watchers: Dict[int, ReceiverFn] = {}
        #: Topology version the channel tables were built against; a
        #: mismatch triggers :meth:`refresh_topology` (stale-cache guard).
        self._topo_version = topology.version
        #: Fault hooks: a predicate forcing individual worms to be flushed
        #: (deterministic drop injection), and per-host counters of pending
        #: adapter-buffer faults (the next N worms arriving at the host are
        #: lost as if a buffer parity error discarded them).
        self.drop_filter: Optional[Callable[[Worm], bool]] = None
        self._recv_faults: Dict[int, int] = {}
        # Network-wide statistics.
        self.delivered_worms = 0
        self.delivered_bytes = 0.0
        self.dropped_worms = 0
        self.orphaned_worms = 0
        self.hop_latency = TallyStat("hop latency")
        self.block_time = TallyStat("block time per transfer")

    # -- wiring -----------------------------------------------------------
    def channel(self, src: int, dst: int) -> Channel:
        """The directed channel src -> dst (must be a physical link)."""
        try:
            return self._channels[(src, dst)]
        except KeyError:
            raise KeyError(f"no channel {src}->{dst}") from None

    def refresh_topology(self) -> None:
        """Re-sync channel tables with the topology after a mutation.

        Creates channels for newly added links, re-marks every channel's
        ``failed`` flag from component liveness, rebuilds the cached channel
        list views and invalidates the memoized per-pair route channels
        (which may now run over dead or new links).
        """
        topology = self.topology
        for link in topology.links:
            if (link.a, link.b) not in self._channels:
                self._channels[(link.a, link.b)] = Channel(
                    self.sim, link, link.a, link.b
                )
                self._channels[(link.b, link.a)] = Channel(
                    self.sim, link, link.b, link.a
                )
        for ch in self._channels.values():
            ch.failed = not topology.link_usable(ch.link)
        self._channel_list = list(self._channels.values())
        self._switch_channels = [
            ch
            for ch in self._channel_list
            if topology.node(ch.src).is_switch and topology.node(ch.dst).is_switch
        ]
        self._route_channel_cache.clear()
        self._topo_version = topology.version

    def _refresh_if_stale(self) -> None:
        if self._topo_version != self.topology.version:
            self.refresh_topology()

    @property
    def channels(self) -> List[Channel]:
        """All directed channels (cached; treat as read-only)."""
        self._refresh_if_stale()
        return self._channel_list

    def set_receiver(self, host: int, fn: ReceiverFn) -> None:
        """Register the adapter callback for worms fully received at ``host``."""
        self._receivers[host] = fn

    def set_head_watcher(self, host: int, fn: ReceiverFn) -> None:
        """Register a callback fired when a worm's *head* reaches ``host``
        (cut-through forwarding decisions are made here)."""
        self._head_watchers[host] = fn

    def injection_channel(self, host: int) -> Channel:
        """The host's outgoing adapter channel (one worm at a time)."""
        return self.channel(host, self.topology.host_switch(host))

    def route_channels(self, src_host: int, dst_host: int) -> Tuple[Channel, ...]:
        """The directed channels of the legal route between two hosts.

        Memoized per (src, dst): the returned tuple is shared across calls.
        """
        self._refresh_if_stale()
        key = (src_host, dst_host)
        cached = self._route_channel_cache.get(key)
        if cached is not None:
            return cached
        hops = self.routing.route_shared(src_host, dst_host, self.restrict_to_tree)
        channels = tuple(self.channel(a, b) for a, b, _ in hops)
        self._route_channel_cache[key] = channels
        return channels

    # -- fault hooks ----------------------------------------------------------
    def inject_receive_fault(self, host: int, count: int = 1) -> None:
        """Discard the next ``count`` worms fully arriving at ``host``.

        Models an adapter-buffer fault (parity error, DMA overrun): the
        worm drains off the wire normally but never reaches the host, so
        only transport-level repair can recover it.
        """
        if count < 1:
            raise ValueError(f"count must be positive, got {count}")
        self._recv_faults[host] = self._recv_faults.get(host, 0) + count

    def pending_receive_faults(self, host: int) -> int:
        return self._recv_faults.get(host, 0)

    # -- sending -------------------------------------------------------------
    def send(self, worm: Worm) -> Transfer:
        """Inject ``worm``; returns a :class:`Transfer` handle immediately.

        The worm travels from ``worm.source`` to ``worm.dest`` (both hosts).
        """
        if worm.source == worm.dest:
            raise ValueError("use the adapter local-copy path for self-delivery")
        transfer = Transfer(self.sim, worm)
        if self.obs is not None:
            self.obs.worm_injected(
                self.sim.now, worm.wid, worm.source, worm.dest,
                worm.length, worm.kind.value,
            )
        try:
            channels = self.route_channels(worm.source, worm.dest)
        except ValueError:
            # No route.  If an endpoint (or its access link) is dead, the
            # sender cannot know -- it transmits into the void and the worm
            # orphans, exactly as if the head had hit the failure.  A
            # missing route between two live endpoints is a real error
            # (partitioned fabric): surface it.
            live = self.topology.live_hosts()
            if worm.source in live and worm.dest in live:
                raise
            self.sim.process(
                self._orphan(transfer), name=f"xfer-w{worm.wid}"
            )
            return transfer
        forced_drop = self.drop_filter is not None and self.drop_filter(worm)
        self.sim.process(
            self._run(transfer, channels, forced_drop), name=f"xfer-w{worm.wid}"
        )
        return transfer

    def _orphan(self, transfer: Transfer):
        """Flush a worm that hit a failed component: the sender still
        transmits the tail (it learns nothing at the network level), but no
        receiver ever sees the worm."""
        sim = self.sim
        transfer.dropped = True
        yield sim.timeout(transfer.worm.length)
        transfer.finish_time = sim.now
        self.orphaned_worms += 1
        if self.obs is not None:
            self.obs.worm_dropped(sim.now, transfer.worm.wid, "orphaned")
        transfer.completed.succeed(transfer)

    def _run(
        self,
        transfer: Transfer,
        channels: Tuple[Channel, ...],
        forced_drop: bool = False,
    ):
        sim = self.sim
        worm = transfer.worm
        drop_after = None
        if forced_drop:
            drop_after = 1
        elif self.loss_rate and self._loss_stream.bernoulli(self.loss_rate):
            drop_after = self._loss_stream.randint(1, len(channels))
        hops_done = 0
        for ch in channels:
            if ch.failed:
                yield from self._orphan(transfer)
                return
            request = ch.acquire()
            if not request.triggered:
                transfer.blocked_hops += 1
                wait_start = sim.now
                transfer._blocked_since = wait_start
                yield request
                transfer._blocked_since = None
                transfer.blocked_time += sim.now - wait_start
            else:
                yield request
            ch.on_granted(sim.now)
            if ch.failed:
                # The link died while we held or awaited it: the worm is cut.
                ch.release(request, sim.now)
                yield from self._orphan(transfer)
                return
            yield sim.timeout(self.switch_latency + ch.prop_delay)
            # The tail passes this channel ``length`` byte-times after the
            # head crossed it, plus any stream stall the head suffers while
            # blocked downstream (tracked in transfer.blocked_time).
            self._release_when_tail_passes(transfer, ch, request, sim.now)
            hops_done += 1
            if drop_after is not None and hops_done == drop_after:
                # The worm is flushed out of the network here: the sender
                # still transmits its tail (it learns nothing), but no
                # receiver ever sees the worm.
                transfer.dropped = True
                yield sim.timeout(worm.length)
                transfer.finish_time = sim.now
                self.dropped_worms += 1
                if self.obs is not None:
                    self.obs.worm_dropped(sim.now, worm.wid, "dropped")
                transfer.completed.succeed(transfer)
                return

        pending = self._recv_faults.get(worm.dest, 0)
        if pending:
            # Adapter-buffer fault: the worm drains but is discarded.
            if pending == 1:
                del self._recv_faults[worm.dest]
            else:
                self._recv_faults[worm.dest] = pending - 1
            yield from self._orphan(transfer)
            return
        if not self.topology.node_alive(worm.dest):
            # The destination host crashed: nobody is listening.
            yield from self._orphan(transfer)
            return

        transfer.head_time = sim.now
        if self.obs is not None:
            self.obs.worm_head(sim.now, worm.wid, worm.dest)

        watcher = self._head_watchers.get(worm.dest)
        transfer.head_arrived.succeed(transfer)
        if watcher is not None:
            watcher(worm, transfer)

        yield sim.timeout(worm.length)
        transfer.finish_time = sim.now
        self.delivered_worms += 1
        self.delivered_bytes += worm.length
        self.hop_latency.add(transfer.latency)
        self.block_time.add(transfer.blocked_time)
        if self.obs is not None:
            self.obs.worm_delivered(
                sim.now, worm.wid, transfer.latency,
                transfer.blocked_time, worm.length,
            )
        transfer.completed.succeed(transfer)
        receiver = self._receivers.get(worm.dest)
        if receiver is not None:
            receiver(worm, transfer)

    def _release_when_tail_passes(
        self, transfer: Transfer, channel: Channel, request: Request, cross: float
    ) -> None:
        """Schedule the channel's release for when the worm's tail passes it.

        Base time is ``cross + length`` (continuous streaming); every
        byte-time the head later spends blocked stalls the stream, so the
        deadline is re-evaluated against the transfer's accumulated block
        time until it is stable.
        """
        sim = self.sim
        length = transfer.worm.length
        stall_at_schedule = transfer.blocked_time

        def fire() -> None:
            stall = transfer.blocked_time
            if transfer._blocked_since is not None:
                stall += sim.now - transfer._blocked_since
            target = cross + length + (stall - stall_at_schedule)
            if sim.now >= target - 1e-9:
                channel.release(request, sim.now)
            else:
                sim.schedule_call(target - sim.now, fire)

        sim.schedule_call(length, fire)

    # -- statistics ------------------------------------------------------------
    def reset_stats(self) -> None:
        """Discard warm-up statistics (channel utilization and tallies)."""
        now = self.sim.now
        for channel in self._channels.values():
            channel.reset_stats(now)
        self.delivered_worms = 0
        self.delivered_bytes = 0.0
        self.dropped_worms = 0
        self.orphaned_worms = 0
        self.hop_latency = TallyStat("hop latency")
        self.block_time = TallyStat("block time per transfer")

    def mean_utilization(self) -> float:
        """Average channel utilization across switch-to-switch channels."""
        self._refresh_if_stale()
        now = self.sim.now
        values = [ch.utilization(now) for ch in self._switch_channels]
        return sum(values) / len(values) if values else 0.0

    def delivery_ratio(self) -> float:
        """Delivered / attempted worms since the last stats reset."""
        attempted = self.delivered_worms + self.dropped_worms + self.orphaned_worms
        return self.delivered_worms / attempted if attempted else 1.0
