"""Deadlock-free up/down routing (Autonet / Myrinet style).

One node is chosen as the *root*; a BFS spanning tree assigns every node a
level (distance from the root).  Traversing a link towards the root (to a
node at lesser distance; node ID breaks ties between equal levels) is an
*up* hop, the reverse is a *down* hop.  A legal route traverses zero or more
up hops followed by zero or more down hops, which makes the channel
dependency graph acyclic and hence the routing deadlock-free [SBB+91, DS87].

Routes are computed as shortest legal paths with a deterministic tie-break,
matching the paper's "fixed choice of one path per source-destination pair
among all possible equal length paths" (Section 7.1).
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.net.topology import Link, Topology

#: Route phases for the layered shortest-path search.
_UP, _DOWN = 0, 1

#: A directed hop: (from-node, to-node, link).
Hop = Tuple[int, int, Link]


class UpDownRouting:
    """Up/down route computation over a topology.

    Parameters
    ----------
    topology:
        The network.
    root:
        Root node id for the spanning tree.  Defaults to the lowest-id
        switch (the paper picks the root arbitrarily).
    """

    def __init__(self, topology: Topology, root: Optional[int] = None) -> None:
        if topology.fully_alive and not topology.is_connected():
            raise ValueError("up/down routing requires a connected topology")
        self.topology = topology
        if not topology.switches:
            raise ValueError("topology has no switches")
        if root is not None and topology.node(root).kind != "switch":
            raise ValueError(f"root {root} must be a switch")
        #: The root the caller asked for (kept across rebuilds; a rebuild
        #: falls back to the lowest live switch while it is dead).
        self._requested_root = root
        #: Number of spanning-tree recomputations (0 = the initial build).
        self.rebuilds = -1
        self.rebuild()

    def rebuild(self) -> None:
        """(Re)compute the spanning tree, levels and search adjacency over
        the topology's *live* subgraph, discarding all memoized routes.

        This is the reconfiguration primitive: after a link/switch failure
        or repair the up/down tree is recomputed exactly as Autonet does.
        On a fully-alive topology the result is byte-identical to the
        original construction (the live subgraph *is* the graph).
        """
        topology = self.topology
        live_switches = [
            s for s in topology.switches if topology.node_alive(s)
        ]
        if not live_switches:
            raise ValueError("no live switches to route over")
        root = self._requested_root
        if root is None or not topology.node_alive(root):
            root = live_switches[0]
        self.root = root
        self.level: Dict[int, int] = {}
        self.parent: Dict[int, Optional[int]] = {}
        self._tree_links: Set[int] = set()
        # Sorted adjacency, computed once per rebuild: the route BFS visits
        # every node's neighbor list in deterministic id order, and
        # re-sorting a freshly built list per visit dominated
        # route-computation time.
        self._sorted_neighbors: Dict[int, List[Tuple[int, Link]]] = {
            node.id: sorted(
                topology.live_neighbors(node.id), key=lambda pair: pair[0]
            )
            for node in topology.nodes
            if topology.node_alive(node.id)
        }
        self._build_tree()
        # Per-edge search metadata: (peer, link, up_hop, crosslink), in
        # deterministic id order.  Folding is_up/is_crosslink into the
        # adjacency list keeps the BFS inner loop free of dict lookups.
        # Nodes severed from the root's component carry no search entries:
        # routes to them fail until a repair reconnects them.
        self._search_adj: Dict[int, List[Tuple[int, Link, bool, bool]]] = {
            nid: [
                (peer, link, self.is_up(nid, peer), link.id not in self._tree_links)
                for peer, link in pairs
            ]
            for nid, pairs in self._sorted_neighbors.items()
            if nid in self.level
        }
        self._route_cache: Dict[Tuple[int, int, bool], Tuple[Hop, ...]] = {}
        self._topo_version = topology.version
        self.rebuilds += 1

    def _refresh_if_stale(self) -> None:
        """Rebuild when the topology mutated since the last build.

        Every memoized-route entry point funnels through this check, so a
        topology mutation can never serve routes over links that no longer
        exist (the stale-cache bug dynamic reconfiguration surfaced).
        """
        if self.topology.version != self._topo_version:
            self.rebuild()

    # -- spanning tree --------------------------------------------------------
    def _build_tree(self) -> None:
        """BFS spanning tree from the root; deterministic neighbor order."""
        self.level[self.root] = 0
        self.parent[self.root] = None
        frontier = deque([self.root])
        while frontier:
            nid = frontier.popleft()
            for peer, link in self._sorted_neighbors[nid]:
                if peer in self.level:
                    continue
                self.level[peer] = self.level[nid] + 1
                self.parent[peer] = nid
                self._tree_links.add(link.id)
                frontier.append(peer)

    @property
    def tree_links(self) -> Set[int]:
        """Ids of links in the up/down spanning tree."""
        self._refresh_if_stale()
        return set(self._tree_links)

    def is_crosslink(self, link: Link) -> bool:
        """True if ``link`` is not part of the spanning tree (e.g. D-E in
        Figure 3)."""
        self._refresh_if_stale()
        return link.id not in self._tree_links

    def is_up(self, src: int, dst: int) -> bool:
        """True if traversing src -> dst is an *up* hop.

        Up means moving to a node at lesser distance from the root; equal
        levels are ordered by node id (lower id is 'higher', i.e. closer to
        the root).
        """
        ls, ld = self.level[src], self.level[dst]
        if ld != ls:
            return ld < ls
        return dst < src

    # -- routes ----------------------------------------------------------------
    def route(
        self, src: int, dst: int, restrict_to_tree: bool = False
    ) -> List[Hop]:
        """Shortest legal up*/down* route from ``src`` to ``dst``.

        ``restrict_to_tree`` confines the route to spanning-tree links (the
        Section 3 scheme that forbids crosslinks for deadlock-free
        switch-level multicast).
        """
        return list(self.route_shared(src, dst, restrict_to_tree))

    def route_shared(
        self, src: int, dst: int, restrict_to_tree: bool = False
    ) -> Tuple[Hop, ...]:
        """Memoized route as a shared immutable tuple (no per-call copy).

        The hot paths (worm injection, flit-level sends) call this once per
        worm; :meth:`route` wraps it with a defensive copy for callers that
        want a mutable list.
        """
        if src == dst:
            return ()
        self._refresh_if_stale()
        key = (src, dst, restrict_to_tree)
        cached = self._route_cache.get(key)
        if cached is not None:
            return cached
        hops = self._search(src, dst, restrict_to_tree)
        if hops is None:
            raise ValueError(f"no legal up/down route from {src} to {dst}")
        result = tuple(hops)
        self._route_cache[key] = result
        return result

    def _search(
        self, src: int, dst: int, restrict_to_tree: bool
    ) -> Optional[List[Hop]]:
        """BFS over (node, phase) states; phase flips irreversibly to DOWN."""
        start = (src, _UP)
        prev: Dict[Tuple[int, int], Tuple[Tuple[int, int], Hop]] = {}
        seen = {start}
        frontier = deque([start])
        goal: Optional[Tuple[int, int]] = None
        search_adj = self._search_adj
        while frontier and goal is None:
            node, phase = frontier.popleft()
            for peer, link, up_hop, crosslink in search_adj.get(node, ()):
                if restrict_to_tree and crosslink:
                    continue
                if phase == _DOWN and up_hop:
                    continue  # down -> up transitions are illegal
                state = (peer, _UP if up_hop else _DOWN)
                if state in seen:
                    continue
                seen.add(state)
                prev[state] = ((node, phase), (node, peer, link))
                if peer == dst:
                    goal = state
                    break
                frontier.append(state)
        if goal is None:
            # dst may have been reached in the other phase already.
            for phase in (_UP, _DOWN):
                if (dst, phase) in prev or (dst, phase) == start:
                    goal = (dst, phase)
                    break
        if goal is None:
            return None
        hops: List[Hop] = []
        state = goal
        while state != start:
            state, hop = prev[state]
            hops.append(hop)
        hops.reverse()
        return hops

    def multi_route(
        self, src: int, dsts: Sequence[int], restrict_to_tree: bool = False
    ) -> Dict[int, List[Hop]]:
        """Routes from ``src`` to several destinations out of a *single*
        layered BFS, so the paths are prefix-consistent and their union
        forms a tree (the switch-level multicast route of Section 3)."""
        targets = set(dsts)
        if src in targets:
            raise ValueError("source cannot be a multicast destination")
        self._refresh_if_stale()
        start = (src, _UP)
        prev: Dict[Tuple[int, int], Tuple[Tuple[int, int], Hop]] = {}
        seen = {start}
        frontier = deque([start])
        found: Dict[int, Tuple[int, int]] = {}
        search_adj = self._search_adj
        while frontier and len(found) < len(targets):
            node, phase = frontier.popleft()
            for peer, link, up_hop, crosslink in search_adj.get(node, ()):
                if restrict_to_tree and crosslink:
                    continue
                if phase == _DOWN and up_hop:
                    continue
                state = (peer, _UP if up_hop else _DOWN)
                if state in seen:
                    continue
                seen.add(state)
                prev[state] = ((node, phase), (node, peer, link))
                if peer in targets and peer not in found:
                    found[peer] = state
                frontier.append(state)
        missing = targets - set(found)
        if missing:
            raise ValueError(f"no legal route from {src} to {sorted(missing)}")
        routes: Dict[int, List[Hop]] = {}
        for dst, goal in found.items():
            hops: List[Hop] = []
            state = goal
            while state != start:
                state, hop = prev[state]
                hops.append(hop)
            hops.reverse()
            routes[dst] = hops
        return routes

    def multi_route_path(
        self, src: int, dsts: Sequence[int], restrict_to_tree: bool = False
    ) -> Dict[int, List[Hop]]:
        """Path-based (chain) multicast routes per the NoC-multicast
        taxonomy: one trunk visits the destination switches in a greedy
        nearest-neighbour order, branching off only to each local host.

        Destination ``i``'s hop list is the trunk up to its switch plus
        the final adapter hop, so the per-destination paths are strict
        prefix extensions of one another and their union is a caterpillar
        tree (contrast :meth:`multi_route`, whose union is a shortest-path
        tree).  Keys are in chain (visitation) order.

        Each chain segment is a legal up*/down* route on its own, but the
        concatenation generally is not -- path-based multicast trades the
        tree's replication fan-out for longer worms whose deadlock freedom
        must come from elsewhere (virtual channels; ``lanes >= 2``).
        """
        remaining = set(dsts)
        if src in remaining:
            raise ValueError("source cannot be a multicast destination")
        if not remaining:
            raise ValueError("multicast needs at least one destination")
        self._refresh_if_stale()
        topology = self.topology
        host_switch = {d: topology.host_switch(d) for d in remaining}
        adapter_hop: Dict[int, Hop] = {}
        for d in remaining:
            sw = host_switch[d]
            link = next(
                link for peer, link in topology.neighbors(sw) if peer == d
            )
            adapter_hop[d] = (sw, d, link)
        routes: Dict[int, List[Hop]] = {}
        trunk: List[Hop] = []
        cursor = src  # the host first, then the last visited switch
        while remaining:
            best = None
            for d in sorted(remaining):
                target = host_switch[d]
                length = (
                    0 if target == cursor
                    else len(self.route_shared(cursor, target, restrict_to_tree))
                )
                if best is None or length < best[0]:
                    best = (length, d)
            _, nxt = best
            target = host_switch[nxt]
            if target != cursor:
                trunk = trunk + list(
                    self.route_shared(cursor, target, restrict_to_tree)
                )
                cursor = target
            routes[nxt] = trunk + [adapter_hop[nxt]]
            remaining.discard(nxt)
        return routes

    def route_nodes(self, src: int, dst: int, restrict_to_tree: bool = False) -> List[int]:
        """The node sequence of :meth:`route`, including endpoints."""
        hops = self.route_shared(src, dst, restrict_to_tree)
        if not hops:
            return [src]
        return [hops[0][0]] + [hop[1] for hop in hops]

    def hop_count(self, src: int, dst: int) -> int:
        """Length (in hops) of the legal route between two nodes."""
        return len(self.route_shared(src, dst))

    def is_legal(self, nodes: Sequence[int]) -> bool:
        """Check that a node path obeys the up*/down* rule and uses real links."""
        phase = _UP
        for a, b in zip(nodes, nodes[1:]):
            if not any(peer == b for peer, _ in self.topology.neighbors(a)):
                return False
            if self.is_up(a, b):
                if phase == _DOWN:
                    return False
            else:
                phase = _DOWN
        return True

    def down_links(self, switch: int) -> List[Link]:
        """Spanning-tree links leading away from the root at ``switch``
        (the broadcast address of Section 3 forwards to all of these)."""
        self._refresh_if_stale()
        result = []
        for peer, link in self.topology.live_neighbors(switch):
            if link.id in self._tree_links and not self.is_up(switch, peer):
                result.append(link)
        return result


def check_deadlock_free(
    routing: UpDownRouting, pairs: Optional[Sequence[Tuple[int, int]]] = None
) -> bool:
    """Verify acyclicity of the channel dependency graph induced by routes.

    For every route, each consecutive pair of directed channels adds a
    dependency edge; the routing is deadlock-free iff the graph is acyclic
    [DS87].  ``pairs`` defaults to all ordered host pairs.
    """
    topo = routing.topology
    if pairs is None:
        hosts = topo.hosts
        pairs = [(a, b) for a in hosts for b in hosts if a != b]
    edges: Dict[Tuple[int, int], Set[Tuple[int, int]]] = {}
    for src, dst in pairs:
        hops = routing.route(src, dst)
        channels = [(a, b) for a, b, _ in hops]
        for first, second in zip(channels, channels[1:]):
            edges.setdefault(first, set()).add(second)
        for channel in channels:
            edges.setdefault(channel, set())
    # Kahn's algorithm.
    indegree = {node: 0 for node in edges}
    for deps in edges.values():
        for dep in deps:
            indegree[dep] += 1
    ready = deque(node for node, deg in indegree.items() if deg == 0)
    visited = 0
    while ready:
        node = ready.popleft()
        visited += 1
        for dep in edges[node]:
            indegree[dep] -= 1
            if indegree[dep] == 0:
                ready.append(dep)
    return visited == len(edges)
