"""Wormhole network substrate.

This package models the Myrinet-style wormhole LAN the paper's protocols run
over:

* :mod:`~repro.net.topology` -- switch/host/link graphs and the topologies
  evaluated in the paper (8x8 torus, 24-node bidirectional shufflenet, the
  4-switch Myrinet testbed) plus generic builders and multistage
  interconnects (leaf-spine Clos, Benes, k-ary n-fly butterfly) that scale
  past 1000 switches.
* :mod:`~repro.net.updown` -- deadlock-free up/down routing (Autonet/Myrinet
  style): spanning tree, link orientation, legal shortest routes, and a
  channel-dependency-graph deadlock-freedom checker.
* :mod:`~repro.net.worm` -- worm records and headers.
* :mod:`~repro.net.wormnet` -- the event-driven, worm-level wormhole transfer
  engine (path acquisition, blocking/backpressure, pipelined streaming).
* :mod:`~repro.net.flitlevel` -- the byte-granular substrate (slack buffers,
  STOP/GO, IDLE fills, crossbar switches) used for the switch-fabric
  multicast schemes and the deadlock demonstrations.
"""

from repro.net.topology import (
    Link,
    Node,
    Topology,
    benes,
    bidirectional_shufflenet,
    butterfly,
    clos,
    complete_switches,
    hypercube,
    line,
    mesh,
    myrinet_testbed,
    random_irregular,
    ring,
    star,
    torus,
)
from repro.net.updown import UpDownRouting, check_deadlock_free
from repro.net.worm import Worm, WormKind
from repro.net.wormnet import Channel, Transfer, WormholeNetwork

__all__ = [
    "Channel",
    "Link",
    "Node",
    "Topology",
    "Transfer",
    "UpDownRouting",
    "Worm",
    "WormKind",
    "WormholeNetwork",
    "benes",
    "bidirectional_shufflenet",
    "butterfly",
    "check_deadlock_free",
    "clos",
    "complete_switches",
    "hypercube",
    "line",
    "mesh",
    "myrinet_testbed",
    "random_irregular",
    "ring",
    "star",
    "torus",
]
