"""Network topologies: switches, hosts, links, and the paper's test networks.

A :class:`Topology` is an undirected multigraph of *switches* and *hosts*.
Hosts attach to exactly one switch (their adapter port); switches
interconnect freely.  Node identifiers are global integers; the protocols in
:mod:`repro.core` order hosts by these IDs, exactly as the paper orders hosts
by ID for deadlock prevention.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, List, Optional, Set, Tuple

SWITCH = "switch"
HOST = "host"


@dataclass(frozen=True)
class Node:
    """A network node: a crossbar switch or a host (adapter)."""

    id: int
    kind: str
    name: str

    @property
    def is_host(self) -> bool:
        return self.kind == HOST

    @property
    def is_switch(self) -> bool:
        return self.kind == SWITCH


@dataclass(frozen=True)
class Link:
    """An undirected link between two nodes.

    ``prop_delay`` is the one-way propagation delay in byte-times (the
    shufflenet experiments of Figure 11 use 1000 byte-times).
    """

    id: int
    a: int
    b: int
    prop_delay: float = 0.0

    def other(self, node: int) -> int:
        """The endpoint opposite ``node``."""
        if node == self.a:
            return self.b
        if node == self.b:
            return self.a
        raise ValueError(f"node {node} is not an endpoint of link {self.id}")

    @property
    def ends(self) -> Tuple[int, int]:
        return (self.a, self.b)


@dataclass(frozen=True)
class TopologyChange:
    """One liveness or structural mutation, as seen by change listeners.

    ``kind`` is one of ``link_fail``/``link_repair``/``node_fail``/
    ``node_repair``/``link_add``/``node_add``; ``target`` is the link or
    node id the change applies to.
    """

    kind: str
    target: int


class Topology:
    """An undirected switch/host graph with component liveness.

    Every node and link is *alive* when created; the fault-injection layer
    (:mod:`repro.faults`) toggles liveness through :meth:`fail_link` /
    :meth:`fail_node` and their repair counterparts.  Structural and
    liveness mutations bump :attr:`version`, which the route/channel caches
    downstream (:class:`~repro.net.updown.UpDownRouting`,
    :class:`~repro.net.wormnet.WormholeNetwork`) use to detect staleness.
    """

    def __init__(self, name: str = "net") -> None:
        self.name = name
        self._nodes: Dict[int, Node] = {}
        self._links: List[Link] = []
        self._adjacency: Dict[int, List[Link]] = {}
        self._host_link: Dict[int, Link] = {}
        self._dead_links: Set[int] = set()
        self._dead_nodes: Set[int] = set()
        #: Monotonic mutation counter; bumped by every structural or
        #: liveness change.
        self.version = 0
        self._listeners: List[Callable[["Topology", TopologyChange], None]] = []

    def _mutated(self, kind: str, target: int) -> None:
        self.version += 1
        if self._listeners:
            change = TopologyChange(kind, target)
            for listener in list(self._listeners):
                listener(self, change)

    def add_listener(
        self, fn: Callable[["Topology", TopologyChange], None]
    ) -> None:
        """Register ``fn(topology, change)`` to run on every mutation."""
        self._listeners.append(fn)

    def remove_listener(
        self, fn: Callable[["Topology", TopologyChange], None]
    ) -> None:
        self._listeners.remove(fn)

    # -- construction --------------------------------------------------------
    def add_switch(self, name: Optional[str] = None) -> int:
        """Add a switch; returns its node id."""
        nid = len(self._nodes)
        node = Node(nid, SWITCH, name or f"s{nid}")
        self._nodes[nid] = node
        self._adjacency[nid] = []
        self._mutated("node_add", nid)
        return nid

    def add_host(
        self, switch: int, name: Optional[str] = None, prop_delay: float = 0.0
    ) -> int:
        """Add a host attached to ``switch``; returns its node id."""
        if self.node(switch).kind != SWITCH:
            raise ValueError(f"hosts must attach to switches, {switch} is a host")
        nid = len(self._nodes)
        node = Node(nid, HOST, name or f"h{nid}")
        self._nodes[nid] = node
        self._adjacency[nid] = []
        link = self._connect(nid, switch, prop_delay)
        self._host_link[nid] = link
        self._mutated("node_add", nid)
        return nid

    def add_link(self, a: int, b: int, prop_delay: float = 0.0) -> Link:
        """Add a switch-to-switch link.

        Parallel links between the same switch pair are rejected: directed
        channels are identified by their endpoint pair throughout the
        simulator.
        """
        if a == b:
            raise ValueError("self-links are not allowed")
        for node in (a, b):
            if self.node(node).kind != SWITCH:
                raise ValueError(f"add_link joins switches only, {node} is a host")
        if any(link.other(a) == b for link in self._adjacency[a]):
            raise ValueError(f"link {a}-{b} already exists")
        return self._connect(a, b, prop_delay)

    def _connect(self, a: int, b: int, prop_delay: float) -> Link:
        link = Link(len(self._links), a, b, prop_delay)
        self._links.append(link)
        self._adjacency[a].append(link)
        self._adjacency[b].append(link)
        self._mutated("link_add", link.id)
        return link

    # -- liveness -------------------------------------------------------------
    def fail_link(self, link_id: int) -> None:
        """Mark a link down (cable cut / port failure)."""
        if not 0 <= link_id < len(self._links):
            raise KeyError(f"no link with id {link_id}")
        if link_id not in self._dead_links:
            self._dead_links.add(link_id)
            self._mutated("link_fail", link_id)

    def repair_link(self, link_id: int) -> None:
        """Bring a failed link back up."""
        if not 0 <= link_id < len(self._links):
            raise KeyError(f"no link with id {link_id}")
        if link_id in self._dead_links:
            self._dead_links.discard(link_id)
            self._mutated("link_repair", link_id)

    def fail_node(self, nid: int) -> None:
        """Mark a switch or host down (crash / power loss).

        A dead node's links are implicitly unusable; they revive with the
        node unless individually failed.
        """
        self.node(nid)  # validate
        if nid not in self._dead_nodes:
            self._dead_nodes.add(nid)
            self._mutated("node_fail", nid)

    def repair_node(self, nid: int) -> None:
        self.node(nid)  # validate
        if nid in self._dead_nodes:
            self._dead_nodes.discard(nid)
            self._mutated("node_repair", nid)

    def link_alive(self, link_id: int) -> bool:
        return link_id not in self._dead_links

    def node_alive(self, nid: int) -> bool:
        return nid not in self._dead_nodes

    def link_usable(self, link: Link) -> bool:
        """True when the link and both its endpoints are alive."""
        return (
            link.id not in self._dead_links
            and link.a not in self._dead_nodes
            and link.b not in self._dead_nodes
        )

    @property
    def dead_links(self) -> Set[int]:
        return set(self._dead_links)

    @property
    def dead_nodes(self) -> Set[int]:
        return set(self._dead_nodes)

    @property
    def fully_alive(self) -> bool:
        return not self._dead_links and not self._dead_nodes

    def live_hosts(self) -> List[int]:
        """Alive host ids in increasing order."""
        return [
            h for h in self.hosts
            if h not in self._dead_nodes
            and self._host_link[h].id not in self._dead_links
        ]

    def live_neighbors(self, nid: int) -> Iterator[Tuple[int, Link]]:
        """Like :meth:`neighbors` but restricted to usable links."""
        for link in self._adjacency[nid]:
            if self.link_usable(link):
                yield link.other(nid), link

    # -- access ---------------------------------------------------------------
    def node(self, nid: int) -> Node:
        try:
            return self._nodes[nid]
        except KeyError:
            raise KeyError(f"no node with id {nid} in topology {self.name!r}") from None

    @property
    def nodes(self) -> List[Node]:
        return list(self._nodes.values())

    @property
    def links(self) -> List[Link]:
        return list(self._links)

    @property
    def switches(self) -> List[int]:
        return [n.id for n in self._nodes.values() if n.is_switch]

    @property
    def hosts(self) -> List[int]:
        """Host ids in increasing order (the paper's deadlock-prevention order)."""
        return sorted(n.id for n in self._nodes.values() if n.is_host)

    def adjacent(self, nid: int) -> List[Link]:
        """Links incident to ``nid``."""
        return list(self._adjacency[nid])

    def neighbors(self, nid: int) -> Iterator[Tuple[int, Link]]:
        """(peer id, link) pairs for every link at ``nid``."""
        for link in self._adjacency[nid]:
            yield link.other(nid), link

    def host_switch(self, host: int) -> int:
        """The switch a host attaches to."""
        link = self._host_link.get(host)
        if link is None:
            raise ValueError(f"{host} is not a host")
        return link.other(host)

    def host_link(self, host: int) -> Link:
        """The adapter link of ``host``."""
        link = self._host_link.get(host)
        if link is None:
            raise ValueError(f"{host} is not a host")
        return link

    def is_connected(self, live_only: bool = False) -> bool:
        """True when every node is reachable from every other.

        With ``live_only`` the walk is restricted to the live subgraph
        (dead nodes and their links excluded) -- the connectivity question
        reconfiguration must answer after a failure.
        """
        if live_only:
            nodes = [n for n in self._nodes if n not in self._dead_nodes]
            step = self.live_neighbors
        else:
            nodes = list(self._nodes)
            step = self.neighbors
        if not nodes:
            return True
        seen = set()
        stack = [nodes[0]]
        while stack:
            nid = stack.pop()
            if nid in seen:
                continue
            seen.add(nid)
            for peer, _ in step(nid):
                if peer not in seen and (not live_only or peer not in self._dead_nodes):
                    stack.append(peer)
        return len(seen) == len(nodes)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<Topology {self.name!r}: {len(self.switches)} switches, "
            f"{len(self.hosts)} hosts, {len(self._links)} links>"
        )


# ---------------------------------------------------------------------------
# Builders
# ---------------------------------------------------------------------------

#: Hard ceiling on switches a builder will create in one call -- large
#: enough for every 1000+-switch scenario the roadmap names, small enough
#: to catch runaway parameters (e.g. ``bidirectional_shufflenet(10, 9)``
#: would otherwise silently ask for nine billion switches).
MAX_SWITCHES = 1_048_576

#: Route bytes address output ports, so a switch's route-addressable port
#: indices must stay below ``BROADCAST_BYTE`` (0xFE, see
#: :mod:`repro.net.flitlevel.switch`): at most 254 ports per switch at one
#: lane.  Builders check the switch degree they are about to create;
#: :class:`~repro.net.flitlevel.network.FlitNetwork` re-validates exactly
#: (degree x lanes + host links) once the lane count is known.
ROUTE_PORT_LIMIT = 254


def _check_scale(builder: str, n_switches: int, degree: int) -> None:
    """Shared degenerate-size guard for the topology builders."""
    if n_switches > MAX_SWITCHES:
        raise ValueError(
            f"{builder}: {n_switches} switches exceeds MAX_SWITCHES="
            f"{MAX_SWITCHES}; reduce the size parameters"
        )
    if degree > ROUTE_PORT_LIMIT:
        raise ValueError(
            f"{builder}: switch degree {degree} exceeds the route-byte "
            f"port limit ({ROUTE_PORT_LIMIT}); source-route bytes cannot "
            f"address that many output ports"
        )


def torus(
    rows: int = 8,
    cols: int = 8,
    hosts_per_switch: int = 1,
    prop_delay: float = 0.0,
) -> Topology:
    """A rows x cols wraparound torus, the paper's 8x8 simulation topology.

    Each switch carries ``hosts_per_switch`` hosts (the paper attaches one).
    """
    if rows < 2 or cols < 2:
        raise ValueError("torus needs at least 2 rows and 2 columns")
    _check_scale("torus", rows * cols, 4 + hosts_per_switch)
    topo = Topology(name=f"torus-{rows}x{cols}")
    grid = [[topo.add_switch(f"s{r},{c}") for c in range(cols)] for r in range(rows)]
    seen = set()

    def _wire(a: int, b: int) -> None:
        # A 2-wide dimension wraps onto the same pair twice; keep one link.
        key = frozenset({a, b})
        if key not in seen:
            seen.add(key)
            topo.add_link(a, b, prop_delay)

    for r in range(rows):
        for c in range(cols):
            _wire(grid[r][c], grid[r][(c + 1) % cols])
    for c in range(cols):
        for r in range(rows):
            _wire(grid[r][c], grid[(r + 1) % rows][c])
    for r in range(rows):
        for c in range(cols):
            for h in range(hosts_per_switch):
                topo.add_host(grid[r][c], f"h{r},{c}.{h}")
    return topo


def mesh(rows: int, cols: int, hosts_per_switch: int = 1) -> Topology:
    """A rows x cols grid without wraparound links."""
    if rows < 1 or cols < 1:
        raise ValueError("mesh needs positive dimensions")
    topo = Topology(name=f"mesh-{rows}x{cols}")
    grid = [[topo.add_switch(f"s{r},{c}") for c in range(cols)] for r in range(rows)]
    for r in range(rows):
        for c in range(cols):
            if c + 1 < cols:
                topo.add_link(grid[r][c], grid[r][c + 1])
            if r + 1 < rows:
                topo.add_link(grid[r][c], grid[r + 1][c])
    for r in range(rows):
        for c in range(cols):
            for h in range(hosts_per_switch):
                topo.add_host(grid[r][c], f"h{r},{c}.{h}")
    return topo


def bidirectional_shufflenet(
    p: int = 2, k: int = 3, prop_delay: float = 0.0
) -> Topology:
    """The (p, k) bidirectional shufflenet of [PLG95]; (2, 3) gives 24 nodes.

    Nodes are arranged in ``k`` columns of ``p**k`` rows; node (c, r) links to
    (c+1 mod k, (r*p + j) mod p**k) for j in 0..p-1, links made bidirectional.
    Each switch carries one host, as in the paper's Figure 11 experiment.
    """
    if p < 2 or k < 1:
        raise ValueError("shufflenet needs p >= 2 and k >= 1")
    rows = p**k
    # Each switch fans p links forward and receives p backward (plus one
    # host adapter); 1000+-switch instances, e.g. (2, 8) = 2048 switches,
    # stay well inside the route-byte port budget.
    _check_scale("bidirectional_shufflenet", k * rows, 2 * p + 1)
    topo = Topology(name=f"bshufflenet-{p},{k}")
    grid = [[topo.add_switch(f"s{c},{r}") for r in range(rows)] for c in range(k)]
    seen = set()
    for c in range(k):
        nxt = (c + 1) % k
        for r in range(rows):
            for j in range(p):
                r2 = (r * p + j) % rows
                key = frozenset({(c, r), (nxt, r2)})
                # k == 1 or p-cycle shuffles can generate duplicate pairs;
                # keep the multigraph simple.
                if key in seen or (c, r) == (nxt, r2):
                    continue
                seen.add(key)
                topo.add_link(grid[c][r], grid[nxt][r2], prop_delay)
    for c in range(k):
        for r in range(rows):
            # Adapter links are local: only switch-to-switch links carry the
            # (long) propagation delay in the Figure 11 experiments.
            topo.add_host(grid[c][r], f"h{c},{r}")
    return topo


def clos(
    spines: int = 4,
    leaves: int = 8,
    hosts_per_leaf: int = 4,
    prop_delay: float = 0.0,
) -> Topology:
    """A folded two-level Clos (leaf-spine): every leaf links to every
    spine, hosts attach to the leaves.

    Switches are named ``s{stage},{row}`` (stage 0 = spines, stage 1 =
    leaves) so the stage-cut partitioner applies.  A spine's degree is
    ``leaves`` and a leaf's is ``spines + hosts_per_leaf``, so both are
    bounded by the route-byte port limit -- large fabrics should grow via
    :func:`butterfly` / :func:`benes` stages rather than flat radix.
    """
    if spines < 1 or leaves < 2:
        raise ValueError("clos needs spines >= 1 and leaves >= 2")
    if hosts_per_leaf < 1:
        raise ValueError("clos needs hosts_per_leaf >= 1")
    _check_scale(
        "clos", spines + leaves, max(leaves, spines + hosts_per_leaf)
    )
    topo = Topology(name=f"clos-{spines}x{leaves}")
    spine_ids = [topo.add_switch(f"s0,{i}") for i in range(spines)]
    leaf_ids = [topo.add_switch(f"s1,{j}") for j in range(leaves)]
    for leaf in leaf_ids:
        for spine in spine_ids:
            topo.add_link(spine, leaf, prop_delay)
    for j, leaf in enumerate(leaf_ids):
        for h in range(hosts_per_leaf):
            topo.add_host(leaf, f"h{j}.{h}")
    return topo


def butterfly(
    k: int = 2,
    n: int = 3,
    hosts_per_switch: int = 1,
    prop_delay: float = 0.0,
) -> Topology:
    """A k-ary n-fly butterfly MIN: ``n`` stages of ``k**(n-1)`` switches.

    Between stages ``s`` and ``s+1`` a switch in row ``r`` links to every
    row that differs from ``r`` only in base-k digit ``n-2-s`` (most
    significant digit first), the classic destination-tag wiring.  Inner
    switches have degree ``2k``.  Hosts attach to the first and last
    stages (the terminal rows).  Switches are named ``s{stage},{row}``,
    so the stage-cut partitioner applies; ``butterfly(4, 6)`` is a
    6144-switch instance for the 1000+-switch scenarios.
    """
    if k < 2 or n < 2:
        raise ValueError("butterfly needs k >= 2 and n >= 2")
    if hosts_per_switch < 1:
        raise ValueError("butterfly needs hosts_per_switch >= 1")
    rows = k ** (n - 1)
    _check_scale("butterfly", n * rows, 2 * k + hosts_per_switch)
    topo = Topology(name=f"butterfly-{k}ary{n}")
    grid = [
        [topo.add_switch(f"s{s},{r}") for r in range(rows)] for s in range(n)
    ]
    for s in range(n - 1):
        digit = n - 2 - s
        span = k**digit
        for r in range(rows):
            hi, rest = divmod(r, span * k)
            _old, lo = divmod(rest, span)
            for j in range(k):
                r2 = hi * span * k + j * span + lo
                topo.add_link(grid[s][r], grid[s + 1][r2], prop_delay)
    for stage in (0, n - 1):
        for r in range(rows):
            for h in range(hosts_per_switch):
                topo.add_host(grid[stage][r], f"h{stage},{r}.{h}")
    return topo


def benes(
    terminals: int = 8,
    hosts_per_switch: int = 1,
    prop_delay: float = 0.0,
) -> Topology:
    """A Benes rearrangeable MIN for ``terminals = 2**m`` endpoints:
    ``2m - 1`` stages of ``terminals / 2`` two-by-two switches (two
    back-to-back 2-ary butterflies sharing the middle stage).

    Between stages ``s`` and ``s+1`` row ``r`` links straight to ``r``
    and crossed to ``r ^ (1 << b)`` with ``b = m-2-s`` in the first half
    and its mirror ``b = s-(m-1)`` in the second.  Hosts attach to the
    first and last stages; switches are named ``s{stage},{row}`` for the
    stage-cut partitioner.  ``benes(256)`` is a 1920-switch instance.
    """
    if terminals < 4 or terminals & (terminals - 1):
        raise ValueError("benes needs terminals = a power of two >= 4")
    if hosts_per_switch < 1:
        raise ValueError("benes needs hosts_per_switch >= 1")
    m = terminals.bit_length() - 1
    rows = terminals // 2
    stages = 2 * m - 1
    _check_scale("benes", stages * rows, 4 + hosts_per_switch)
    topo = Topology(name=f"benes-{terminals}")
    grid = [
        [topo.add_switch(f"s{s},{r}") for r in range(rows)]
        for s in range(stages)
    ]
    for s in range(stages - 1):
        bit = m - 2 - s if s < m - 1 else s - (m - 1)
        for r in range(rows):
            topo.add_link(grid[s][r], grid[s + 1][r], prop_delay)
            r2 = r ^ (1 << bit)
            if r2 > r:
                topo.add_link(grid[s][r], grid[s + 1][r2], prop_delay)
                topo.add_link(grid[s][r2], grid[s + 1][r], prop_delay)
    for stage in (0, stages - 1):
        for r in range(rows):
            for h in range(hosts_per_switch):
                topo.add_host(grid[stage][r], f"h{stage},{r}.{h}")
    return topo


def line(n_switches: int, hosts_per_switch: int = 1) -> Topology:
    """``n_switches`` switches in a chain."""
    if n_switches < 1:
        raise ValueError("need at least one switch")
    topo = Topology(name=f"line-{n_switches}")
    ids = [topo.add_switch() for _ in range(n_switches)]
    for a, b in zip(ids, ids[1:]):
        topo.add_link(a, b)
    for sid in ids:
        for _ in range(hosts_per_switch):
            topo.add_host(sid)
    return topo


def ring(n_switches: int, hosts_per_switch: int = 1) -> Topology:
    """``n_switches`` switches in a cycle."""
    if n_switches < 3:
        raise ValueError("a ring needs at least three switches")
    topo = Topology(name=f"ring-{n_switches}")
    ids = [topo.add_switch() for _ in range(n_switches)]
    for i, sid in enumerate(ids):
        topo.add_link(sid, ids[(i + 1) % n_switches])
    for sid in ids:
        for _ in range(hosts_per_switch):
            topo.add_host(sid)
    return topo


def star(n_leaves: int, hosts_per_leaf: int = 1) -> Topology:
    """A hub switch with ``n_leaves`` leaf switches, hosts on the leaves."""
    if n_leaves < 1:
        raise ValueError("need at least one leaf")
    topo = Topology(name=f"star-{n_leaves}")
    hub = topo.add_switch("hub")
    for _ in range(n_leaves):
        leaf = topo.add_switch()
        topo.add_link(hub, leaf)
        for _ in range(hosts_per_leaf):
            topo.add_host(leaf)
    return topo


def myrinet_testbed(hosts: int = 8, switches: int = 4) -> Topology:
    """The 4-switch / 8-host Myrinet configuration of the measurements
    (Section 8.2): switches in a chain, hosts spread evenly across them."""
    if switches < 1 or hosts < 1:
        raise ValueError("need at least one switch and one host")
    topo = Topology(name=f"myrinet-{switches}sw-{hosts}h")
    ids = [topo.add_switch() for _ in range(switches)]
    for a, b in zip(ids, ids[1:]):
        topo.add_link(a, b)
    for h in range(hosts):
        topo.add_host(ids[h % switches], f"host{h}")
    return topo


def random_irregular(
    n_switches: int,
    extra_links: int = 0,
    hosts_per_switch: int = 1,
    seed: int = 0,
) -> Topology:
    """A random connected topology: a random spanning tree plus
    ``extra_links`` random crosslinks (the 'almost a tree with a few
    crosslinks as back-ups' case discussed in Section 3)."""
    if n_switches < 1:
        raise ValueError("need at least one switch")
    rng = random.Random(seed)
    topo = Topology(name=f"irregular-{n_switches}+{extra_links}")
    ids = [topo.add_switch() for _ in range(n_switches)]
    shuffled = ids[:]
    rng.shuffle(shuffled)
    for i in range(1, n_switches):
        topo.add_link(shuffled[i], rng.choice(shuffled[:i]))
    existing = {frozenset(l.ends) for l in topo.links}
    candidates = [
        (a, b)
        for i, a in enumerate(ids)
        for b in ids[i + 1 :]
        if frozenset({a, b}) not in existing
    ]
    rng.shuffle(candidates)
    for a, b in candidates[:extra_links]:
        topo.add_link(a, b)
    for sid in ids:
        for _ in range(hosts_per_switch):
            topo.add_host(sid)
    return topo


def hypercube(dimension: int, hosts_per_switch: int = 1) -> Topology:
    """A ``dimension``-cube of switches (2**dimension nodes), the classic
    wormhole-routing multiprocessor topology [NM93]."""
    if dimension < 1:
        raise ValueError("dimension must be at least 1")
    topo = Topology(name=f"hypercube-{dimension}")
    count = 2**dimension
    ids = [topo.add_switch(f"s{index:0{dimension}b}") for index in range(count)]
    for index in range(count):
        for bit in range(dimension):
            peer = index ^ (1 << bit)
            if peer > index:
                topo.add_link(ids[index], ids[peer])
    for sid in ids:
        for _ in range(hosts_per_switch):
            topo.add_host(sid)
    return topo


def complete_switches(n_switches: int, hosts_per_switch: int = 1) -> Topology:
    """Fully connected switch graph (every crosslink present): the extreme
    case for the Section 3 tree-restriction penalty, since up/down
    routing leaves most links unused."""
    if n_switches < 2:
        raise ValueError("need at least two switches")
    topo = Topology(name=f"complete-{n_switches}")
    ids = [topo.add_switch() for _ in range(n_switches)]
    for i, a in enumerate(ids):
        for b in ids[i + 1 :]:
            topo.add_link(a, b)
    for sid in ids:
        for _ in range(hosts_per_switch):
            topo.add_host(sid)
    return topo


# ---------------------------------------------------------------------------
# Partitioning (conservative parallel simulation, see :mod:`repro.par`)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class TopologyPartition:
    """A deterministic K-way partition of a topology's *switches*.

    Hosts are not listed: they always follow the switch they attach to, so
    adapter links are never cut (every cut link is switch-to-switch).

    ``cut_links`` is the boundary metadata a conservative parallel runner
    needs: the ids of links whose endpoints live in different shards, in
    increasing link-id order.  The per-cut *lookahead* is a property of the
    network built on top (wire delay = ``max(1, wire_delay + prop_delay)``),
    so only the raw ``prop_delay`` floor is exposed here via
    :meth:`min_cut_prop_delay`.
    """

    scheme: str
    shards: Tuple[Tuple[int, ...], ...]
    cut_links: Tuple[int, ...]
    #: switch id -> shard index (derived from ``shards`` at construction).
    shard_of: Dict[int, int] = field(default_factory=dict, compare=False)

    @property
    def k(self) -> int:
        return len(self.shards)

    def shard_hosts(self, topo: Topology) -> Tuple[Tuple[int, ...], ...]:
        """Host ids per shard: each host lands with its switch."""
        hosts: List[List[int]] = [[] for _ in self.shards]
        for hid in topo.hosts:
            hosts[self.shard_of[topo.host_switch(hid)]].append(hid)
        return tuple(tuple(h) for h in hosts)

    def min_cut_prop_delay(self, topo: Topology) -> float:
        """Smallest propagation delay over the cut links (inf if none)."""
        if not self.cut_links:
            return float("inf")
        links = {l.id: l for l in topo.links}
        return min(links[lid].prop_delay for lid in self.cut_links)

    def describe(self) -> str:
        sizes = "/".join(str(len(s)) for s in self.shards)
        return (
            f"{self.scheme} partition: k={self.k} sizes={sizes} "
            f"cuts={len(self.cut_links)}"
        )


def _partition_from_shards(
    topo: Topology, scheme: str, shards: List[List[int]]
) -> TopologyPartition:
    shard_of = {
        sid: index for index, members in enumerate(shards) for sid in members
    }
    missing = set(topo.switches) - set(shard_of)
    if missing:
        raise ValueError(f"partition misses switches: {sorted(missing)}")
    cut = tuple(
        link.id
        for link in topo.links
        if topo.node(link.a).is_switch
        and topo.node(link.b).is_switch
        and shard_of[link.a] != shard_of[link.b]
    )
    return TopologyPartition(
        scheme=scheme,
        shards=tuple(tuple(members) for members in shards),
        cut_links=cut,
        shard_of=shard_of,
    )


def _grid_coords(topo: Topology) -> Optional[Dict[int, Tuple[int, int]]]:
    """Parse ``s{i},{j}`` switch names (torus/mesh/shufflenet builders) into
    per-switch grid coordinates; None when any name does not match."""
    coords: Dict[int, Tuple[int, int]] = {}
    for sid in topo.switches:
        name = topo.node(sid).name
        if not name.startswith("s") or "," not in name:
            return None
        try:
            i, j = name[1:].split(",", 1)
            coords[sid] = (int(i), int(j))
        except ValueError:
            return None
    return coords


def _balanced_chunks(items: List[int], k: int) -> List[List[int]]:
    """Split ``items`` into ``k`` contiguous chunks with sizes differing by
    at most one (the first ``len % k`` chunks take the extra element)."""
    n = len(items)
    base, extra = divmod(n, k)
    chunks: List[List[int]] = []
    start = 0
    for index in range(k):
        size = base + (1 if index < extra else 0)
        chunks.append(items[start : start + size])
        start += size
    return chunks


def partition_torus_rows(topo: Topology, k: int) -> TopologyPartition:
    """Block-cut a torus/mesh into ``k`` contiguous row bands.

    Cuts only the vertical (row-crossing) links -- ``2 * cols`` per band
    boundary on a torus -- which is the minimum-boundary axis-aligned cut.
    """
    coords = _grid_coords(topo)
    if coords is None:
        raise ValueError(f"{topo.name!r} has no s<row>,<col> grid names")
    rows = sorted({r for r, _ in coords.values()})
    if k > len(rows):
        raise ValueError(f"cannot cut {len(rows)} rows into {k} bands")
    band_of = {
        row: index
        for index, band in enumerate(_balanced_chunks(rows, k))
        for row in band
    }
    shards: List[List[int]] = [[] for _ in range(k)]
    for sid in topo.switches:  # creation order within each band
        shards[band_of[coords[sid][0]]].append(sid)
    return _partition_from_shards(topo, "torus-rows", shards)


def partition_shufflenet_stages(topo: Topology, k: int) -> TopologyPartition:
    """Cut a staged topology into groups of whole columns (pipeline
    stages).

    Shufflenet links only join adjacent stages (mod k), so grouping whole
    stages keeps every intra-stage boundary internal.  The multistage
    interconnect builders (:func:`clos`, :func:`benes`,
    :func:`butterfly`) share the ``s{stage},{row}`` naming and the
    adjacent-stages-only property, so the same cutter gives them
    minimum-boundary stage cuts.
    """
    coords = _grid_coords(topo)
    if coords is None:
        raise ValueError(f"{topo.name!r} has no s<stage>,<row> grid names")
    stages = sorted({c for c, _ in coords.values()})
    if k > len(stages):
        raise ValueError(f"cannot cut {len(stages)} stages into {k} groups")
    group_of = {
        stage: index
        for index, group in enumerate(_balanced_chunks(stages, k))
        for stage in group
    }
    shards: List[List[int]] = [[] for _ in range(k)]
    for sid in topo.switches:
        shards[group_of[coords[sid][0]]].append(sid)
    return _partition_from_shards(topo, "shufflenet-stages", shards)


def partition_bfs(topo: Topology, k: int) -> TopologyPartition:
    """Generic fallback: chunk a deterministic BFS order into ``k``
    balanced contiguous pieces.

    BFS from the smallest switch id with sorted neighbor expansion keeps
    each chunk roughly connected, so cuts stay near a frontier instead of
    scattering.  Disconnected leftovers are appended in id order.
    """
    switches = sorted(topo.switches)
    if k > len(switches):
        raise ValueError(f"cannot cut {len(switches)} switches {k} ways")
    switch_set = set(switches)
    order: List[int] = []
    seen: Set[int] = set()
    for root in switches:
        if root in seen:
            continue
        queue = [root]
        seen.add(root)
        while queue:
            sid = queue.pop(0)
            order.append(sid)
            peers = sorted(
                peer
                for peer, _link in topo.neighbors(sid)
                if peer in switch_set and peer not in seen
            )
            seen.update(peers)
            queue.extend(peers)
    return _partition_from_shards(topo, "bfs", _balanced_chunks(order, k))


def partition_topology(
    topo: Topology, k: int, scheme: str = "auto"
) -> TopologyPartition:
    """Deterministically partition ``topo``'s switches into ``k`` shards.

    ``scheme``: ``"torus-rows"``, ``"shufflenet-stages"``, ``"bfs"``, or
    ``"auto"`` (pick by topology family, falling back to BFS when the
    specialized cutter cannot produce ``k`` shards -- e.g. more shards
    than shufflenet stages).
    """
    if k < 1:
        raise ValueError("need at least one shard")
    if k == 1:
        return _partition_from_shards(topo, "single", [list(topo.switches)])
    if scheme == "torus-rows":
        return partition_torus_rows(topo, k)
    if scheme == "shufflenet-stages":
        return partition_shufflenet_stages(topo, k)
    if scheme == "bfs":
        return partition_bfs(topo, k)
    if scheme != "auto":
        raise ValueError(f"unknown partition scheme {scheme!r}")
    name = topo.name
    try:
        if name.startswith(("torus-", "mesh-")):
            return partition_torus_rows(topo, k)
        if name.startswith(
            ("bshufflenet-", "clos-", "benes-", "butterfly-")
        ):
            return partition_shufflenet_stages(topo, k)
    except ValueError:
        pass  # fall through to the generic cutter
    return partition_bfs(topo, k)


def fig3_topology() -> Topology:
    """The five-switch scenario of Figure 3 (deadlock between a multicast and
    a unicast worm under up/down routing with a crosslink).

    Switches A, B, C, D, E; spanning-tree links A-B, B-C(via figure's layout
    A-C), C-D, B-E and crosslink D-E; hosts b (on E) and c (on D) plus source
    hosts on A.
    """
    topo = Topology(name="fig3")
    a = topo.add_switch("A")
    b = topo.add_switch("B")
    c = topo.add_switch("C")
    d = topo.add_switch("D")
    e = topo.add_switch("E")
    topo.add_link(a, b)
    topo.add_link(a, c)
    topo.add_link(c, d)
    topo.add_link(b, e)
    topo.add_link(d, e)  # the crosslink
    topo.add_host(a, "srcM")  # multicast source
    topo.add_host(a, "srcU")  # unicast source
    topo.add_host(e, "host_b")
    topo.add_host(d, "host_c")
    topo.add_host(c, "host_y")  # the figure's unicast source routing via C
    return topo
