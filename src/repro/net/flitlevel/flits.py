"""Flits: the byte-level unit on a wire."""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import List, Optional


class FlitKind(str, Enum):
    """What a one-byte wire slot carries."""

    ROUTE = "route"      # a source-route header byte
    DATA = "data"        # payload byte
    TAIL = "tail"        # last byte of the worm
    FRAG_TAIL = "ftail"  # end of an interrupted fragment (scheme 2)
    IDLE = "idle"        # IDLE fill character


@dataclass(frozen=True)
class Flit:
    """One byte-slot.

    ``wid`` ties the flit to its worm; ``value`` is the byte for ROUTE
    flits (port number, pointer or end marker) and is unused for payload
    (the simulation does not care about payload contents).
    """

    kind: FlitKind
    wid: int
    value: int = 0
    multicast: bool = False
    broadcast: bool = False

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        if self.kind == FlitKind.ROUTE:
            return f"R({self.value})#{self.wid}"
        return f"{self.kind.value[0].upper()}#{self.wid}"


def worm_flits(
    wid: int,
    header: bytes,
    payload_bytes: int,
    multicast: bool = False,
    broadcast: bool = False,
) -> List[Flit]:
    """Build the flit stream for a worm: header bytes, payload, tail."""
    if payload_bytes < 1:
        raise ValueError("worm needs at least one payload byte (the tail)")
    flits = [
        Flit(FlitKind.ROUTE, wid, value=b, multicast=multicast, broadcast=broadcast)
        for b in header
    ]
    flits.extend(
        Flit(FlitKind.DATA, wid, multicast=multicast, broadcast=broadcast)
        for _ in range(payload_bytes - 1)
    )
    flits.append(Flit(FlitKind.TAIL, wid, multicast=multicast, broadcast=broadcast))
    return flits
