"""Cross-engine crosscheck harness.

The active-set and array engines
(:class:`~repro.net.flitlevel.network.FlitNetwork` with ``engine="active"``
/ ``engine="array"``) promise *byte-identical semantics* to the dense
polling loop: the same per-worm delivery ticks, the same retransmission
counts, the same final run status, across all multicast modes and under
fault injection.  This module turns that promise into something checkable.

Usage::

    from repro.net.flitlevel.crosscheck import crosscheck

    def scenario(engine):
        net = FlitNetwork(torus(3, 3), engine=engine, seed=11)
        net.send_multicast(0, [4, 7], payload_bytes=96)
        status = net.run(max_ticks=50_000)
        return net, status

    report = crosscheck(scenario)                          # dense vs active
    report = crosscheck(scenario, engines=("dense", "array"))
    assert report.ok, report.describe()

Worm ids come from a process-global counter, so the dense and active runs
of the same scenario observe *disjoint* wid ranges.  The timelines are
therefore keyed by **creation ordinal** (the k-th worm ever created inside
one run), recovered by sorting the observed wids -- the counter is
monotonic, so sorted order is creation order, and byte-identical runs
create worms in the same order.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

__all__ = [
    "worm_timeline",
    "timeline_digest",
    "crosscheck",
    "crosscheck_partitioned",
    "CrosscheckReport",
]


def worm_timeline(net, status: str) -> Dict[str, Any]:
    """Reduce a finished run to an engine-independent canonical dict.

    Every field that the paper's metrics depend on is captured: global
    counters, per-worm injection/delivery ticks and retransmission counts,
    per-host arrival sequences, and host-multicast message completion.
    Two runs agree on the byte level iff their timelines compare equal.
    """
    # All wids ever created: records holds live + delivered worms, killed
    # holds flushed ones (whose records lose_worm() may have forgotten).
    all_wids = sorted(set(net.records) | set(net.killed))
    ordinal = {wid: i for i, wid in enumerate(all_wids)}
    worms: Dict[int, Dict[str, Any]] = {}
    for wid, record in net.records.items():
        worms[ordinal[wid]] = {
            "src": record.src,
            "dests": sorted(record.dests),
            "injected_at": record.injected_at,
            "delivered_at": dict(sorted(record.delivered_at.items())),
            "retransmissions": record.retransmissions,
            "payload_bytes": record.payload_bytes,
            "hop_count": record.hop_count,
            "killed": record.wid in net.killed,
        }
    messages: Dict[int, Dict[str, Any]] = {}
    for i, mid in enumerate(sorted(net.messages)):
        message = net.messages[mid]
        messages[i] = {
            "gid": message.gid,
            "origin": message.origin,
            "created": message.created,
            "expected": sorted(message.expected),
            "deliveries": dict(sorted(message.deliveries.items())),
        }
    received = {
        host: [ordinal.get(wid, f"?{wid}") for wid in adapter.received_worms]
        for host, adapter in net.adapters.items()
    }
    return {
        "status": status,
        "now": net.now,
        "flushes": net.flushes,
        "worms_lost": net.worms_lost,
        "link_faults": net.link_faults,
        "worms_injected": net.worms_injected,
        "worm_deliveries": net.worm_deliveries,
        "killed": sorted(ordinal[wid] for wid in net.killed),
        "worms": worms,
        "messages": messages,
        "received": received,
        "received_flits": {
            host: adapter.received_flits
            for host, adapter in net.adapters.items()
        },
    }


def timeline_digest(timeline: Dict[str, Any]) -> str:
    """A stable content hash of a canonical timeline.

    Two runs are byte-identical iff their digests match; the digest is
    what the determinism test suite compares across partition counts and
    what bench artifacts record so a reviewer can line runs up without
    shipping whole timelines."""
    blob = json.dumps(timeline, sort_keys=True, default=str)
    return hashlib.sha256(blob.encode()).hexdigest()


class CrosscheckReport:
    """Comparison result of one scenario run under two engines.

    The first engine is the *baseline* (conventionally ``"dense"``), the
    second the *candidate*; the legacy ``dense``/``active`` attribute and
    parameter names are retained as aliases for the baseline/candidate
    timelines regardless of which engines actually ran (``engines`` names
    them).
    """

    def __init__(self, dense: Dict[str, Any], active: Dict[str, Any],
                 dense_ticks: int, active_ticks: int,
                 engines: Tuple[str, str] = ("dense", "active")) -> None:
        self.engines = engines
        self.dense = self.baseline = dense
        self.active = self.candidate = active
        #: Ticks each engine actually executed -- the active engine may
        #: fast-forward across quiescent gaps, so this is allowed to differ
        #: (it is the point of the optimisation); everything else is not.
        self.dense_ticks = self.baseline_ticks = dense_ticks
        self.active_ticks = self.candidate_ticks = active_ticks
        self.mismatches: List[Tuple[str, Any, Any]] = _diff(dense, active)

    @property
    def ok(self) -> bool:
        return not self.mismatches

    def describe(self) -> str:
        base, cand = self.engines
        if self.ok:
            return (
                f"engines agree: status={self.dense['status']!r} "
                f"now={self.dense['now']} "
                f"({base} ticked {self.dense_ticks}, "
                f"{cand} {self.active_ticks})"
            )
        lines = [f"{len(self.mismatches)} mismatch(es) {base} vs {cand}:"]
        for path, base_val, cand_val in self.mismatches[:20]:
            lines.append(
                f"  {path}: {base}={base_val!r} {cand}={cand_val!r}"
            )
        if len(self.mismatches) > 20:
            lines.append(f"  ... and {len(self.mismatches) - 20} more")
        return "\n".join(lines)


def _diff(a: Any, b: Any, path: str = "") -> List[Tuple[str, Any, Any]]:
    """Recursive structural diff producing (path, left, right) triples."""
    if isinstance(a, dict) and isinstance(b, dict):
        out: List[Tuple[str, Any, Any]] = []
        for key in sorted(set(a) | set(b), key=repr):
            sub = f"{path}.{key}" if path else str(key)
            if key not in a:
                out.append((sub, "<missing>", b[key]))
            elif key not in b:
                out.append((sub, a[key], "<missing>"))
            else:
                out.extend(_diff(a[key], b[key], sub))
        return out
    if isinstance(a, list) and isinstance(b, list):
        if len(a) != len(b):
            return [(f"{path}.len", len(a), len(b))]
        out = []
        for i, (ai, bi) in enumerate(zip(a, b)):
            out.extend(_diff(ai, bi, f"{path}[{i}]"))
        return out
    if a != b:
        return [(path, a, b)]
    return []


def crosscheck(
    scenario: Callable[[str], Tuple[Any, str]],
    engines: Tuple[str, str] = ("dense", "active"),
) -> CrosscheckReport:
    """Run ``scenario`` under two engines and compare canonical timelines.

    ``scenario(engine)`` must build a fresh :class:`FlitNetwork` with the
    given ``engine=`` keyword, drive it (sends, faults, ``run()``), and
    return ``(net, status)``.  It must be deterministic apart from the
    engine choice -- fix the seed.  ``engines`` selects the (baseline,
    candidate) pair; the default reproduces the historical dense-vs-active
    comparison.
    """
    base_net, base_status = scenario(engines[0])
    cand_net, cand_status = scenario(engines[1])
    return CrosscheckReport(
        worm_timeline(base_net, base_status),
        worm_timeline(cand_net, cand_status),
        dense_ticks=base_net.ticks_executed,
        active_ticks=cand_net.ticks_executed,
        engines=engines,
    )


def crosscheck_partitioned(
    scenario_name: str,
    partitions: int,
    engine: str = "array",
    backend: str = "inline",
) -> CrosscheckReport:
    """Sequential vs K-way-partitioned run of one registered
    :mod:`repro.par` scenario, compared on the same canonical timeline.

    The baseline is :func:`repro.par.runner.run_sequential` (one engine,
    driver-level fault barriers); the candidate is
    :func:`repro.par.runner.run_partitioned` with ``partitions`` shards.
    The partitioned run's merged timeline must match the sequential one
    *byte for byte* -- the conservative windows make parallelism an
    implementation detail, not an approximation.
    """
    from repro.par import run_partitioned, run_sequential

    net, status = run_sequential(scenario_name, engine)
    baseline = worm_timeline(net, status)
    result = run_partitioned(
        scenario_name, partitions, engine=engine, backend=backend
    )
    return CrosscheckReport(
        baseline,
        result.timeline,
        dense_ticks=net.ticks_executed,
        active_ticks=result.ticks_executed,
        engines=(f"{engine}/seq", f"{engine}/K={partitions}"),
    )


def _smoke_scenarios(lanes: int = 1, vc_policy: str = "first_free"):
    """Two quick scenarios covering both hot paths: a mixed-traffic torus
    (headers, grants, multicast replication) and a saturated shufflenet
    (the bulk-streaming fast lane).  ``lanes``/``vc_policy`` thread the
    virtual-channel configuration through both networks, so the same
    scenarios prove multi-lane runs byte-identical across engines."""
    from repro.net.flitlevel.network import FlitNetwork
    from repro.net.topology import bidirectional_shufflenet, torus

    def mixed(engine):
        topo = torus(3, 3)
        net = FlitNetwork(topo, engine=engine, seed=7,
                          lanes=lanes, vc_policy=vc_policy)
        hosts = topo.hosts
        for i, src in enumerate(hosts):
            net.send_unicast(
                src, hosts[(i + 3) % len(hosts)],
                payload_bytes=40 + 8 * (i % 4), start_delay=i * 17,
            )
        net.send_multicast(
            hosts[0], [hosts[2], hosts[5], hosts[7]],
            payload_bytes=120, start_delay=9,
        )
        status = net.run(max_ticks=80_000)
        return net, status

    def saturated(engine):
        topo = bidirectional_shufflenet(2, 3)
        net = FlitNetwork(topo, engine=engine, seed=21,
                          lanes=lanes, vc_policy=vc_policy)
        hosts = topo.hosts
        for i, src in enumerate(hosts):
            net.send_unicast(src, hosts[(i + 7) % len(hosts)],
                             payload_bytes=150)
        status = net.run(max_ticks=60_000)
        return net, status

    return {"mixed_torus": mixed, "saturated_shufflenet": saturated}


def main(argv=None) -> int:
    """``python -m repro.net.flitlevel.crosscheck --engines dense array``

    Runs the smoke scenarios under the given engine pair and exits
    non-zero on any timeline mismatch -- the assertion the CI perf-smoke
    job runs before trusting a benchmark number.
    """
    import argparse

    parser = argparse.ArgumentParser(
        description="byte-identical crosscheck between two flit engines"
    )
    parser.add_argument(
        "--engines", nargs=2, default=("dense", "array"),
        metavar=("BASELINE", "CANDIDATE"),
        help="engine pair to compare (default: dense array)",
    )
    parser.add_argument(
        "--lanes", type=int, nargs="+", default=[1], metavar="L",
        help="virtual-channel lane counts to crosscheck the smoke "
             "scenarios under (default: 1)",
    )
    parser.add_argument(
        "--vc-policy", default="first_free",
        choices=("first_free", "round_robin"),
        help="lane-allocation policy for multi-lane runs",
    )
    parser.add_argument(
        "--partitions", type=int, metavar="K", default=None,
        help="also crosscheck sequential vs K-way-partitioned runs of "
             "every repro.par scenario (engine = the candidate engine)",
    )
    parser.add_argument(
        "--scenario", action="append", default=None, metavar="NAME",
        help="with --partitions: restrict to these repro.par scenarios "
             "(repeatable; default: all registered)",
    )
    parser.add_argument(
        "--backend", default="inline", choices=("inline", "process"),
        help="with --partitions: shard execution backend",
    )
    args = parser.parse_args(argv)
    engines = tuple(args.engines)
    failed = False
    for lanes in args.lanes:
        scenarios = _smoke_scenarios(lanes=lanes, vc_policy=args.vc_policy)
        for name, scenario in scenarios.items():
            report = crosscheck(scenario, engines=engines)
            tag = f"{name}[lanes={lanes}]" if lanes != 1 else name
            print(("OK   " if report.ok else "FAIL ") + f"{tag}: "
                  + report.describe().splitlines()[0])
            failed |= not report.ok
    if args.partitions is not None:
        from repro.par import SCENARIOS

        names = args.scenario or sorted(SCENARIOS)
        for name in names:
            report = crosscheck_partitioned(
                name, args.partitions, engine=engines[1],
                backend=args.backend,
            )
            print(("OK   " if report.ok else "FAIL ")
                  + f"{name} [K={args.partitions}]: "
                  + report.describe().splitlines()[0])
            failed |= not report.ok
    return 1 if failed else 0


if __name__ == "__main__":  # pragma: no cover - exercised by CI
    import sys

    sys.exit(main())
