"""Dense-vs-active engine crosscheck harness.

The active-set engine (:class:`~repro.net.flitlevel.network.FlitNetwork`
with ``engine="active"``) promises *byte-identical semantics* to the dense
polling loop: the same per-worm delivery ticks, the same retransmission
counts, the same final run status, across all multicast modes and under
fault injection.  This module turns that promise into something checkable.

Usage::

    from repro.net.flitlevel.crosscheck import crosscheck

    def scenario(engine):
        net = FlitNetwork(torus(3, 3), engine=engine, seed=11)
        net.send_multicast(0, [4, 7], payload_bytes=96)
        status = net.run(max_ticks=50_000)
        return net, status

    report = crosscheck(scenario)
    assert report.ok, report.describe()

Worm ids come from a process-global counter, so the dense and active runs
of the same scenario observe *disjoint* wid ranges.  The timelines are
therefore keyed by **creation ordinal** (the k-th worm ever created inside
one run), recovered by sorting the observed wids -- the counter is
monotonic, so sorted order is creation order, and byte-identical runs
create worms in the same order.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Tuple

__all__ = ["worm_timeline", "crosscheck", "CrosscheckReport"]


def worm_timeline(net, status: str) -> Dict[str, Any]:
    """Reduce a finished run to an engine-independent canonical dict.

    Every field that the paper's metrics depend on is captured: global
    counters, per-worm injection/delivery ticks and retransmission counts,
    per-host arrival sequences, and host-multicast message completion.
    Two runs agree on the byte level iff their timelines compare equal.
    """
    # All wids ever created: records holds live + delivered worms, killed
    # holds flushed ones (whose records lose_worm() may have forgotten).
    all_wids = sorted(set(net.records) | set(net.killed))
    ordinal = {wid: i for i, wid in enumerate(all_wids)}
    worms: Dict[int, Dict[str, Any]] = {}
    for wid, record in net.records.items():
        worms[ordinal[wid]] = {
            "src": record.src,
            "dests": sorted(record.dests),
            "injected_at": record.injected_at,
            "delivered_at": dict(sorted(record.delivered_at.items())),
            "retransmissions": record.retransmissions,
            "payload_bytes": record.payload_bytes,
            "hop_count": record.hop_count,
            "killed": record.wid in net.killed,
        }
    messages: Dict[int, Dict[str, Any]] = {}
    for i, mid in enumerate(sorted(net.messages)):
        message = net.messages[mid]
        messages[i] = {
            "gid": message.gid,
            "origin": message.origin,
            "created": message.created,
            "expected": sorted(message.expected),
            "deliveries": dict(sorted(message.deliveries.items())),
        }
    received = {
        host: [ordinal.get(wid, f"?{wid}") for wid in adapter.received_worms]
        for host, adapter in net.adapters.items()
    }
    return {
        "status": status,
        "now": net.now,
        "flushes": net.flushes,
        "worms_lost": net.worms_lost,
        "link_faults": net.link_faults,
        "worms_injected": net.worms_injected,
        "worm_deliveries": net.worm_deliveries,
        "killed": sorted(ordinal[wid] for wid in net.killed),
        "worms": worms,
        "messages": messages,
        "received": received,
        "received_flits": {
            host: adapter.received_flits
            for host, adapter in net.adapters.items()
        },
    }


class CrosscheckReport:
    """Comparison result of one scenario run under both engines."""

    def __init__(self, dense: Dict[str, Any], active: Dict[str, Any],
                 dense_ticks: int, active_ticks: int) -> None:
        self.dense = dense
        self.active = active
        #: Ticks each engine actually executed -- the active engine may
        #: fast-forward across quiescent gaps, so this is allowed to differ
        #: (it is the point of the optimisation); everything else is not.
        self.dense_ticks = dense_ticks
        self.active_ticks = active_ticks
        self.mismatches: List[Tuple[str, Any, Any]] = _diff(dense, active)

    @property
    def ok(self) -> bool:
        return not self.mismatches

    def describe(self) -> str:
        if self.ok:
            return (
                f"engines agree: status={self.dense['status']!r} "
                f"now={self.dense['now']} "
                f"(dense ticked {self.dense_ticks}, active {self.active_ticks})"
            )
        lines = [f"{len(self.mismatches)} mismatch(es) dense vs active:"]
        for path, dense_val, active_val in self.mismatches[:20]:
            lines.append(f"  {path}: dense={dense_val!r} active={active_val!r}")
        if len(self.mismatches) > 20:
            lines.append(f"  ... and {len(self.mismatches) - 20} more")
        return "\n".join(lines)


def _diff(a: Any, b: Any, path: str = "") -> List[Tuple[str, Any, Any]]:
    """Recursive structural diff producing (path, left, right) triples."""
    if isinstance(a, dict) and isinstance(b, dict):
        out: List[Tuple[str, Any, Any]] = []
        for key in sorted(set(a) | set(b), key=repr):
            sub = f"{path}.{key}" if path else str(key)
            if key not in a:
                out.append((sub, "<missing>", b[key]))
            elif key not in b:
                out.append((sub, a[key], "<missing>"))
            else:
                out.extend(_diff(a[key], b[key], sub))
        return out
    if isinstance(a, list) and isinstance(b, list):
        if len(a) != len(b):
            return [(f"{path}.len", len(a), len(b))]
        out = []
        for i, (ai, bi) in enumerate(zip(a, b)):
            out.extend(_diff(ai, bi, f"{path}[{i}]"))
        return out
    if a != b:
        return [(path, a, b)]
    return []


def crosscheck(
    scenario: Callable[[str], Tuple[Any, str]],
) -> CrosscheckReport:
    """Run ``scenario`` under both engines and compare canonical timelines.

    ``scenario(engine)`` must build a fresh :class:`FlitNetwork` with the
    given ``engine=`` keyword, drive it (sends, faults, ``run()``), and
    return ``(net, status)``.  It must be deterministic apart from the
    engine choice -- fix the seed.
    """
    dense_net, dense_status = scenario("dense")
    active_net, active_status = scenario("active")
    return CrosscheckReport(
        worm_timeline(dense_net, dense_status),
        worm_timeline(active_net, active_status),
        dense_ticks=dense_net.ticks_executed,
        active_ticks=active_net.ticks_executed,
    )
