"""Unidirectional wires with a paired reverse STOP/GO signal."""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Optional, Tuple

from repro.net.flitlevel.flits import Flit


class Wire:
    """A point-to-point link carrying one flit per tick, with ``delay``
    ticks of propagation; STOP/GO symbols travel the reverse direction with
    the same delay (Myrinet interleaves control symbols on the return
    link)."""

    def __init__(self, delay: int = 1) -> None:
        if delay < 1:
            raise ValueError("wire delay must be at least 1 tick")
        self.delay = delay
        self._forward: Deque[Tuple[int, Flit]] = deque()
        self._reverse: Deque[Tuple[int, bool]] = deque()
        self._stop_at_sender = False
        self._last_push_tick = -1
        self.carried = 0
        self.idles = 0
        #: False while the physical link is down (fault injection): pushed
        #: flits are swallowed and nothing is delivered.
        self.alive = True
        #: Active-set hook: called when a flit lands on a previously empty
        #: wire, so the receiving component re-registers for ticking.
        self.notify: Optional[Callable[[], None]] = None
        #: Worm-location hook: ``track(wid, wire)`` is called the first time
        #: a worm's flits enter this wire (per-worm site index for O(extent)
        #: flush/loss instead of a full network scan).
        self.track: Optional[Callable[[Optional[int], "Wire"], None]] = None
        self._tracked_wid: Optional[int] = None

    # -- liveness ---------------------------------------------------------------
    def fail(self) -> set:
        """Cut the wire: discard everything in flight; returns the worm ids
        whose flits were lost (the injector flushes those worms)."""
        self.alive = False
        lost = {f.wid for _, f in self._forward if f.wid is not None}
        self._forward.clear()
        self._reverse.clear()
        self._stop_at_sender = False
        return lost

    def repair(self) -> None:
        self.alive = True

    # -- forward (data) ------------------------------------------------------
    def push(self, flit: Flit, now: int) -> None:
        """Transmit a flit; at most one per tick."""
        if now == self._last_push_tick:
            raise RuntimeError(f"two flits pushed on one wire in tick {now}")
        self._last_push_tick = now
        if not self.alive:
            return  # a dead wire swallows the flit; the sender can't tell
        wid = flit.wid
        if wid != self._tracked_wid:
            self._tracked_wid = wid
            if self.track is not None and wid is not None:
                self.track(wid, self)
        if not self._forward and self.notify is not None:
            # The receiver may have deregistered while this wire was empty;
            # it stays registered as long as flits are in flight, so only
            # the empty->non-empty edge needs a wake-up.
            self.notify()
        self._forward.append((now + self.delay, flit))
        self.carried += 1
        if flit.kind.value == "idle":
            self.idles += 1

    def can_push(self, now: int) -> bool:
        return now != self._last_push_tick

    def deliver(self, now: int) -> Optional[Flit]:
        """The flit arriving at the receiver this tick, if any."""
        if self._forward and self._forward[0][0] <= now:
            return self._forward.popleft()[1]
        return None

    def drop_worm(self, wid: int) -> int:
        """Remove in-flight flits of a flushed worm (backward reset)."""
        kept = deque((due, f) for due, f in self._forward if f.wid != wid)
        dropped = len(self._forward) - len(kept)
        self._forward = kept
        return dropped

    # -- reverse (STOP/GO) ------------------------------------------------------
    def signal_stop(self, stop: bool, now: int) -> None:
        """Receiver-side: send a STOP (True) or GO (False) symbol upstream.

        Callers only signal on changes; redundant signals are harmless.
        """
        self._reverse.append((now + self.delay, stop))

    def stop_at_sender(self, now: int) -> bool:
        """Sender-side: the STOP/GO state currently in effect."""
        while self._reverse and self._reverse[0][0] <= now:
            self._stop_at_sender = self._reverse.popleft()[1]
        return self._stop_at_sender

    @property
    def in_flight(self) -> int:
        return len(self._forward)
