"""Flit-level host adapters: sources, sinks and fragment reassembly."""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Optional, TYPE_CHECKING

from repro.net.flitlevel.flits import Flit, FlitKind

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.flitlevel.network import FlitNetwork
    from repro.net.flitlevel.wire import Wire


class WormRecord:
    """Source-side record of one injected worm."""

    __slots__ = (
        "wid", "src", "dests", "flits", "injected_at", "delivered_at",
        "retransmissions", "payload_bytes", "group", "hop_count", "message_id",
    )

    def __init__(self, wid: int, src: int, dests: List[int], flits: List[Flit],
                 payload_bytes: int, group: Optional[int] = None,
                 hop_count: int = 0, message_id: Optional[int] = None) -> None:
        self.wid = wid
        self.src = src
        self.dests = dests
        self.flits = flits
        self.payload_bytes = payload_bytes
        self.injected_at: Optional[int] = None
        self.delivered_at: Dict[int, int] = {}
        self.retransmissions = 0
        #: Host-adapter multicast metadata (Hamiltonian circuit, Section 5):
        #: the group id in the worm header, and the remaining hop count.
        self.group = group
        self.hop_count = hop_count
        self.message_id = message_id

    @property
    def fully_delivered(self) -> bool:
        return set(self.delivered_at) >= set(self.dests)


class FlitAdapter:
    """A host NIC at flit granularity: injects queued worms one flit per
    tick (honouring STOP/GO) and sinks arriving flits, reassembling
    scheme-2 fragments by worm id."""

    _is_adapter = True

    def __init__(self, network: "FlitNetwork", host_id: int) -> None:
        self.network = network
        self.host_id = host_id
        self.wire_out: Optional["Wire"] = None
        self.wire_in: Optional["Wire"] = None
        self._tx: Deque[WormRecord] = deque()
        self._tx_pos = 0
        #: wid -> payload bytes received so far (fragments accumulate)
        self._rx_progress: Dict[int, int] = {}
        self.received_worms: List[int] = []
        self.received_flits = 0
        #: Active-set engine bookkeeping (see FlitNetwork._tick_active):
        #: ``_active`` registers the adapter for ticking, ``_moved`` records
        #: per-tick activity, ``_net_seq`` restores dense iteration order.
        self._active = False
        self._moved = False
        self._net_seq = 0

    # -- sending ------------------------------------------------------------
    def enqueue(self, record: WormRecord) -> None:
        self._tx.append(record)
        self.network._wake_component(self)

    def requeue_front(self, record: WormRecord) -> None:
        """Put a flushed worm back at the head of the queue (retransmit)."""
        self._tx.appendleft(record)
        self.network._wake_component(self)

    @property
    def sending(self) -> Optional[WormRecord]:
        return self._tx[0] if self._tx else None

    def tick_output(self, now: int) -> bool:
        record = self.sending
        if record is None or self.wire_out is None:
            return False
        if record.wid in self.network.killed:
            # Our own worm was flushed mid-injection: abort, the network
            # callback handles the retransmission.
            self._tx.popleft()
            self._tx_pos = 0
            return True
        if not self.wire_out.can_push(now) or self.wire_out.stop_at_sender(now):
            return False
        if record.injected_at is None:
            record.injected_at = now
            self.network._note_injection(record)
        flit = record.flits[self._tx_pos]
        self.wire_out.push(flit, now)
        self._tx_pos += 1
        if self._tx_pos >= len(record.flits):
            self._tx.popleft()
            self._tx_pos = 0
        return True

    # -- receiving ------------------------------------------------------------
    def tick_input(self, now: int) -> bool:
        if self.wire_in is None:
            return False
        flit = self.wire_in.deliver(now)
        if flit is None:
            return False
        if flit.wid in self.network.killed:
            return True  # drains silently
        if flit.kind == FlitKind.ROUTE or flit.kind == FlitKind.IDLE:
            # Residual end markers and IDLE fills are stripped and -- key
            # for deadlock detection -- do NOT count as worm progress: a
            # deadlocked multicast can spin IDLEs through its non-blocked
            # branch forever (Figure 3).
            return True
        self.received_flits += 1
        self.network._note_progress()
        if flit.kind == FlitKind.FRAG_TAIL:
            return True  # fragment boundary; payload already accumulated
        progress = self._rx_progress.get(flit.wid, 0) + 1
        self._rx_progress[flit.wid] = progress
        if flit.kind == FlitKind.TAIL:
            self.received_worms.append(flit.wid)
            del self._rx_progress[flit.wid]
            self.network.record_delivery(flit.wid, self.host_id, now)
        return True

    def quiescent(self) -> bool:
        """True when ticking this adapter is provably a no-op: nothing
        queued for injection and nothing in flight on the receive wire.
        A stream gap (partial ``_rx_progress``) needs no ticking -- the
        upstream push re-activates the adapter through the wire hook."""
        if self._tx:
            return False
        wire_in = self.wire_in
        return wire_in is None or not wire_in._forward

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<FlitAdapter h{self.host_id} txq={len(self._tx)}>"
