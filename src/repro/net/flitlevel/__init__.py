"""Byte/flit-granular wormhole substrate.

This package models the network at the byte level, like the Maisie
simulator of [BGK+96]: slack buffers with STOP/GO watermarks (Figure 1),
crossbar switches that strip route bytes and replicate multicast worms in
the fabric, IDLE fills on blocked multicast branches, and the three
switch-level deadlock-avoidance schemes of Section 3:

* ``IDLE_FILL`` -- the base scheme: a blocked multicast branch makes the
  other branches transmit IDLE characters (deadlock-prone with crosslinks,
  Figure 3; safe when all routes are restricted to the up/down tree).
* ``INTERRUPT`` -- scheme 2: non-blocked branches interrupt transmission
  (releasing their ports), resuming later with a prepended header; the
  destination reassembles the fragments.
* ``IDLE_FLUSH`` -- scheme 3: ports transmitting IDLE for a while are
  flagged multicast-IDLE, and a unicast blocked by such a port is flushed
  (backward reset) and retransmitted by its source after a random timeout.

The flit-level model is used for the switch-fabric multicast experiments
and the deadlock demonstrations; the large latency sweeps (Figures 10/11)
use the faster worm-level model in :mod:`repro.net.wormnet`.
"""

from repro.net.flitlevel.crosscheck import CrosscheckReport, crosscheck, worm_timeline
from repro.net.flitlevel.flits import Flit, FlitKind
from repro.net.flitlevel.slack import SlackBuffer
from repro.net.flitlevel.wire import Wire
from repro.net.flitlevel.network import (
    DeadlockDetected,
    FlitNetwork,
    MulticastMode,
)

__all__ = [
    "CrosscheckReport",
    "DeadlockDetected",
    "Flit",
    "FlitKind",
    "FlitNetwork",
    "MulticastMode",
    "SlackBuffer",
    "Wire",
    "crosscheck",
    "worm_timeline",
]
