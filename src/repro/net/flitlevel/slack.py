"""Slack buffers with STOP/GO watermarks (Figure 1).

Each switch input port owns a small slack buffer.  When its occupancy
rises past the high watermark Ks a STOP symbol is sent upstream; when it
drains below the low watermark Kg a GO follows.  The gap between the
watermarks and the buffer ends absorbs the flits in flight during the
round-trip of the control symbols, so no flit is ever dropped.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Optional

from repro.net.flitlevel.flits import Flit


class SlackBuffer:
    """A bounded FIFO of flits with STOP/GO threshold signalling.

    Parameters
    ----------
    capacity:
        Total slots (Myrinet slack buffers are a few dozen bytes).
    stop_mark:
        Occupancy at/above which STOP is asserted (Ks).
    go_mark:
        Occupancy at/below which GO is asserted again (Kg).
    """

    def __init__(self, capacity: int = 32, stop_mark: Optional[int] = None,
                 go_mark: Optional[int] = None) -> None:
        if capacity < 2:
            raise ValueError("slack buffer needs at least 2 slots")
        self.capacity = capacity
        self.stop_mark = stop_mark if stop_mark is not None else (3 * capacity) // 4
        self.go_mark = go_mark if go_mark is not None else capacity // 4
        if not 0 <= self.go_mark < self.stop_mark <= capacity:
            raise ValueError(
                f"watermarks must satisfy 0 <= Kg({self.go_mark}) < "
                f"Ks({self.stop_mark}) <= capacity({capacity})"
            )
        self._flits: Deque[Flit] = deque()
        self._stopping = False
        self.overflows = 0
        self.peak = 0

    def __len__(self) -> int:
        return len(self._flits)

    @property
    def full(self) -> bool:
        return len(self._flits) >= self.capacity

    @property
    def empty(self) -> bool:
        return not self._flits

    @property
    def stopping(self) -> bool:
        """The current STOP/GO hysteresis state, without re-evaluating it.

        :meth:`desired_stop` mutates the hysteresis latch; quiescence checks
        (the active-set engine's settle pass) need a read-only view.
        """
        return self._stopping

    def push(self, flit: Flit) -> None:
        """Accept a flit from the wire.

        A push onto a full buffer is an *overflow*: it means the STOP
        round-trip slack was undersized.  The flit is dropped and counted
        (reliable configurations must never see this).
        """
        if self.full:
            self.overflows += 1
            return
        self._flits.append(flit)
        if len(self._flits) > self.peak:
            self.peak = len(self._flits)

    def front(self) -> Optional[Flit]:
        return self._flits[0] if self._flits else None

    def peek(self, index: int) -> Optional[Flit]:
        if index < len(self._flits):
            return self._flits[index]
        return None

    def pop(self) -> Flit:
        return self._flits.popleft()

    def drop_worm(self, wid: int) -> int:
        """Discard all queued flits of a flushed worm (backward reset)."""
        kept = [f for f in self._flits if f.wid != wid]
        dropped = len(self._flits) - len(kept)
        self._flits = deque(kept)
        return dropped

    def desired_stop(self) -> bool:
        """The STOP/GO level this buffer wants its upstream to observe.

        Hysteresis per Figure 1: assert STOP at/above Ks, keep it asserted
        until occupancy falls to/below Kg.
        """
        occupancy = len(self._flits)
        if self._stopping:
            if occupancy <= self.go_mark:
                self._stopping = False
        else:
            if occupancy >= self.stop_mark:
                self._stopping = True
        return self._stopping
