"""The crossbar switch at byte granularity.

Each input port has a slack buffer (STOP/GO per Figure 1) and a streaming
header processor; each output port has round-robin arbitration among
requesting inputs.  Unicast worms have their leading route byte stripped;
multicast worms are replicated in the crossbar according to the
tree-encoded source route, processed exactly as Section 3 describes: *read
the port number and pointer value, copy the bytes indicated by the pointer
to that port (followed by an end-of-route marker), repeat until the end of
route marker is read, then copy the incoming worm amongst the outgoing
ports*.  Branches are therefore acquired sequentially, in header order, as
the header bytes arrive -- the timing that makes the Figure 3 deadlock
physically possible in the base scheme.

The blocked-branch behaviour during payload replication is selected by the
network's :class:`~repro.net.flitlevel.network.MulticastMode`.
"""

from __future__ import annotations

from typing import Dict, List, Optional, TYPE_CHECKING

from repro.net.flitlevel.flits import Flit, FlitKind
from repro.net.flitlevel.slack import SlackBuffer
from repro.net.flitlevel.wire import Wire
from repro.core.route_encoding import END_MARKER

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.flitlevel.network import FlitNetwork

#: Header byte instructing a switch to broadcast on all its down links.
BROADCAST_BYTE = 0xFE

IDLE_FILL = "idle_fill"
INTERRUPT = "interrupt"
IDLE_FLUSH = "idle_flush"


class _Branch:
    """One output leg of a connection.

    ``header`` accumulates the bytes stamped on this branch so scheme 2
    can resume an interrupted branch by replaying them.
    """

    __slots__ = ("port", "header", "replay_pos", "granted", "interrupted")

    def __init__(self, port: int) -> None:
        self.port = port
        self.header: List[int] = []
        self.replay_pos = 0
        self.granted = False
        self.interrupted = False


class InputPort:
    """Input side: slack buffer + streaming connection state machine."""

    IDLE = "idle"
    # Multicast header sub-phases.
    MC_PORT = "mc_port"          # expecting a port byte (or end marker)
    MC_GRANT = "mc_grant"        # waiting for the current branch's output
    MC_POINTER = "mc_pointer"    # expecting the pointer byte
    MC_SEGMENT = "mc_segment"    # copying segment bytes to the branch
    MC_LEAF_MARK = "mc_leaf"     # emitting the end marker for a leaf branch
    # Unicast / broadcast single grant.
    REQUESTING = "requesting"
    # Replicating payload.
    STREAMING = "streaming"

    def __init__(self, switch: "CrossbarSwitch", index: int, wire: Wire,
                 slack_capacity: int) -> None:
        self.switch = switch
        self.index = index
        self.wire = wire
        self.slack = SlackBuffer(capacity=slack_capacity)
        self.state = self.IDLE
        self.wid: Optional[int] = None
        self.is_multicast = False
        self.branches: List[_Branch] = []
        self._segment_left = 0
        self._broadcast_stamped = False
        # Starts False (the wire's default sender-side state), so a drained
        # port never owes its upstream a redundant GO symbol.
        self._last_stop = False
        #: Last worm id registered in the network's per-worm site index;
        #: worms stream contiguously, so one comparison per flit suffices.
        self._site_wid: Optional[int] = None

    @property
    def current_branch(self) -> _Branch:
        return self.branches[-1]

    # -- input phase ------------------------------------------------------------
    def absorb(self, now: int) -> bool:
        """Pull the arriving flit (if any) into slack; returns True on
        activity."""
        flit = self.wire.deliver(now)
        moved = False
        if flit is not None:
            network = self.switch.network
            if flit.wid in network.killed:
                moved = True  # flushed worm drains away
            else:
                if flit.wid != self._site_wid:
                    self._site_wid = flit.wid
                    if flit.wid is not None:
                        network._register_site(flit.wid, self.switch)
                self.slack.push(flit)
                moved = True
        stop = self.slack.desired_stop()
        if stop != self._last_stop:
            self.wire.signal_stop(stop, now)
            self._last_stop = stop
        return moved

    # -- teardown -------------------------------------------------------------------
    def disconnect(self) -> None:
        for branch in self.branches:
            # Release grants and withdraw queued (waiting) requests alike,
            # so no stale arbitration entry survives a teardown or flush.
            self.switch.outputs[branch.port].release(self.index)
        self.branches = []
        self.wid = None
        self.is_multicast = False
        self._segment_left = 0
        self._broadcast_stamped = False
        self.state = self.IDLE

    def drop_worm(self, wid: int) -> None:
        """Backward-reset this input if it carries the flushed worm."""
        if self.wid == wid:
            self.disconnect()
        self.slack.drop_worm(wid)


class OutputPort:
    """Output side: one connection at a time, round-robin grants."""

    def __init__(self, switch: "CrossbarSwitch", index: int, wire: Wire) -> None:
        self.switch = switch
        self.index = index
        self.wire = wire
        self.holder: Optional[int] = None  # input index
        self.waiting: List[int] = []
        self.idle_run = 0
        self.mc_idle_threshold = switch.network.mc_idle_threshold
        self.sent_flits = 0

    @property
    def busy(self) -> bool:
        return self.holder is not None

    @property
    def multicast_idle_flagged(self) -> bool:
        """Scheme 3: the port has been transmitting IDLE long enough to be
        presumed filled by a blocked multicast."""
        return self.idle_run >= self.mc_idle_threshold

    def request(self, input_index: int) -> None:
        if self.holder == input_index:
            # Already holding the port (e.g. a fresh worm on an input that
            # was granted while idle): just mark the branch granted.
            for branch in self.switch.inputs[input_index].branches:
                if branch.port == self.index:
                    branch.granted = True
            return
        if input_index not in self.waiting:
            self.waiting.append(input_index)
        self._grant()

    def release(self, input_index: int) -> None:
        if self.holder == input_index:
            self.holder = None
            self.idle_run = 0
            self._grant()
        elif input_index in self.waiting:
            self.waiting.remove(input_index)

    def _grant(self) -> None:
        if self.holder is None and self.waiting:
            self.holder = self.waiting.pop(0)
            for branch in self.switch.inputs[self.holder].branches:
                if branch.port == self.index:
                    branch.granted = True
                    # NOTE: branch.interrupted is managed by the stream
                    # logic -- an interrupted branch stays interrupted until
                    # its header replay completes.

    def held_by(self, input_index: int) -> bool:
        return self.holder == input_index

    def ready(self, now: int) -> bool:
        """Can this port emit a flit this tick?"""
        return self.wire.can_push(now) and not self.wire.stop_at_sender(now)

    def emit(self, flit: Flit, now: int) -> None:
        self.wire.push(flit, now)
        self.sent_flits += 1
        if flit.kind == FlitKind.IDLE:
            self.idle_run += 1
        else:
            self.idle_run = 0


class CrossbarSwitch:
    """One crossbar: input ports, output ports, and the forwarding rules."""

    _is_adapter = False

    def __init__(
        self,
        network: "FlitNetwork",
        node_id: int,
        slack_capacity: int = 32,
    ) -> None:
        self.network = network
        self.node_id = node_id
        self.slack_capacity = slack_capacity
        self.inputs: List[InputPort] = []
        self.outputs: List[OutputPort] = []
        self.down_ports: List[int] = []
        #: Virtual-channel lane groups: base port index -> the consecutive
        #: port indices (one per lane) multiplexed over that physical link.
        #: Route bytes always name the base; :meth:`_select_lane` maps the
        #: base to the lane the connection will actually hold.  Links built
        #: with a single lane are not registered (the base maps to itself).
        self.lane_groups: Dict[int, List[int]] = {}
        self._lane_rr: Dict[int, int] = {}
        self.forwarded_worms = 0
        #: Active-set engine bookkeeping (see FlitNetwork._tick_active):
        #: ``_active`` registers the switch for ticking, ``_moved`` records
        #: per-tick activity, ``_net_seq`` restores dense iteration order.
        self._active = False
        self._moved = False
        self._net_seq = 0

    def add_port(self, wire_in: Wire, wire_out: Wire) -> int:
        index = len(self.inputs)
        self.inputs.append(InputPort(self, index, wire_in, self.slack_capacity))
        self.outputs.append(OutputPort(self, index, wire_out))
        return index

    def paired_output(self, input_index: int) -> int:
        return input_index

    def register_lane_group(self, ports: List[int]) -> None:
        """Declare that ``ports`` (consecutive, lane order) multiplex one
        physical link; ``ports[0]`` is the base index that route bytes
        address."""
        base = ports[0]
        self.lane_groups[base] = list(ports)
        self._lane_rr[base] = 0

    def _select_lane(self, base: int) -> int:
        """Deterministic virtual-channel allocation at header time.

        A route byte names the *physical* link (the lane group's base
        port); the connection is then established on one of the group's
        lanes, each with its own wire pair, slack buffer and STOP/GO
        credit.  Policies (``network.vc_policy``):

        ``first_free``
            Fixed-priority: the first idle lane in lane order; when all
            lanes are held, the least-contended lane (holder plus queued
            waiters), ties to the lowest lane.
        ``round_robin``
            A per-link pointer rotates one lane per allocation; the scan
            for an idle lane starts at the pointer.

        Both read only output holder/waiting state, which every engine
        mutates exclusively on the scalar object path in dense port order,
        so allocation is byte-identical across dense/active/array.
        """
        group = self.lane_groups.get(base)
        if group is None:
            return base
        outputs = self.outputs
        if self.network.vc_policy == "round_robin":
            n = len(group)
            start = self._lane_rr[base]
            self._lane_rr[base] = (start + 1) % n
            choice = group[start]
            for off in range(n):
                cand = group[(start + off) % n]
                out = outputs[cand]
                if out.holder is None and not out.waiting:
                    return cand
            return choice
        best = group[0]
        best_load = None
        for cand in group:
            out = outputs[cand]
            load = (0 if out.holder is None else 1) + len(out.waiting)
            if load == 0:
                return cand
            if best_load is None or load < best_load:
                best, best_load = cand, load
        return best

    def quiescent(self) -> bool:
        """True when ticking this switch is provably a no-op: every input
        is disconnected with empty slack and an empty input wire, no STOP
        is outstanding, and no output is held or requested.  Anything that
        can change this state (a wire push, an enqueue, a fault) re-activates
        the switch through the network's wake hooks."""
        for port in self.inputs:
            if (
                port.state != InputPort.IDLE
                or port._last_stop
                or port.slack._flits
                or port.slack.stopping
                or port.wire._forward
            ):
                return False
        for output in self.outputs:
            if output.holder is not None or output.waiting:
                return False
        return True

    # -- tick -------------------------------------------------------------------
    def tick_input(self, now: int) -> bool:
        moved = False
        for port in self.inputs:
            if port.absorb(now):
                moved = True
        return moved

    def tick_output(self, now: int) -> bool:
        moved = False
        for port in self.inputs:
            if self._advance(port, now):
                moved = True
        return moved

    def _advance(self, port: InputPort, now: int) -> bool:
        state = port.state
        if state == InputPort.IDLE:
            return self._start_worm(port)
        if state in (
            InputPort.MC_PORT,
            InputPort.MC_GRANT,
            InputPort.MC_POINTER,
            InputPort.MC_SEGMENT,
            InputPort.MC_LEAF_MARK,
        ):
            return self._advance_mc_header(port, now)
        if state == InputPort.REQUESTING:
            return self._advance_request(port, now)
        if state == InputPort.STREAMING:
            return self._stream(port, now)
        return False

    # -- worm start -----------------------------------------------------------------
    def _start_worm(self, port: InputPort) -> bool:
        front = port.slack.front()
        if front is None:
            return False
        if front.kind == FlitKind.IDLE or front.kind == FlitKind.FRAG_TAIL:
            port.slack.pop()  # stray residue between worms
            return True
        if front.kind != FlitKind.ROUTE:
            port.slack.pop()  # flushed-worm leftovers
            return True
        port.wid = front.wid
        if front.broadcast:
            port.is_multicast = True
            port.slack.pop()
            if front.value == BROADCAST_BYTE:
                # At (or past) the root: fan out on every down link; the
                # climb covered nobody, so no exclusions (the crossbar can
                # connect an input to its own port's output).
                port.branches = [
                    _Branch(self._select_lane(p)) for p in self.down_ports
                ]
                for branch in port.branches:
                    branch.header = [BROADCAST_BYTE]
            else:
                port.branches = [_Branch(self._select_lane(front.value))]
            port.state = InputPort.REQUESTING
            return True
        if front.multicast:
            port.is_multicast = True
            port.state = InputPort.MC_PORT
            return True
        # Unicast: strip the leading route byte.
        port.is_multicast = False
        port.slack.pop()
        port.branches = [_Branch(self._select_lane(front.value))]
        port.state = InputPort.REQUESTING
        return True

    # -- multicast streaming header (the paper's algorithm) -----------------------
    def _advance_mc_header(self, port: InputPort, now: int) -> bool:
        moved = False
        # Process at most one header byte per tick (link rate).
        state = port.state
        if state == InputPort.MC_PORT:
            front = port.slack.front()
            if front is None or front.kind != FlitKind.ROUTE:
                return False
            if front.value == END_MARKER:
                port.slack.pop()
                port.state = InputPort.STREAMING
                return True
            port.slack.pop()
            branch = _Branch(self._select_lane(front.value))
            port.branches.append(branch)
            self.outputs[branch.port].request(port.index)
            port.state = InputPort.MC_GRANT
            return True
        if state == InputPort.MC_GRANT:
            branch = port.current_branch
            if not branch.granted:
                self._maybe_flush_unicast_victim(port, branch, now)
                return False
            port.state = InputPort.MC_POINTER
            return True
        if state == InputPort.MC_POINTER:
            front = port.slack.front()
            if front is None or front.kind != FlitKind.ROUTE:
                return False
            port.slack.pop()
            port._segment_left = front.value
            if port._segment_left == 0:
                port.state = InputPort.MC_LEAF_MARK
            else:
                port.state = InputPort.MC_SEGMENT
            return True
        if state == InputPort.MC_LEAF_MARK:
            branch = port.current_branch
            output = self.outputs[branch.port]
            if not output.ready(now):
                return False
            output.emit(
                Flit(FlitKind.ROUTE, port.wid, value=END_MARKER, multicast=True),
                now,
            )
            branch.header.append(END_MARKER)
            port.state = InputPort.MC_PORT
            return True
        if state == InputPort.MC_SEGMENT:
            front = port.slack.front()
            if front is None or front.kind != FlitKind.ROUTE:
                return False
            branch = port.current_branch
            output = self.outputs[branch.port]
            if not output.ready(now):
                return False
            port.slack.pop()
            output.emit(
                Flit(FlitKind.ROUTE, port.wid, value=front.value, multicast=True),
                now,
            )
            branch.header.append(front.value)
            port._segment_left -= 1
            if port._segment_left == 0:
                port.state = InputPort.MC_PORT
            return True
        return moved

    # -- unicast / broadcast request phase ---------------------------------------
    def _advance_request(self, port: InputPort, now: int) -> bool:
        for branch in port.branches:
            if not branch.granted:
                self.outputs[branch.port].request(port.index)
        ungranted = [b for b in port.branches if not b.granted]
        if ungranted:
            for branch in ungranted:
                self._maybe_flush_unicast_victim(port, branch, now)
            return False
        # Broadcast branches stamp their one-byte header before payload.
        if port.branches and port.branches[0].header and not port._broadcast_stamped:
            done = True
            for branch in port.branches:
                if branch.replay_pos < len(branch.header):
                    output = self.outputs[branch.port]
                    if output.ready(now):
                        value = branch.header[branch.replay_pos]
                        branch.replay_pos += 1
                        output.emit(
                            Flit(
                                FlitKind.ROUTE,
                                port.wid,
                                value=value,
                                broadcast=True,
                            ),
                            now,
                        )
                    if branch.replay_pos < len(branch.header):
                        done = False
            if not done:
                return True
            port._broadcast_stamped = True
        port.state = InputPort.STREAMING
        return True

    def _maybe_flush_unicast_victim(
        self, port: InputPort, branch: _Branch, now: int
    ) -> None:
        """Scheme 3: a *unicast* blocked by a multicast-IDLE-flagged port is
        flushed from the network (backward reset)."""
        if self.network.mode != IDLE_FLUSH or port.is_multicast:
            return
        output = self.outputs[branch.port]
        if output.busy and output.multicast_idle_flagged:
            self.network.flush(port.wid, reason="blocked by multicast-IDLE port")

    # -- payload replication ---------------------------------------------------------
    def _stream(self, port: InputPort, now: int) -> bool:
        mode = self.network.mode
        branches = port.branches

        if not branches:
            # A multicast header with zero branches cannot occur (encoders
            # reject empty trees); defensive teardown.
            port.disconnect()
            return False

        # Scheme 2 resume: once the branches that caused the interrupt can
        # move again, re-acquire the interrupted ports and replay headers.
        interrupted = [b for b in branches if b.interrupted]
        if interrupted:
            blocked_ready = all(
                self.outputs[b.port].ready(now)
                for b in branches
                if not b.interrupted
            )
            if not blocked_ready:
                return False
            for branch in interrupted:
                if not branch.granted:
                    self.outputs[branch.port].request(port.index)
            if any(not b.granted for b in branches):
                return False
            moved = False
            replaying = False
            for branch in interrupted:
                if branch.replay_pos < len(branch.header):
                    replaying = True
                    output = self.outputs[branch.port]
                    if output.ready(now):
                        value = branch.header[branch.replay_pos]
                        branch.replay_pos += 1
                        output.emit(
                            Flit(
                                FlitKind.ROUTE, port.wid, value=value, multicast=True
                            ),
                            now,
                        )
                        moved = True
                    if branch.replay_pos < len(branch.header):
                        replaying = True
            if replaying:
                return moved
            for branch in interrupted:
                branch.interrupted = False

        front = port.slack.front()
        ready = [self.outputs[b.port].ready(now) for b in branches]
        all_ready = all(ready)

        if front is None:
            return False  # hole in the stream: upstream is slower

        if all_ready:
            flit = port.slack.pop()
            for branch in branches:
                self.outputs[branch.port].emit(
                    Flit(flit.kind, flit.wid, flit.value, flit.multicast, flit.broadcast),
                    now,
                )
            if flit.kind == FlitKind.TAIL:
                self.forwarded_worms += 1
                port.disconnect()
            elif flit.kind == FlitKind.FRAG_TAIL:
                # A fragment boundary from an upstream interrupt: the path
                # tears down here too; the resume header re-establishes it.
                port.disconnect()
            return True

        # Some branch is blocked.
        if len(branches) == 1:
            return False  # unicast: wait; backpressure does the rest

        if mode == INTERRUPT:
            # Non-blocked branches interrupt altogether: stamp a fragment
            # tail (tearing down the downstream path), release the port,
            # and remember the header for the resume replay.
            moved = False
            for branch, is_ready in zip(branches, ready):
                if is_ready and branch.granted and not branch.interrupted:
                    output = self.outputs[branch.port]
                    output.emit(Flit(FlitKind.FRAG_TAIL, port.wid, multicast=True), now)
                    output.release(port.index)
                    branch.granted = False
                    branch.interrupted = True
                    branch.replay_pos = 0
                    moved = True
            return moved

        # Base scheme (and scheme 3): fill the non-blocked branches with
        # IDLE characters -- the bandwidth waste (and deadlock fuel) of
        # Figure 3.
        moved = False
        for branch, is_ready in zip(branches, ready):
            if is_ready:
                self.outputs[branch.port].emit(
                    Flit(FlitKind.IDLE, port.wid, multicast=True), now
                )
                moved = True
        return moved

    # -- flush support ------------------------------------------------------------
    def drop_worm(self, wid: int) -> None:
        for port in self.inputs:
            if port.wid == wid:
                port.disconnect()
            port.slack.drop_worm(wid)
        for output in self.outputs:
            holder = output.holder
            if holder is not None and self.inputs[holder].wid == wid:
                output.release(holder)
