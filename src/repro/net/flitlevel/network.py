"""The flit-level network: wiring, injection APIs and the tick loop."""

from __future__ import annotations

import heapq
import itertools
import operator
from enum import Enum
from functools import partial
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.route_encoding import encode_multicast_route, route_tree_from_paths
from repro.net.flitlevel.adapter import FlitAdapter, WormRecord
from repro.net.flitlevel.flits import worm_flits
from repro.net.flitlevel.switch import (
    BROADCAST_BYTE,
    IDLE_FILL,
    IDLE_FLUSH,
    INTERRUPT,
    CrossbarSwitch,
)
from repro.net.flitlevel.wire import Wire
from repro.net.topology import Topology
from repro.net.updown import UpDownRouting
from repro.sim.rng import RandomStreams

_flit_worm_ids = itertools.count(1)
_flit_message_ids = itertools.count(1)

#: Sort key restoring dense (creation) iteration order after wake merges.
_net_seq_key = operator.attrgetter("_net_seq")


class HostMulticastMessage:
    """A host-adapter multicast (Hamiltonian circuit, Section 5) tracked at
    flit granularity: one application message relayed store-and-forward
    from member to member."""

    __slots__ = ("mid", "gid", "origin", "created", "expected", "deliveries")

    def __init__(self, mid: int, gid: int, origin: int, created: int,
                 expected) -> None:
        self.mid = mid
        self.gid = gid
        self.origin = origin
        self.created = created
        self.expected = frozenset(expected)
        self.deliveries: Dict[int, int] = {}

    @property
    def complete(self) -> bool:
        return set(self.deliveries) >= self.expected

    def completion_latency(self) -> int:
        if not self.complete:
            raise RuntimeError(f"message {self.mid} not complete")
        return max(self.deliveries.values()) - self.created


class MulticastMode(str, Enum):
    """Section 3's switch-level multicast schemes."""

    IDLE_FILL = IDLE_FILL    # base: blocked branch -> IDLE fills elsewhere
    INTERRUPT = INTERRUPT    # scheme 2: interrupt / resume with fragments
    IDLE_FLUSH = IDLE_FLUSH  # scheme 3: flush unicasts hitting mc-IDLE ports


class DeadlockDetected(RuntimeError):
    """No worm made progress for the quiet window while work remained."""

    def __init__(self, tick: int, stuck: List[int]) -> None:
        super().__init__(
            f"no progress since tick {tick}; undelivered worms: {stuck}"
        )
        self.tick = tick
        self.stuck = stuck


class FlitNetwork:
    """Byte-granular wormhole network over a topology.

    Parameters
    ----------
    topology / routing:
        The switch graph and its up/down routing.
    mode:
        Switch-level multicast scheme (see :class:`MulticastMode`).
    restrict_to_tree:
        Route *all* worms on the up/down spanning tree (scheme 1 -- this
        is what makes the base IDLE-fill scheme deadlock-free).
    slack_capacity:
        Per-input slack buffer size in flits.
    wire_delay:
        Link propagation delay in ticks.
    lanes:
        Virtual channels per switch-to-switch link.  Each lane is a full
        wire pair with its own slack buffer and STOP/GO credit; route
        bytes keep addressing the physical link (the lane group's *base*
        port) and the switch allocates a lane deterministically when the
        header byte is processed (see
        :meth:`~repro.net.flitlevel.switch.CrossbarSwitch._select_lane`).
        Host-adapter links always carry one lane.  ``lanes=1`` is the
        identity mapping and byte-identical to the pre-VC fabric.
    vc_policy:
        Lane-allocation policy: ``"first_free"`` (fixed priority, the
        default) or ``"round_robin"``.
    mc_idle_threshold:
        Consecutive IDLE flits before a port is flagged multicast-IDLE
        (scheme 3).
    flush_backoff:
        (lo, hi) uniform random retransmission delay after a flush, ticks.
    engine:
        ``"active"`` (default) ticks only components registered in the
        network's active set and fast-forwards the clock across quiescent
        spans; ``"dense"`` is the reference loop that polls every switch
        and adapter each byte-time; ``"array"`` packs wire/slack/port
        state into numpy arrays and advances all unblocked flits with
        batched array operations (fastest under saturation; requires
        numpy; see :mod:`repro.net.flitlevel.array_lane`).  All engines
        produce byte-identical worm timelines (see
        :mod:`repro.net.flitlevel.crosscheck`).
    obs:
        Optional :class:`~repro.obs.Observability` bundle; worm-lifecycle
        hooks cost one pointer test each when ``None`` and are purely
        passive when set (results stay byte-identical either way).
    shard:
        Optional iterable of switch ids restricting which components this
        instance *ticks*.  The full object graph (all switches, adapters,
        wires, records) is still built -- a shard is a replica that only
        advances its local partition; everything else stays frozen and is
        driven externally through cut wires by :mod:`repro.par`.  Hosts
        follow their switch.  ``None`` (the default) ticks everything.
    """

    def __init__(
        self,
        topology: Topology,
        routing: Optional[UpDownRouting] = None,
        mode: MulticastMode = MulticastMode.IDLE_FILL,
        restrict_to_tree: bool = False,
        slack_capacity: int = 32,
        wire_delay: int = 1,
        lanes: int = 1,
        vc_policy: str = "first_free",
        mc_idle_threshold: int = 16,
        flush_backoff: Tuple[int, int] = (200, 400),
        seed: int = 1,
        engine: str = "active",
        obs=None,
        shard=None,
    ) -> None:
        if engine not in ("active", "dense", "array"):
            raise ValueError(f"unknown engine {engine!r}")
        if not isinstance(lanes, int) or lanes < 1:
            raise ValueError(f"lanes must be a positive int, got {lanes!r}")
        if vc_policy not in ("first_free", "round_robin"):
            raise ValueError(f"unknown vc_policy {vc_policy!r}")
        self.lanes = lanes
        self.vc_policy = vc_policy
        self.engine = engine
        self._engine_active = engine == "active"
        self.obs = obs
        self.topology = topology
        self.routing = routing or UpDownRouting(topology)
        self.mode = mode.value if isinstance(mode, MulticastMode) else mode
        self.restrict_to_tree = restrict_to_tree
        self.mc_idle_threshold = mc_idle_threshold
        self.flush_backoff = flush_backoff
        self._rng = RandomStreams(seed=seed).stream("flitnet")
        self.now = 0
        self.killed: set = set()
        self.flushes = 0
        self.worms_lost = 0
        self.link_faults = 0
        self.records: Dict[int, WormRecord] = {}
        #: Hamiltonian host-adapter multicast state (create_host_group).
        self.host_groups: Dict[int, List[int]] = {}
        self.messages: Dict[int, HostMulticastMessage] = {}
        self._actions: List[Tuple[int, int, Callable[[], None]]] = []
        self._action_seq = itertools.count()

        # Build switches with ports in adjacency order (port numbers in
        # source routes are adjacency indices).
        self.switches: Dict[int, CrossbarSwitch] = {}
        self.adapters: Dict[int, FlitAdapter] = {}
        self._wires: List[Wire] = []
        #: (node, link id) -> port index at that node's switch
        self._port_of: Dict[Tuple[int, int], int] = {}

        for sid in topology.switches:
            self.switches[sid] = CrossbarSwitch(
                self, sid, slack_capacity=slack_capacity
            )
        for hid in topology.hosts:
            self.adapters[hid] = FlitAdapter(self, hid)

        for sid in topology.switches:
            switch = self.switches[sid]
            for link in topology.adjacent(sid):
                peer = link.other(sid)
                delay = max(1, wire_delay + int(link.prop_delay))
                host_peer = topology.node(peer).is_host
                # Virtual channels: a switch-to-switch link carries `lanes`
                # full wire pairs, each behind its own port (slack buffer +
                # STOP/GO credit).  Host-adapter links stay single-lane.
                n_lanes = 1 if host_peer else lanes
                ports = []
                for _lane in range(n_lanes):
                    wire_in = Wire(delay=delay)
                    wire_out = Wire(delay=delay)
                    ports.append(switch.add_port(wire_in, wire_out))
                    self._wires.extend([wire_in, wire_out])
                base = ports[0]
                if base >= BROADCAST_BYTE:
                    raise ValueError(
                        f"switch {sid}: port index {base} for link {link.id} "
                        f"exceeds the route-byte limit ({BROADCAST_BYTE - 1}); "
                        f"a switch supports at most {BROADCAST_BYTE} ports "
                        f"(degree x lanes) -- reduce the radix or lanes={lanes}"
                    )
                self._port_of[(sid, link.id)] = base
                if n_lanes > 1:
                    switch.register_lane_group(ports)
                if host_peer:
                    adapter = self.adapters[peer]
                    adapter.wire_out = switch.inputs[base].wire  # host -> switch
                    adapter.wire_in = switch.outputs[base].wire  # switch -> host
        # Second pass: splice switch-to-switch wires so each side shares
        # the same Wire object per direction, lane by lane (lane ports are
        # consecutive from the base on both sides).
        spliced = set()
        for link in topology.links:
            if not (
                topology.node(link.a).is_switch and topology.node(link.b).is_switch
            ):
                continue
            if link.id in spliced:
                continue
            spliced.add(link.id)
            pa = self._port_of[(link.a, link.id)]
            pb = self._port_of[(link.b, link.id)]
            sa, sb = self.switches[link.a], self.switches[link.b]
            for off in range(lanes):
                # a's out wire is b's in wire and vice versa.
                sb.inputs[pb + off].wire = sa.outputs[pa + off].wire
                sa.inputs[pa + off].wire = sb.outputs[pb + off].wire
        # The wires actually carrying each link's traffic (post-splice),
        # ordered [a->b, b->a] per lane so lane l occupies slots 2l, 2l+1
        # (repro.par keys cut-wire batches by this ordering).
        self._link_wires: Dict[int, List[Wire]] = {}
        for link in topology.links:
            a_host = topology.node(link.a).is_host
            b_host = topology.node(link.b).is_host
            if a_host or b_host:
                host = link.a if a_host else link.b
                adapter = self.adapters[host]
                self._link_wires[link.id] = [adapter.wire_out, adapter.wire_in]
            else:
                pa = self._port_of[(link.a, link.id)]
                pb = self._port_of[(link.b, link.id)]
                self._link_wires[link.id] = [
                    self.switches[end].outputs[port + off].wire
                    for off in range(lanes)
                    for end, port in ((link.a, pa), (link.b, pb))
                ]
        self._refresh_down_ports()

        # -- active-set / progress bookkeeping --------------------------------
        # Component lists in dense iteration order (dict insertion order),
        # so the active-set engine arbitrates identically to the dense loop.
        # A shard keeps only its local components in these lists: everything
        # downstream (hook installation, _wake_all, dense iteration, the
        # array lane) restricts automatically.
        self.shard = frozenset(shard) if shard is not None else None
        if self.shard is None:
            self._switch_list = list(self.switches.values())
            self._adapter_list = list(self.adapters.values())
        else:
            unknown = self.shard - set(self.switches)
            if unknown:
                raise ValueError(f"shard names non-switches: {sorted(unknown)}")
            self._switch_list = [
                s for sid, s in self.switches.items() if sid in self.shard
            ]
            self._adapter_list = [
                a
                for hid, a in self.adapters.items()
                if topology.host_switch(hid) in self.shard
            ]
            # Non-local components must never enter the active set; marking
            # them permanently "active" makes every wake hook a no-op for
            # them (they are not in _switch_list, so they are never ticked
            # and never settle back out).
            local_switches = set(self._switch_list)
            local_adapters = set(self._adapter_list)
            for s in self.switches.values():
                if s not in local_switches:
                    s._active = True
            for a in self.adapters.values():
                if a not in local_adapters:
                    a._active = True
        for seq, switch in enumerate(self._switch_list):
            switch._net_seq = seq
        for seq, adapter in enumerate(self._adapter_list):
            adapter._net_seq = seq
        #: Monotonic count of observable progress events (payload flits
        #: delivered, worms injected, deliveries recorded, records churned).
        #: Replaces the per-tick _progress_signature tuple: O(1) per event.
        self._progress_events = 0
        #: Latest tick on which a progress event fired, maintained by
        #: run_window() so a window-driven coordinator (repro.par) can
        #: reconstruct run()'s stall-detection clock across shards.
        self._last_progress_tick = 0
        self._last_progress_events = 0
        self.worms_injected = 0
        self.worm_deliveries = 0
        #: Ticks actually executed (fast-forwarded spans are excluded, so
        #: active/dense ratios of this counter measure the skipped work).
        self.ticks_executed = 0
        #: Worm records plus host-multicast messages not yet fully
        #: delivered, maintained incrementally so run() never scans
        #: ``self.records`` on the hot path.
        self._undelivered = 0
        #: wid -> components/wires the worm's flits have entered, so a
        #: flush or loss resets O(worm extent) state, not O(network).
        #: Inner dicts are insertion-ordered sets: expunge order stays
        #: deterministic run to run (byte reproducibility).
        self._worm_sites: Dict[int, Dict[object, bool]] = {}
        self._n_active = 0
        self._active_switches: List[CrossbarSwitch] = []
        self._active_adapters: List[FlitAdapter] = []
        self._woken: List[object] = []
        # Every wire registers in the worm-site index; only the active
        # engine needs receiver wake-ups on the empty->non-empty edge.
        track = self._register_site
        for switch in self._switch_list:
            wake = partial(self._wake_component, switch)
            for port in switch.inputs:
                if self._engine_active:
                    port.wire.notify = wake
            for output in switch.outputs:
                output.wire.track = track
        for adapter in self._adapter_list:
            if adapter.wire_out is not None:
                adapter.wire_out.track = track
            if adapter.wire_in is not None and self._engine_active:
                adapter.wire_in.notify = partial(self._wake_component, adapter)
        self._wake_all()
        #: Structure-of-arrays fast lane (engine="array" only): adopts the
        #: object graph just built, so it must be constructed last.
        self._lane = None
        if engine == "array":
            from repro.net.flitlevel.array_lane import ArrayLane

            self._lane = ArrayLane(self)

    # -- active-set engine internals ------------------------------------------
    def _wake_component(self, comp) -> None:
        """Register a switch/adapter for ticking.  No-op in the dense
        engine (which polls everything anyway) and for already-active
        components, so hooks can fire it unconditionally."""
        if self._engine_active and not comp._active:
            comp._active = True
            self._n_active += 1
            self._woken.append(comp)

    def _wake_all(self) -> None:
        """Activate every component: used at construction and after
        external mutations (fault injection, reconfiguration) whose state
        edges are not covered by the per-wire wake hooks.  Spuriously
        woken components settle back out after one no-op tick."""
        for switch in self._switch_list:
            self._wake_component(switch)
        for adapter in self._adapter_list:
            self._wake_component(adapter)

    def _merge_woken(self) -> None:
        """Fold newly-woken components into the active lists, restoring
        dense iteration order so arbitration stays byte-identical."""
        for comp in self._woken:
            if comp._is_adapter:
                self._active_adapters.append(comp)
            else:
                self._active_switches.append(comp)
        self._woken.clear()
        self._active_switches.sort(key=_net_seq_key)
        self._active_adapters.sort(key=_net_seq_key)

    # -- progress counters ------------------------------------------------------
    def _note_progress(self) -> None:
        """Count one observable progress event (O(1) replacement for the
        old per-tick progress-signature tuple)."""
        self._progress_events += 1

    def _note_injection(self, record: WormRecord) -> None:
        self._progress_events += 1
        self.worms_injected += 1
        if self.obs is not None:
            self.obs.flit_worm_injected(self.now, record)

    def _track_new_record(self, record: WormRecord) -> None:
        self.records[record.wid] = record
        if not record.fully_delivered:
            self._undelivered += 1
        self._progress_events += 1

    def _forget_record(self, wid: int) -> Optional[WormRecord]:
        record = self.records.pop(wid, None)
        if record is not None:
            self._progress_events += 1
            if not record.fully_delivered:
                self._undelivered -= 1
        return record

    # -- per-worm location index ----------------------------------------------
    def _register_site(self, wid: int, site) -> None:
        """Index ``site`` (a switch or wire) as holding flits of ``wid``,
        so expunging the worm is O(worm extent) instead of O(network)."""
        sites = self._worm_sites.get(wid)
        if sites is None:
            if wid in self.killed:
                return  # straggler of an already-expunged worm
            sites = self._worm_sites[wid] = {}
        sites[site] = True

    def _refresh_down_ports(self) -> None:
        """(Re)compute each switch's broadcast down-link ports from the
        current up/down tree (Section 3); called after reconfiguration."""
        topology = self.topology
        tree_links = self.routing.tree_links
        for sid in topology.switches:
            switch = self.switches[sid]
            ports = []
            for link in topology.adjacent(sid):
                peer = link.other(sid)
                if link.id in tree_links and not self.routing.is_up(sid, peer):
                    ports.append(self._port_of[(sid, link.id)])
            switch.down_ports = ports

    # -- fault injection ---------------------------------------------------------
    def fail_link(self, link_id: int) -> List[int]:
        """Cut a link: in-flight flits are destroyed, the worms they belong
        to are expunged (lost, not retransmitted -- network-level loss), and
        the up/down routing reconfigures around the dead link for worms
        injected from now on.  Returns the lost worm ids."""
        self.topology.fail_link(link_id)  # bumps version; routing re-derives
        lost: set = set()
        for wire in self._link_wires[link_id]:
            if wire is not None:
                lost |= wire.fail()
        self.link_faults += 1
        if self.obs is not None:
            self.obs.link_fault(self.now, link_id, "cut")
        for wid in sorted(lost):
            self.lose_worm(wid)
        self._refresh_down_ports()
        # State edges from a fault (expunged worms, released grants,
        # cleared STOP latches) are not all covered by the wire hooks.
        self._wake_all()
        return sorted(lost)

    def repair_link(self, link_id: int) -> None:
        """Bring a failed link back; routing reconfigures to use it again."""
        self.topology.repair_link(link_id)
        if self.obs is not None:
            self.obs.link_fault(self.now, link_id, "repair")
        for wire in self._link_wires[link_id]:
            if wire is not None:
                wire.repair()
        self._refresh_down_ports()
        self._wake_all()

    # -- route helpers -------------------------------------------------------
    def _port_bytes(self, hops) -> List[int]:
        """Header bytes for a hop path: one output-port byte per switch."""
        ports = []
        for a, _b, link in hops[1:]:
            ports.append(self._port_of[(a, link.id)])
        return ports

    # -- injection APIs ----------------------------------------------------------
    def send_unicast(
        self, src: int, dst: int, payload_bytes: int = 64, start_delay: int = 0
    ) -> int:
        """Queue a unicast worm; returns its worm id."""
        hops = self.routing.route(src, dst, self.restrict_to_tree)
        header = bytes(self._port_bytes(hops))
        wid = next(_flit_worm_ids)
        flits = worm_flits(wid, header, payload_bytes)
        record = WormRecord(wid, src, [dst], flits, payload_bytes)
        self._track_new_record(record)
        self._inject(record, start_delay)
        return wid

    def _inject(self, record: WormRecord, start_delay: int) -> None:
        if start_delay <= 0:
            self.adapters[record.src].enqueue(record)
        else:
            self.schedule(start_delay, lambda: self.adapters[record.src].enqueue(record))

    def send_multicast(
        self,
        src: int,
        dests: Sequence[int],
        payload_bytes: int = 64,
        start_delay: int = 0,
        strategy: str = "tree",
    ) -> int:
        """Queue a switch-level multicast worm (tree-encoded source route).

        ``strategy`` selects the NoC-survey route shape: ``"tree"`` (the
        paper's shortest-path tree from a single layered BFS) or
        ``"path"`` (a caterpillar chain visiting destination switches in
        greedy nearest-neighbour order, branching only to each local host
        -- see :meth:`~repro.net.updown.UpDownRouting.multi_route_path`).
        Both encode into the same header format, so every engine and
        multicast scheme applies unchanged; long path chains are bounded
        by the one-byte segment pointer of the header encoding.
        """
        if not dests:
            raise ValueError("multicast needs at least one destination")
        if strategy == "tree":
            routes = self.routing.multi_route(src, dests, self.restrict_to_tree)
            order = list(dests)
        elif strategy == "path":
            routes = self.routing.multi_route_path(
                src, dests, self.restrict_to_tree
            )
            order = list(routes)  # chain (visitation) order
        else:
            raise ValueError(f"unknown multicast strategy {strategy!r}")
        paths = [self._port_bytes(routes[d]) for d in order]
        tree = route_tree_from_paths(paths)
        header = encode_multicast_route(tree)
        wid = next(_flit_worm_ids)
        flits = worm_flits(wid, header, payload_bytes, multicast=True)
        record = WormRecord(wid, src, list(dests), flits, payload_bytes)
        self._track_new_record(record)
        self._inject(record, start_delay)
        return wid

    def send_broadcast(
        self, src: int, payload_bytes: int = 64, start_delay: int = 0
    ) -> int:
        """Queue a broadcast: unicast route to the up/down root, then the
        broadcast address byte fans out on all down links (Section 3)."""
        root = self.routing.root
        src_switch = self.topology.host_switch(src)
        if src_switch == root:
            header = bytes([BROADCAST_BYTE])
        else:
            hops = self.routing.route(src, root, restrict_to_tree=True)
            header = bytes(self._port_bytes(hops) + [BROADCAST_BYTE])
        wid = next(_flit_worm_ids)
        # Broadcast reaches every host (including a copy back to src).
        flits = worm_flits(wid, header, payload_bytes, broadcast=True)
        record = WormRecord(wid, src, list(self.topology.hosts), flits, payload_bytes)
        self._track_new_record(record)
        self._inject(record, start_delay)
        return wid

    # -- host-adapter multicast (Hamiltonian circuit at byte granularity) ---------
    def create_host_group(self, gid: int, members: Sequence[int]) -> None:
        """Register a Hamiltonian-circuit multicast group whose worms are
        replicated by the host adapters (store-and-forward), exactly like
        the Myrinet implementation of Section 8."""
        members = sorted(set(members))
        if len(members) < 2:
            raise ValueError("a multicast group needs at least two members")
        unknown = set(members) - set(self.topology.hosts)
        if unknown:
            raise ValueError(f"not hosts: {sorted(unknown)}")
        if gid in self.host_groups:
            raise ValueError(f"group {gid} already registered")
        self.host_groups[gid] = members

    def _successor(self, gid: int, host: int) -> int:
        members = self.host_groups[gid]
        return members[(members.index(host) + 1) % len(members)]

    def send_host_multicast(self, src: int, gid: int, payload_bytes: int = 64) -> int:
        """Originate a host-adapter multicast; returns the message id."""
        members = self.host_groups.get(gid)
        if members is None:
            raise KeyError(f"no host group {gid}")
        if src not in members:
            raise ValueError(f"host {src} not in group {gid}")
        mid = next(_flit_message_ids)
        message = HostMulticastMessage(
            mid, gid, src, self.now, [m for m in members if m != src]
        )
        self.messages[mid] = message
        self._undelivered += 1
        self._send_group_hop(src, gid, payload_bytes, len(members) - 1, mid)
        return mid

    def _send_group_hop(
        self, src: int, gid: int, payload_bytes: int, hop_count: int, mid: int
    ) -> None:
        nxt = self._successor(gid, src)
        hops = self.routing.route(src, nxt, self.restrict_to_tree)
        header = bytes(self._port_bytes(hops))
        wid = next(_flit_worm_ids)
        flits = worm_flits(wid, header, payload_bytes)
        record = WormRecord(
            wid, src, [nxt], flits, payload_bytes,
            group=gid, hop_count=hop_count, message_id=mid,
        )
        self._track_new_record(record)
        self.adapters[src].enqueue(record)

    # -- delivery / flush callbacks ------------------------------------------------
    def record_delivery(self, wid: int, host: int, now: int) -> None:
        record = self.records.get(wid)
        if record is None:
            return
        if host not in record.delivered_at:
            self.worm_deliveries += 1
            was_complete = record.fully_delivered
            record.delivered_at[host] = now
            if not was_complete and record.fully_delivered:
                self._undelivered -= 1
                # Every branch drained through its destination adapter:
                # nothing of this worm remains in the fabric to expunge.
                self._worm_sites.pop(wid, None)
            if self.obs is not None:
                latency = (
                    now - record.injected_at
                    if record.injected_at is not None
                    else None
                )
                self.obs.flit_delivery(
                    now, wid, host, latency, record.fully_delivered
                )
        else:
            record.delivered_at[host] = now
        if record.group is None or record.message_id is None:
            return
        # Host-adapter multicast hop: copy to the local host (counted in
        # the message record) and retransmit to the successor while any
        # hop count remains (Section 5's store-and-forward relay).
        message = self.messages.get(record.message_id)
        if (
            message is not None
            and host in message.expected
            and host not in message.deliveries
        ):
            message.deliveries[host] = now
            if len(message.deliveries) >= len(message.expected):
                self._undelivered -= 1
        if record.hop_count > 1:
            self._send_group_hop(
                host,
                record.group,
                record.payload_bytes,
                record.hop_count - 1,
                record.message_id,
            )

    def _expunge(self, wid: int) -> bool:
        """Backward-reset a worm out of every switch and wire its flits
        have entered -- O(worm extent) via the per-worm site index, not a
        scan over the whole network.  Returns False when it was already
        expunged."""
        if wid in self.killed:
            return False
        self.killed.add(wid)
        for site in self._worm_sites.pop(wid, ()):
            site.drop_worm(wid)
        return True

    def lose_worm(self, wid: int, reason: str = "fault") -> None:
        """Fault injection: destroy a worm with *no* retransmission.

        This is network-level loss -- exactly what the transport-level
        request/repair scheme (Section 9) must recover from.  The record is
        removed so the run loop does not wait for a delivery that can never
        happen; partial deliveries already made stand.
        """
        if not self._expunge(wid):
            return
        self.worms_lost += 1
        if self.obs is not None:
            self.obs.flit_worm_lost(self.now, wid, reason)
        self._forget_record(wid)

    def flush(self, wid: int, reason: str = "") -> None:
        """Backward-reset a worm out of the network (scheme 3) and schedule
        its source retransmission after a random timeout."""
        if not self._expunge(wid):
            return
        self.flushes += 1
        if self.obs is not None:
            self.obs.flit_flush(self.now, wid)
        record = self.records.get(wid)
        if record is None:
            return

        def retransmit() -> None:
            new_wid = next(_flit_worm_ids)
            flits = [
                type(f)(f.kind, new_wid, f.value, f.multicast, f.broadcast)
                for f in record.flits
            ]
            new_record = WormRecord(
                new_wid, record.src, record.dests, flits, record.payload_bytes
            )
            new_record.retransmissions = record.retransmissions + 1
            new_record.delivered_at.update(record.delivered_at)
            self._track_new_record(new_record)
            # The retransmission supersedes the flushed worm; the old
            # record may already be gone (e.g. lost to a fault between
            # flush scheduling and this callback firing).
            self._forget_record(wid)
            self.adapters[record.src].enqueue(new_record)

        delay = self._rng.randint(*self.flush_backoff)
        self.schedule(delay, retransmit)

    def schedule(self, delay: int, action: Callable[[], None]) -> None:
        heapq.heappush(
            self._actions, (self.now + delay, next(self._action_seq), action)
        )

    # -- tick loop -----------------------------------------------------------------
    def tick(self) -> bool:
        """Advance one byte-time; returns True if any flit moved."""
        if self._engine_active:
            return self._tick_active()
        if self._lane is not None:
            return self._tick_array()
        return self._tick_dense()

    def _tick_array(self) -> bool:
        """Array engine: scheduled actions on the object path, then the
        lane's vectorized phases (see :mod:`repro.net.flitlevel.array_lane`
        for the phase ordering and its equivalence argument)."""
        self.ticks_executed += 1
        self.now = now = self.now + 1
        actions = self._actions
        while actions and actions[0][0] <= now:
            heapq.heappop(actions)[2]()
        return self._lane.tick(now)

    def _tick_dense(self) -> bool:
        """Reference engine: poll every switch and adapter each tick."""
        self.ticks_executed += 1
        self.now += 1
        while self._actions and self._actions[0][0] <= self.now:
            _, _, action = heapq.heappop(self._actions)
            action()
        moved = False
        for switch in self._switch_list:
            if switch.tick_input(self.now):
                moved = True
        for adapter in self._adapter_list:
            if adapter.tick_input(self.now):
                moved = True
        for switch in self._switch_list:
            if switch.tick_output(self.now):
                moved = True
        for adapter in self._adapter_list:
            if adapter.tick_output(self.now):
                moved = True
        return moved

    def _tick_active(self) -> bool:
        """Active-set engine: tick only components registered as holding
        flits or pending port work, in dense iteration order.

        A component missing from the active set satisfies ``quiescent()``,
        and a quiescent component's dense tick is provably a no-op (its
        input wires are empty, its slack is empty, no STOP is latched, no
        output is held), so skipping it cannot change the byte timeline.
        Wire pushes cannot deliver in the tick they are sent (delay >= 1),
        so components woken mid-tick would also have no-oped this tick and
        only join the iteration from the next tick on.
        """
        self.ticks_executed += 1
        self.now = now = self.now + 1
        actions = self._actions
        while actions and actions[0][0] <= now:
            heapq.heappop(actions)[2]()
        if self._woken:
            self._merge_woken()
        switches = self._active_switches
        adapters = self._active_adapters
        for switch in switches:
            switch._moved = switch.tick_input(now)
        for adapter in adapters:
            adapter._moved = adapter.tick_input(now)
        for switch in switches:
            if switch.tick_output(now):
                switch._moved = True
        for adapter in adapters:
            if adapter.tick_output(now):
                adapter._moved = True
        # Settle pass: deregister components that did nothing and can do
        # nothing until a wake hook fires for them again.
        moved = False
        off = 0
        for switch in switches:
            if switch._moved:
                moved = True
            elif switch.quiescent():
                switch._active = False
                off += 1
        if off:
            self._active_switches = [s for s in switches if s._active]
        drained = off
        off = 0
        for adapter in adapters:
            if adapter._moved:
                moved = True
            elif adapter.quiescent():
                adapter._active = False
                off += 1
        if off:
            self._active_adapters = [a for a in adapters if a._active]
        self._n_active -= drained + off
        return moved

    def pending_worms(self) -> List[int]:
        """Worm ids not yet fully delivered (plus incomplete host-adapter
        multicast messages, reported as negative message ids)."""
        pending = [w for w, r in self.records.items() if not r.fully_delivered]
        pending.extend(-m.mid for m in self.messages.values() if not m.complete)
        return pending

    def run(
        self,
        max_ticks: int = 100_000,
        quiet_limit: Optional[int] = 2_000,
        raise_on_deadlock: bool = True,
    ) -> str:
        """Run until every worm is delivered, progress stalls, or the tick
        budget runs out.

        Returns
        -------
        ``"delivered"``
            Every injected worm reached all its destinations (and every
            host-adapter multicast message completed).
        ``"deadlock"``
            Undelivered worms remain but no progress event occurred for
            ``quiet_limit`` consecutive ticks while nothing was scheduled;
            raised as :class:`DeadlockDetected` when ``raise_on_deadlock``
            is true.  Pass ``quiet_limit=None`` to disable stall detection
            entirely (the run then only ends ``"delivered"`` or
            ``"timeout"``).
        ``"timeout"``
            The clock reached ``max_ticks`` first.

        Progress is measured on worm *payload* and record churn (O(1)
        monotonic counters): IDLE fills spinning through a deadlocked
        cycle (Figure 3) do not count.  The active-set engine additionally
        fast-forwards the clock across fully quiescent spans -- nothing in
        flight, only scheduled actions (flush backoffs, delayed
        injections) remaining -- instead of spinning one byte at a time;
        outcomes are byte-identical to the dense engine's (see
        :mod:`repro.net.flitlevel.crosscheck`).
        """
        last_progress = self.now
        last_events = self._progress_events
        while self.now < max_ticks:
            if self._engine_active and not self._n_active:
                if self._actions:
                    # Idle span: nothing can move before the next
                    # scheduled action, so jump to the tick it fires on.
                    nxt = self._actions[0][0]
                    if nxt > self.now + 1:
                        jump = min(nxt, max_ticks) - 1
                        self.now = jump
                        # The dense loop treats pending actions as
                        # progress each tick: restart the stall window.
                        last_progress = jump
                elif self._undelivered:
                    # Permanently quiescent: no flits anywhere, nothing
                    # scheduled, and no wake source left inside run().
                    # The dense loop would spin unchanged to its stall or
                    # tick budget; jump straight to the same outcome.
                    if (
                        quiet_limit is None
                        or last_progress + quiet_limit > max_ticks
                    ):
                        self.now = max_ticks
                        return "timeout"
                    self.now = last_progress + quiet_limit
                    if raise_on_deadlock:
                        raise DeadlockDetected(
                            last_progress, self.pending_worms()
                        )
                    return "deadlock"
            self.tick()
            if not self._undelivered and not self._actions:
                # Pending scheduled actions (delayed injections, fault
                # events scheduled by a driver) keep the run alive even
                # with nothing currently in flight.
                return "delivered"
            events = self._progress_events
            if events != last_events or self._actions:
                last_events = events
                last_progress = self.now
            elif (
                quiet_limit is not None
                and self.now - last_progress >= quiet_limit
            ):
                if raise_on_deadlock:
                    raise DeadlockDetected(last_progress, self.pending_worms())
                return "deadlock"
        return "timeout"

    def run_window(self, until: int) -> int:
        """Advance the clock to exactly ``until`` with no early exit.

        The window-synchronized parallel runner (:mod:`repro.par`) drives
        each shard in lockstep barrier windows: every shard must land on
        the same tick regardless of delivery or stalls, so none of
        :meth:`run`'s termination conditions apply here.  Status
        (delivered / deadlock / timeout) is reconstructed by the
        coordinator from ``_last_progress_tick``, ``_undelivered`` and the
        scheduled-action horizon.

        The active-set engine's quiescence fast-forward is preserved but
        bounded by the window edge; externally injected cut flits keep
        their receiving components active (``quiescent()`` inspects the
        input wires), so the jump never skips cross-shard traffic.

        Returns the number of progress events observed inside the window.
        """
        events_before = self._progress_events
        while self.now < until:
            if self._engine_active and not self._n_active:
                nxt = self._actions[0][0] if self._actions else until
                if nxt > self.now + 1:
                    self.now = min(nxt, until) - 1
            self.tick()
            if self._progress_events != self._last_progress_events:
                self._last_progress_events = self._progress_events
                self._last_progress_tick = self.now
        return self._progress_events - events_before
