"""Structure-of-arrays execution lane for the flit-level network.

``FlitNetwork(engine="array")`` keeps the object graph the other engines
use (switches, ports, wires, slack buffers) but moves the *state* that the
saturated hot paths touch every tick — wire rings, slack occupancy, STOP/GO
latches, streaming-port bookkeeping — into shared numpy arrays.  The tick
then runs three vector phases over all components at once:

1. **reverse drain** — apply every STOP/GO symbol due this tick to its
   sender-side latch (one masked column assignment over all wires);
2. **absorb** — deliver the flit arriving at every switch input port,
   drain killed worms, push into slack rings, and run the Figure-1
   hysteresis for every port in one batch (scatter the changed STOP/GO
   symbols back into the reverse rings);
3. **bulk advance** — for every port in single-branch ``STREAMING`` state
   whose output is ready, pop the slack front and emit it downstream with
   array gathers/scatters (per-output ``idle_run``/``sent_flits`` and
   per-wire ``carried``/``idles`` stats are updated in the same batch).

Everything else — header parsing, arbitration grants, multicast
replication, interrupts, flushes, faults, adapters — falls back to the
*unchanged* object-path code: at adoption the lane swaps each ``Wire``,
``SlackBuffer``, ``InputPort`` and ``OutputPort`` instance's ``__class__``
to a view subclass whose hot attributes are properties over the arrays, so
the scalar state machine reads and writes the exact same state the vector
phases do.  Byte-identical behaviour therefore holds by construction for
the scalar paths and is asserted for the vector ones by
:mod:`repro.net.flitlevel.crosscheck` across the full scheme/fault matrix.

Ordering notes (why the batch is safe):

* The lane iterates in dense order (phase order and, within the scalar
  fallback, global port order), so arbitration decisions match the dense
  engine tick for tick.
* STOP/GO symbols are applied *eagerly* at the start of their due tick;
  the lazy object path applies them on first read within that tick.  The
  two are indistinguishable because symbols are always scheduled at least
  one tick ahead, so no reader can observe one before its due tick.
* A bulk streaming port only touches its own slack and its own (uniquely
  held) output wire; grants, flushes and header traffic never target a
  port in that state, so batching them with scalar ports interleaved in
  any order is observationally identical to dense order.  The one
  exception is scheme 3 (``idle_flush``), where a scalar advance can
  flush *other* worms mid-tick; that mode runs the advance phase fully
  scalar, in dense order, so flush timing and RNG draws match exactly.
* ``TAIL``/``FRAG_TAIL`` fronts (teardown) and first-flit-of-a-worm
  tracking events are routed to the object path / per-port loops, keeping
  rare-event bookkeeping (site index, record churn) on one code path.
"""

from __future__ import annotations

from time import perf_counter
from typing import TYPE_CHECKING, List, Optional

import numpy as np

from repro.net.flitlevel.adapter import FlitAdapter, WormRecord
from repro.net.flitlevel.flits import Flit, FlitKind
from repro.net.flitlevel.slack import SlackBuffer
from repro.net.flitlevel.switch import IDLE_FLUSH, InputPort, OutputPort
from repro.net.flitlevel.wire import Wire

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.flitlevel.network import FlitNetwork

__all__ = ["ArrayLane", "encode_flit", "decode_flit"]

# -- flit <-> int64 encoding ---------------------------------------------------
# Layout: wid << 13 | kind << 10 | broadcast << 9 | multicast << 8 | value.
# kind >= 1 for every real flit, so 0 unambiguously means "empty slot".
K_IDLE, K_ROUTE, K_DATA, K_FTAIL, K_TAIL = 1, 2, 3, 4, 5
_WID_SHIFT = 13
#: Kind field in place (bits 10-12): ``code & _KIND_FIELD`` compares
#: monotonically with ``kind << 10``, so kind tests on encoded flits need
#: no shift.
_KIND_FIELD = 7 << 10
_FTAIL_FIELD = K_FTAIL << 10
_EMPTY_I64 = np.zeros(0, dtype=np.int64)

_KIND_CODE = {
    FlitKind.IDLE: K_IDLE,
    FlitKind.ROUTE: K_ROUTE,
    FlitKind.DATA: K_DATA,
    FlitKind.FRAG_TAIL: K_FTAIL,
    FlitKind.TAIL: K_TAIL,
}
_KIND_OBJ = [
    None, FlitKind.IDLE, FlitKind.ROUTE, FlitKind.DATA,
    FlitKind.FRAG_TAIL, FlitKind.TAIL,
]


def encode_flit(flit: Flit) -> int:
    """Pack a :class:`Flit` into the lane's int64 wire code."""
    return (
        (flit.wid << _WID_SHIFT)
        | (_KIND_CODE[flit.kind] << 10)
        | (bool(flit.broadcast) << 9)
        | (bool(flit.multicast) << 8)
        | flit.value
    )


def decode_flit(code: int) -> Flit:
    """Unpack an int64 wire code back into an (equal-valued) :class:`Flit`."""
    code = int(code)
    return Flit(
        _KIND_OBJ[(code >> 10) & 7],
        code >> _WID_SHIFT,
        value=code & 0xFF,
        multicast=bool(code & 0x100),
        broadcast=bool(code & 0x200),
    )


# -- input-port state codes ----------------------------------------------------
S_IDLE, S_MC_PORT, S_MC_GRANT, S_MC_POINTER = 0, 1, 2, 3
S_MC_SEGMENT, S_MC_LEAF, S_REQUESTING, S_STREAMING = 4, 5, 6, 7

_STATE_CODE = {
    InputPort.IDLE: S_IDLE,
    InputPort.MC_PORT: S_MC_PORT,
    InputPort.MC_GRANT: S_MC_GRANT,
    InputPort.MC_POINTER: S_MC_POINTER,
    InputPort.MC_SEGMENT: S_MC_SEGMENT,
    InputPort.MC_LEAF_MARK: S_MC_LEAF,
    InputPort.REQUESTING: S_REQUESTING,
    InputPort.STREAMING: S_STREAMING,
}
_STATE_STR = [
    InputPort.IDLE, InputPort.MC_PORT, InputPort.MC_GRANT,
    InputPort.MC_POINTER, InputPort.MC_SEGMENT, InputPort.MC_LEAF_MARK,
    InputPort.REQUESTING, InputPort.STREAMING,
]


def _pow2(n: int) -> int:
    width = 1
    while width < n:
        width <<= 1
    return width


# -- array-backed views --------------------------------------------------------
class ArrayWire(Wire):
    """A :class:`Wire` whose rings and stats live in the lane's arrays.

    The forward ring is indexed by ``due_tick & mask``: at most one flit is
    pushed per tick and every flit is consumed exactly at its due tick (the
    lane polls every wire every tick), so slots never collide while the
    ring is wider than the delay.
    """

    # Adopted instances keep their __dict__ (delay, notify, track); the
    # hot state is served by these properties instead.

    def fail(self) -> set:
        lane, row = self._lane, self._row
        buf = lane.w_buf[row]
        lost = {int(w) for w in (buf[buf != 0] >> _WID_SHIFT)}
        buf[:] = 0
        lane.w_rsig[row, :] = -1
        # Some of the pending reverse symbols may just have been wiped:
        # recount rather than track which (faults are rare).
        lane._rsig_pending = int((lane.w_rsig >= 0).sum())
        lane.w_stop[row] = False
        lane.w_alive[row] = False
        lane._any_dead = True
        return lost

    def repair(self) -> None:
        lane = self._lane
        lane.w_alive[self._row] = True
        lane._any_dead = not bool(lane.w_alive.all())

    @property
    def alive(self) -> bool:
        return bool(self._lane.w_alive[self._row])

    @alive.setter
    def alive(self, value: bool) -> None:
        lane = self._lane
        lane.w_alive[self._row] = value
        lane._any_dead = not bool(lane.w_alive.all())

    @property
    def carried(self) -> int:
        return int(self._lane.w_carried[self._row])

    @carried.setter
    def carried(self, value: int) -> None:
        self._lane.w_carried[self._row] = value

    @property
    def idles(self) -> int:
        return int(self._lane.w_idles[self._row])

    @idles.setter
    def idles(self, value: int) -> None:
        self._lane.w_idles[self._row] = value

    @property
    def _last_push_tick(self) -> int:
        return int(self._lane.w_last_push[self._row])

    @_last_push_tick.setter
    def _last_push_tick(self, value: int) -> None:
        self._lane.w_last_push[self._row] = value

    @property
    def _tracked_wid(self) -> Optional[int]:
        wid = int(self._lane.w_tracked[self._row])
        return None if wid < 0 else wid

    @_tracked_wid.setter
    def _tracked_wid(self, value: Optional[int]) -> None:
        self._lane.w_tracked[self._row] = -1 if value is None else value

    @property
    def _forward(self):
        # Debug/compat view (quiescence checks, reprs): the in-flight
        # flits without their due ticks.
        buf = self._lane.w_buf[self._row]
        return [decode_flit(c) for c in buf[buf != 0]]

    @property
    def in_flight(self) -> int:
        return int(np.count_nonzero(self._lane.w_buf[self._row]))

    def push(self, flit: Flit, now: int) -> None:
        lane, row = self._lane, self._row
        if lane.w_last_push[row] == now:
            raise RuntimeError(f"two flits pushed on one wire in tick {now}")
        lane.w_last_push[row] = now
        if not lane.w_alive[row]:
            return  # a dead wire swallows the flit; the sender can't tell
        wid = flit.wid
        if wid != lane.w_tracked[row]:
            lane.w_tracked[row] = wid
            if self.track is not None and wid is not None:
                self.track(wid, self)
        if self.notify is not None and not np.any(lane.w_buf[row]):
            self.notify()
        lane.w_buf[row, (now + self.delay) & lane.dmask] = encode_flit(flit)
        lane.w_carried[row] += 1
        if flit.kind is FlitKind.IDLE:
            lane.w_idles[row] += 1

    def can_push(self, now: int) -> bool:
        return self._lane.w_last_push[self._row] != now

    def deliver(self, now: int) -> Optional[Flit]:
        lane, row = self._lane, self._row
        code = lane.w_buf[row, now & lane.dmask]
        if code:
            lane.w_buf[row, now & lane.dmask] = 0
            return decode_flit(code)
        return None

    def drop_worm(self, wid: int) -> int:
        buf = self._lane.w_buf[self._row]
        hit = (buf >> _WID_SHIFT) == wid
        hit &= buf != 0
        dropped = int(np.count_nonzero(hit))
        if dropped:
            buf[hit] = 0
        return dropped

    def signal_stop(self, stop: bool, now: int) -> None:
        lane, row = self._lane, self._row
        lane.w_rsig[row, (now + self.delay) & lane.dmask] = 1 if stop else 0
        lane._rsig_pending += 1

    def stop_at_sender(self, now: int) -> bool:
        # Symbols are applied eagerly by the lane's reverse-drain phase.
        return bool(self._lane.w_stop[self._row])


class ArraySlack(SlackBuffer):
    """A :class:`SlackBuffer` over one row of the lane's slack ring."""

    def __len__(self) -> int:
        return int(self._lane.s_len[self._row])

    @property
    def full(self) -> bool:
        return int(self._lane.s_len[self._row]) >= self.capacity

    @property
    def empty(self) -> bool:
        return not self._lane.s_len[self._row]

    @property
    def stopping(self) -> bool:
        return bool(self._lane.s_stopping[self._row])

    @property
    def _stopping(self) -> bool:
        return bool(self._lane.s_stopping[self._row])

    @_stopping.setter
    def _stopping(self, value: bool) -> None:
        self._lane.s_stopping[self._row] = value

    @property
    def overflows(self) -> int:
        return int(self._lane.s_ov[self._row])

    @overflows.setter
    def overflows(self, value: int) -> None:
        self._lane.s_ov[self._row] = value

    @property
    def peak(self) -> int:
        return int(self._lane.s_peak[self._row])

    @peak.setter
    def peak(self, value: int) -> None:
        self._lane.s_peak[self._row] = value

    @property
    def _flits(self):
        # Debug/compat view (quiescence checks, reprs).
        lane, row = self._lane, self._row
        head, n = int(lane.s_head[row]), int(lane.s_len[row])
        return [
            decode_flit(lane.s_buf[row, (head + i) & lane.cmask])
            for i in range(n)
        ]

    def push(self, flit: Flit) -> None:
        lane, row = self._lane, self._row
        n = int(lane.s_len[row])
        if n >= self.capacity:
            lane.s_ov[row] += 1
            return
        lane.s_buf[row, (lane.s_head[row] + n) & lane.cmask] = encode_flit(flit)
        lane.s_len[row] = n + 1
        if n + 1 > lane.s_peak[row]:
            lane.s_peak[row] = n + 1

    def front(self) -> Optional[Flit]:
        lane, row = self._lane, self._row
        if not lane.s_len[row]:
            return None
        return decode_flit(lane.s_buf[row, lane.s_head[row] & lane.cmask])

    def peek(self, index: int) -> Optional[Flit]:
        lane, row = self._lane, self._row
        if index >= lane.s_len[row]:
            return None
        return decode_flit(
            lane.s_buf[row, (lane.s_head[row] + index) & lane.cmask]
        )

    def pop(self) -> Flit:
        lane, row = self._lane, self._row
        code = lane.s_buf[row, lane.s_head[row] & lane.cmask]
        lane.s_head[row] += 1
        lane.s_len[row] -= 1
        return decode_flit(code)

    def drop_worm(self, wid: int) -> int:
        lane, row = self._lane, self._row
        head, n = int(lane.s_head[row]), int(lane.s_len[row])
        if not n:
            return 0
        idx = (head + np.arange(n)) & lane.cmask
        vals = lane.s_buf[row, idx]
        kept = vals[(vals >> _WID_SHIFT) != wid]
        dropped = n - kept.size
        if dropped:
            lane.s_buf[row, (head + np.arange(kept.size)) & lane.cmask] = kept
            lane.s_len[row] = kept.size
        return dropped

    def desired_stop(self) -> bool:
        lane, row = self._lane, self._row
        occupancy = int(lane.s_len[row])
        if lane.s_stopping[row]:
            if occupancy <= self.go_mark:
                lane.s_stopping[row] = False
        elif occupancy >= self.stop_mark:
            lane.s_stopping[row] = True
        return bool(lane.s_stopping[row])


class ArrayInputPort(InputPort):
    """An :class:`InputPort` whose state code feeds the lane's bulk mask.

    The ``state`` setter is the single funnel through which every
    connection transition flows (the object state machine, ``disconnect``,
    teardown), so the lane's "bulk streamable" flag and the streaming
    port's output-row cache are maintained exactly where the transitions
    happen.
    """

    @property
    def state(self) -> str:
        return _STATE_STR[self._lane.p_state[self._row]]

    @state.setter
    def state(self, value: str) -> None:
        lane, row = self._lane, self._row
        code = _STATE_CODE[value]
        lane.p_state[row] = code
        lane.p_wait[row] = False
        if code == S_STREAMING and len(self.branches) == 1:
            output = self.switch.outputs[self.branches[0].port]
            lane.p_bulk[row] = True
            lane.p_out_wire[row] = output.wire._row
            lane.p_out_port[row] = output._row
        else:
            lane.p_bulk[row] = False

    @property
    def _last_stop(self) -> bool:
        return bool(self._lane.p_last_stop[self._row])

    @_last_stop.setter
    def _last_stop(self, value: bool) -> None:
        self._lane.p_last_stop[self._row] = value

    @property
    def _site_wid(self) -> Optional[int]:
        wid = int(self._lane.p_site_wid[self._row])
        return None if wid < 0 else wid

    @_site_wid.setter
    def _site_wid(self, value: Optional[int]) -> None:
        self._lane.p_site_wid[self._row] = -1 if value is None else value


class ArrayOutputPort(OutputPort):
    """An :class:`OutputPort` with array-backed stats (the vector advance
    updates the same counters the scalar ``emit`` path does) and a grant
    hook that wakes parked REQUESTING inputs (see ``ArrayLane.p_wait``)."""

    def _grant(self) -> None:
        had_holder = self.holder
        super()._grant()
        if self.holder is not None and self.holder != had_holder:
            self._lane.p_wait[self.switch.inputs[self.holder]._row] = False

    @property
    def idle_run(self) -> int:
        return int(self._lane.o_idle_run[self._row])

    @idle_run.setter
    def idle_run(self, value: int) -> None:
        self._lane.o_idle_run[self._row] = value

    @property
    def sent_flits(self) -> int:
        return int(self._lane.o_sent[self._row])

    @sent_flits.setter
    def sent_flits(self, value: int) -> None:
        self._lane.o_sent[self._row] = value


class ArrayFlitAdapter(FlitAdapter):
    """A :class:`FlitAdapter` whose tx/rx hot paths run in the lane.

    The record queue stays the object-side ``_tx`` deque; ``enqueue`` marks
    the lane dirty so the front record is (re)loaded into the transmit
    arrays at the start of the next transmit phase -- exactly when the
    dense engine's ``tick_output`` would first see it.

    The lane's vector receive path deliberately does *not* maintain
    ``_rx_progress``: that dict is write-only state (its only reader is
    the deletion at TAIL), so skipping it is unobservable.
    """

    def enqueue(self, record: WormRecord) -> None:
        self._tx.append(record)
        self._lane._tx_dirty = True

    def requeue_front(self, record: WormRecord) -> None:
        self._tx.appendleft(record)
        self._lane._tx_dirty = True

    @property
    def received_flits(self) -> int:
        return int(self._lane.a_rx_flits[self._row])

    @received_flits.setter
    def received_flits(self, value: int) -> None:
        self._lane.a_rx_flits[self._row] = value


class ArrayLane:
    """The SoA state plus the vectorized tick for ``engine="array"``."""

    def __init__(self, network: "FlitNetwork") -> None:
        self.network = network
        switches = network._switch_list
        adapters = network._adapter_list

        # -- enumerate components in dense order --------------------------
        self.ports: List[InputPort] = []
        self.outputs: List[OutputPort] = []
        for switch in switches:
            self.ports.extend(switch.inputs)
            self.outputs.extend(switch.outputs)
        self.wires: List[Wire] = []
        rows: dict = {}
        for wire in self._live_wires():
            if id(wire) not in rows:
                rows[id(wire)] = len(self.wires)
                self.wires.append(wire)

        P = len(self.ports)
        W = len(self.wires)
        max_delay = max((w.delay for w in self.wires), default=1)
        #: Forward/reverse ring width: strictly wider than any delay so
        #: ``due & mask`` slots cannot collide (one push per wire per tick,
        #: consumed exactly at the due tick).
        D = _pow2(max_delay + 2)
        self.dmask = D - 1
        cap = max((p.slack.capacity for p in self.ports), default=2)
        C = _pow2(cap)
        self.cmask = C - 1

        # -- wire state (row W is a permanently-empty dummy) ---------------
        self.w_buf = np.zeros((W + 1, D), dtype=np.int64)
        self.w_rsig = np.full((W + 1, D), -1, dtype=np.int8)
        self.w_stop = np.zeros(W + 1, dtype=bool)
        self.w_alive = np.ones(W + 1, dtype=bool)
        self.w_last_push = np.full(W + 1, -1, dtype=np.int64)
        self.w_tracked = np.full(W + 1, -1, dtype=np.int64)
        self.w_carried = np.zeros(W + 1, dtype=np.int64)
        self.w_idles = np.zeros(W + 1, dtype=np.int64)
        self.w_delay = np.ones(W + 1, dtype=np.int64)

        # -- slack / input-port state --------------------------------------
        self.s_buf = np.zeros((P, C), dtype=np.int64)
        self.s_head = np.zeros(P, dtype=np.int64)
        self.s_len = np.zeros(P, dtype=np.int64)
        self.s_cap = np.zeros(P, dtype=np.int64)
        self.s_stop_mark = np.zeros(P, dtype=np.int64)
        self.s_go_mark = np.zeros(P, dtype=np.int64)
        self.s_stopping = np.zeros(P, dtype=bool)
        self.s_ov = np.zeros(P, dtype=np.int64)
        self.s_peak = np.zeros(P, dtype=np.int64)
        self.p_state = np.zeros(P, dtype=np.int8)
        self.p_bulk = np.zeros(P, dtype=bool)
        self.p_last_stop = np.zeros(P, dtype=bool)
        self.p_site_wid = np.full(P, -1, dtype=np.int64)
        self.p_wire = np.zeros(P, dtype=np.int64)
        self.p_out_port = np.zeros(P, dtype=np.int64)
        self.o_idle_run = np.zeros(P, dtype=np.int64)
        self.o_sent = np.zeros(P, dtype=np.int64)
        self._prange = np.arange(P)
        self._prange_C = self._prange * C
        self._P = P
        #: Parked REQUESTING ports (plain list: mutated mid-loop by the
        #: ``_grant`` wake hook and read per-element in the scalar loop).
        #: Outside scheme 3 a REQUESTING port's ``_advance`` is a pure
        #: poll -- its requests are already queued and grants arrive
        #: synchronously through ``OutputPort._grant`` -- so the lane
        #: parks it until a grant (or a state change) wakes it.
        self.p_wait = [False] * P

        # -- adopt the object graph ----------------------------------------
        for row, wire in enumerate(self.wires):
            if wire._forward or wire._reverse:  # pragma: no cover - defensive
                raise RuntimeError("array lane must adopt an idle network")
            self.w_delay[row] = wire.delay
            self.w_alive[row] = wire.alive
            wire._lane = self
            wire._row = row
            d = wire.__dict__
            for stale in (
                "_forward", "_reverse", "_stop_at_sender", "_last_push_tick",
                "carried", "idles", "alive", "_tracked_wid",
            ):
                d.pop(stale, None)
            wire.__class__ = ArrayWire
        for row, port in enumerate(self.ports):
            self.p_wire[row] = port.wire._row
            slack = port.slack
            self.s_cap[row] = slack.capacity
            self.s_stop_mark[row] = slack.stop_mark
            self.s_go_mark[row] = slack.go_mark
            slack._lane = self
            slack._row = row
            for stale in ("_flits", "_stopping", "overflows", "peak"):
                slack.__dict__.pop(stale, None)
            slack.__class__ = ArraySlack
            port._lane = self
            port._row = row
            for stale in ("state", "_last_stop", "_site_wid"):
                port.__dict__.pop(stale, None)
            port.__class__ = ArrayInputPort
        for row, output in enumerate(self.outputs):
            output._lane = self
            output._row = row
            for stale in ("idle_run", "sent_flits"):
                output.__dict__.pop(stale, None)
            output.__class__ = ArrayOutputPort

        self.adapters = adapters
        A = len(adapters)
        dummy = W  # permanently-empty row for adapters without a wire
        self.a_rx_wire = np.array(
            [
                a.wire_in._row if a.wire_in is not None else dummy
                for a in adapters
            ],
            dtype=np.int64,
        )
        # Shared emitter buffer: rows [0, P) are the bulk ports' cached
        # output wires (maintained by the ``state`` setter), rows [P, P+A)
        # the adapters' transmit wires.  One candidate mask + one ready
        # computation then covers both the advance and transmit phases.
        self._e_wire = np.zeros(P + A, dtype=np.int64)
        self.p_out_wire = self._e_wire[:P]
        self.a_tx_wire = self._e_wire[P:]
        self.a_tx_wire[:] = [
            a.wire_out._row if a.wire_out is not None else dummy
            for a in adapters
        ]
        self.a_rx_flits = np.zeros(A, dtype=np.int64)
        # Transmit state: the front record of each adapter's queue, its
        # flits pre-encoded into one pool row, advanced one per tick.
        self.a_busy = np.zeros(A, dtype=bool)
        self.a_pos = np.zeros(A, dtype=np.int64)
        self.a_len = np.zeros(A, dtype=np.int64)
        self.a_wid = np.zeros(A, dtype=np.int64)
        self._tx_pool = np.zeros((A, 64), dtype=np.int64)
        self._tx_records: List[Optional[WormRecord]] = [None] * A
        self._tx_dirty = any(a._tx for a in adapters)
        for row, adapter in enumerate(adapters):
            self.a_rx_flits[row] = adapter.received_flits
            adapter._lane = self
            adapter._row = row
            adapter.__dict__.pop("received_flits", None)
            adapter.__class__ = ArrayFlitAdapter
        self.port_switch = [p.switch for p in self.ports]
        # Fused receive gather: switch input wires then adapter rx wires,
        # one fancy index per tick instead of two.  The ``*_flat`` views
        # plus pre-shifted row offsets turn every 2-D gather/scatter on
        # the hot path into a cheaper flat 1-D one.
        self._in_rows = np.concatenate([self.p_wire, self.a_rx_wire])
        self._w_flat = self.w_buf.reshape(-1)
        self._s_flat = self.s_buf.reshape(-1)
        self._dbits = D.bit_length() - 1
        self._cbits = C.bit_length() - 1
        self._in_rows_s = self._in_rows << self._dbits
        # Per-column gather indices, precomputed for every ring column so
        # the per-tick receive gather needs no index arithmetic.  Gated on
        # ring width: pathological delays would make the table huge.
        if D <= 64:
            self._in_cols = [self._in_rows_s + c for c in range(D)]
        else:  # pragma: no cover - only for extreme propagation delays
            self._in_cols = None
        self._flush = network.mode == IDLE_FLUSH
        #: Count of STOP/GO symbols still in flight in the reverse rings;
        #: the drain phase is skipped entirely while it is zero.
        self._rsig_pending = 0
        #: True while any wire is dead -- lets the emit path skip the
        #: aliveness masking in the (common) all-alive case.
        self._any_dead = not bool(self.w_alive.all())

        # -- killed-worm lookup (built lazily, refreshed on growth) --------
        self._killed_arr = np.zeros(0, dtype=bool)
        self._killed_len = 0

        # -- optional phase timer (repro.obs) ------------------------------
        obs = network.obs
        self.timer = getattr(obs, "phases", None) if obs is not None else None

    def _live_wires(self):
        """Every wire still referenced after splicing, in dense order."""
        for switch in self.network._switch_list:
            for port in switch.inputs:
                yield port.wire
            for output in switch.outputs:
                yield output.wire
        for adapter in self.network._adapter_list:
            if adapter.wire_out is not None:
                yield adapter.wire_out
            if adapter.wire_in is not None:
                yield adapter.wire_in

    # -- killed lookup ---------------------------------------------------------
    def _killed_mask(self, wids: np.ndarray) -> np.ndarray:
        killed = self.network.killed
        if len(killed) != self._killed_len:
            size = max(killed) + 1
            arr = np.zeros(size, dtype=bool)
            arr[list(killed)] = True
            self._killed_arr = arr
            self._killed_len = len(killed)
        arr = self._killed_arr
        mask = np.zeros(wids.shape, dtype=bool)
        inb = wids < arr.size
        mask[inb] = arr[wids[inb]]
        return mask

    # -- adapter transmit bookkeeping ------------------------------------------
    def _tx_load(self) -> None:
        """Load the front record of every idle, non-empty adapter queue
        into the transmit arrays.  Runs at the start of the transmit phase
        -- the first instant the dense engine's ``tick_output`` would see a
        newly enqueued record -- so first-flit timing matches exactly."""
        self._tx_dirty = False
        pool = self._tx_pool
        for row, adapter in enumerate(self.adapters):
            if self.a_busy[row] or not adapter._tx or adapter.wire_out is None:
                continue
            record = adapter._tx[0]
            flits = record.flits
            n = len(flits)
            if n > pool.shape[1]:
                pool = np.zeros(
                    (pool.shape[0], _pow2(n)), dtype=np.int64
                )
                pool[:, : self._tx_pool.shape[1]] = self._tx_pool
                self._tx_pool = pool
            pool[row, :n] = np.fromiter(
                (encode_flit(f) for f in flits), dtype=np.int64, count=n
            )
            self.a_pos[row] = 0
            self.a_len[row] = n
            self.a_wid[row] = record.wid
            self.a_busy[row] = True
            self._tx_records[row] = record

    def _tx_drop_front(self, row: int) -> None:
        """Retire the loaded record (tail pushed, or aborted after a
        flush); the next queued record loads on the next tick's
        ``_tx_load``, matching the dense one-action-per-tick cadence."""
        adapter = self.adapters[row]
        adapter._tx.popleft()
        adapter._tx_pos = 0
        self.a_busy[row] = False
        self._tx_records[row] = None
        if adapter._tx:
            self._tx_dirty = True

    def _tx_abort_killed(self) -> bool:
        """Abort loaded records whose worm was flushed; the network's
        retransmit callback re-enqueues a fresh record."""
        aborted = self.a_busy & self._killed_mask(self.a_wid)
        if not np.count_nonzero(aborted):
            return False
        for i in aborted.nonzero()[0]:
            self._tx_drop_front(int(i))
        return True

    def _emit_ready(self, now, prows, front_p, arows) -> bool:
        """One shared emit pass over the candidate rows: ``prows`` (< P)
        pop their slack front (pre-gathered into ``front_p``), ``arows``
        push the next pre-encoded flit of their adapter's loaded record.
        Candidates arrive as ascending row indices rather than a
        full-width mask, so the wire-readiness test and all bookkeeping
        stay proportional to the active set.  Ascending row order keeps
        the dense callback order (switches, then hosts)."""
        P = self._P
        n_pc = prows.size
        if n_pc:
            rows_all = (
                np.concatenate((prows, arows + P)) if arows.size else prows
            )
        elif arows.size:
            rows_all = arows + P
        else:
            return False
        lastp = self.w_last_push
        wr0 = self._e_wire[rows_all]
        ok = (lastp[wr0] != now) & ~self.w_stop[wr0]
        n_ok = int(np.count_nonzero(ok))
        if not n_ok:
            return False
        if n_ok != rows_all.size:
            rows_all = rows_all[ok]
            wr = wr0[ok]
        else:
            wr = wr0
        n_p = int(np.searchsorted(rows_all, P))
        prows_s = rows_all[:n_p]
        arows_s = rows_all[n_p:] - P
        if n_p:
            codes = front_p if n_p == n_pc else front_p[ok[:n_pc]]
            self.s_head[prows_s] += 1
            self.s_len[prows_s] -= 1
        if arows_s.size:
            pos = self.a_pos[arows_s]
            for i in arows_s[pos == 0]:
                record = self._tx_records[i]
                if record.injected_at is None:
                    record.injected_at = now
                    self.network._note_injection(record)
            codes_a = self._tx_pool[arows_s, pos]
            codes = np.concatenate((codes, codes_a)) if n_p else codes_a
        lastp[wr] = now
        if self._any_dead:
            # Dead wires swallow the flit after the push is recorded; the
            # per-port stats below still use the unfiltered idleness.
            alive = self.w_alive[wr]
            idle_all = ((codes >> 10) & 7) == K_IDLE
            lw = wr[alive]
            lf = codes[alive]
            lidle = idle_all[alive]
            pidle = idle_all[:n_p]
        else:
            lw = wr
            lf = codes
            lidle = ((lf >> 10) & 7) == K_IDLE
            pidle = lidle[:n_p]
        self._w_flat[
            (lw << self._dbits) + ((now + self.w_delay[lw]) & self.dmask)
        ] = lf
        self.w_carried[lw] += 1
        self.w_idles[lw] += lidle
        # First flit of a worm on a wire: site tracking (rare).
        fwids = lf >> _WID_SHIFT
        fresh = self.w_tracked[lw] != fwids
        if np.count_nonzero(fresh):
            for j in fresh.nonzero()[0]:
                wire = self.wires[int(lw[j])]
                if wire.track is not None:
                    wire.track(int(fwids[j]), wire)
            self.w_tracked[lw[fresh]] = fwids[fresh]
        if n_p:
            op = self.p_out_port[prows_s]
            self.o_sent[op] += 1
            self.o_idle_run[op] = np.where(pidle, self.o_idle_run[op] + 1, 0)
        if arows_s.size:
            self.a_pos[arows_s] = pos + 1
            for i in arows_s[pos + 1 >= self.a_len[arows_s]]:
                self._tx_drop_front(int(i))
        return True

    # -- the tick --------------------------------------------------------------
    def tick(self, now: int) -> bool:
        timer = self.timer
        t0 = perf_counter() if timer is not None else 0.0
        moved = False
        col = now & self.dmask
        P = self._P

        # Phase 1: reverse STOP/GO drain (eager, see module docstring).
        # Skipped outright while no symbols are in flight.
        if self._rsig_pending:
            rsig = self.w_rsig[:, col]
            due = rsig >= 0
            n_due = int(np.count_nonzero(due))
            if n_due:
                self.w_stop[due] = rsig[due] != 0
                rsig[due] = -1
                self._rsig_pending -= n_due

        # Phase 2+3: deliver + absorb, switch input ports and adapter
        # receive sides in one fused gather (ports occupy rows [0, P)
        # of ``_in_rows``, matching the dense order: switches first).
        # After the gather everything runs on the due-row index set, so
        # the per-tick cost tracks activity rather than network size.
        w_flat = self._w_flat
        in_cols = self._in_cols
        in_idx = in_cols[col] if in_cols is not None else self._in_rows_s + col
        inc_all = w_flat[in_idx]
        rows_act = inc_all.nonzero()[0]
        if rows_act.size:
            moved = True
            w_flat[in_idx[rows_act]] = 0  # consumed
            inc_act = inc_all[rows_act]
            wids_act = inc_act >> _WID_SHIFT
            if self.network.killed:
                kmask = self._killed_mask(wids_act)
                if kmask.any():
                    keepm = ~kmask
                    rows_act = rows_act[keepm]
                    inc_act = inc_act[keepm]
                    wids_act = wids_act[keepm]
            n_sw = int(np.searchsorted(rows_act, P))
            if n_sw:
                rows_p = rows_act[:n_sw]
                inc = inc_act[:n_sw]
                wids = wids_act[:n_sw]
                # First flit of a worm at this port: register the switch
                # in the per-worm site index, in dense port order.
                fresh = wids != self.p_site_wid[rows_p]
                if fresh.any():
                    register = self.network._register_site
                    port_switch = self.port_switch
                    for j in fresh.nonzero()[0]:
                        register(int(wids[j]), port_switch[rows_p[j]])
                    self.p_site_wid[rows_p[fresh]] = wids[fresh]
                slen = self.s_len[rows_p]
                full = slen >= self.s_cap[rows_p]
                if full.any():
                    self.s_ov[rows_p[full]] += 1
                    keepm = ~full
                    rows_p = rows_p[keepm]
                    inc = inc[keepm]
                    slen = slen[keepm]
                if rows_p.size:
                    self._s_flat[
                        (rows_p << self._cbits)
                        + ((self.s_head[rows_p] + slen) & self.cmask)
                    ] = inc
                    slen = slen + 1
                    self.s_len[rows_p] = slen
                    self.s_peak[rows_p] = np.maximum(
                        self.s_peak[rows_p], slen
                    )
            # Adapter receive (dense order: after switch inputs).
            # ROUTE/IDLE flits are stripped without counting as progress
            # (deadlocked IDLE fills must not look like motion); killed
            # worms drain silently; TAILs complete worms through the
            # object-path delivery bookkeeping.
            if n_sw < rows_act.size:
                arows_r = rows_act[n_sw:] - P
                inc_a = inc_act[n_sw:]
                kind_a = (inc_a >> 10) & 7
                payload = kind_a >= K_DATA
                n_payload = int(np.count_nonzero(payload))
                if n_payload:
                    self.a_rx_flits[arows_r[payload]] += 1
                    self.network._progress_events += n_payload
                    tails = payload & (kind_a == K_TAIL)
                    if tails.any():
                        wids_a = wids_act[n_sw:]
                        adapters = self.adapters
                        record_delivery = self.network.record_delivery
                        for j in tails.nonzero()[0]:
                            adapter = adapters[arows_r[j]]
                            wid = int(wids_a[j])
                            adapter.received_worms.append(wid)
                            record_delivery(wid, adapter.host_id, now)
        # Figure-1 hysteresis for every port, then scatter the changed
        # STOP/GO symbols into the input wires' reverse rings.
        occ = self.s_len
        new_stop = np.where(
            self.s_stopping, occ > self.s_go_mark, occ >= self.s_stop_mark
        )
        self.s_stopping[:] = new_stop
        changed = new_stop != self.p_last_stop
        if np.count_nonzero(changed):
            rows = changed.nonzero()[0]
            wr = self.p_wire[rows]
            self.w_rsig[wr, (now + self.w_delay[wr]) & self.dmask] = new_stop[
                rows
            ]
            self.p_last_stop[rows] = new_stop[rows]
            self._rsig_pending += rows.size
        if timer is not None:
            t1 = perf_counter()
            timer.add("deliver", t1 - t0)
            t0 = t1

        # Phase 4+5: advance + transmit.  Bulk-stream the single-branch
        # STREAMING ports whose front is plain payload, fused with the
        # adapter transmit push into one emit pass; everything else
        # (headers, grants, multicast replication, teardown) goes through
        # the object path in dense port order.  Scheme 3 runs its advance
        # fully scalar (mid-tick flushes are ordering- and RNG-sensitive)
        # and transmits only after the flush pass, as the dense engine
        # does.
        if self._tx_dirty:
            self._tx_load()
        slen_pos = self.s_len > 0
        busy = (self.p_state != S_IDLE) | slen_pos
        if self._flush:
            srows = busy.nonzero()[0]
            if srows.size:
                ports = self.ports
                for p in srows:
                    port = ports[p]
                    if port.switch._advance(port, now):
                        moved = True
            if timer is not None:
                t1 = perf_counter()
                timer.add("contend", t1 - t0)
                t0 = t1
            # Transmit after the flush pass: a flush may have killed the
            # very worm an adapter is mid-injecting.
            if self.network.killed and self._tx_abort_killed():
                moved = True
            if self._emit_ready(
                now, _EMPTY_I64, _EMPTY_I64, self.a_busy.nonzero()[0]
            ):
                moved = True
            if timer is not None:
                timer.add("inject", perf_counter() - t0)
            return moved

        # Killed worms cannot appear mid-tick outside scheme 3, so the
        # abort check can run before the fused emit.
        if self.network.killed and self._tx_abort_killed():
            moved = True
        # Bulk-streamable candidates: occupied single-branch STREAMING
        # ports whose front is plain payload.  Gather the fronts for the
        # (few) occupied bulk rows only; the kind test runs on the raw
        # codes (see ``_KIND_FIELD``).
        qrows = (self.p_bulk & slen_pos).nonzero()[0]
        if qrows.size:
            front_q = self._s_flat[
                (qrows << self._cbits) + (self.s_head[qrows] & self.cmask)
            ]
            stream = (front_q & _KIND_FIELD) < _FTAIL_FIELD
            prows = qrows[stream]
            front_p = front_q[stream]
        else:
            prows = qrows
            front_p = _EMPTY_I64
        if self._emit_ready(now, prows, front_p, self.a_busy.nonzero()[0]):
            moved = True
        if timer is not None:
            t1 = perf_counter()
            timer.add("advance", t1 - t0)
            t0 = t1

        # ``busy`` is a per-tick temporary, so the bulk rows can be
        # cleared in place instead of building a second full-width mask.
        scalar = busy
        if prows.size:
            scalar[prows] = False
        srows = scalar.nonzero()[0]
        if srows.size:
            ports = self.ports
            wait = self.p_wait
            p_state = self.p_state
            # Parked ports stay in the iteration (not pre-filtered) so a
            # grant released by an *earlier* port in this very loop clears
            # the flag in time for the woken port's same-tick advance --
            # the exact timing of the dense in-order poll.
            for p in srows.tolist():
                if wait[p]:
                    continue
                port = ports[p]
                if port.switch._advance(port, now):
                    moved = True
                elif p_state[p] == S_REQUESTING:
                    # Pure poll from here on: every branch request is
                    # queued; park until OutputPort._grant wakes us.
                    wait[p] = True
        if timer is not None:
            timer.add("contend", perf_counter() - t0)
        return moved
