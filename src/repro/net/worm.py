"""Worm records.

A *worm* is the wormhole network's unit of transfer: a variable-length
message (a few bytes to 9 KB in Myrinet) whose header carries the source
route.  At the worm-level of modelling we track the metadata needed by the
multicast protocols; the byte-exact header layout lives in
:mod:`repro.core.route_encoding` and :mod:`repro.net.flitlevel`.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Optional

#: Myrinet's maximum worm size (LANai control-program limit), bytes.
MAX_WORM_BYTES = 9 * 1024

#: Modelled size of protocol control worms (ACK/NACK), bytes.
CONTROL_WORM_BYTES = 8

_worm_ids = itertools.count(1)


class WormKind(str, Enum):
    """What a worm carries.

    The credit kinds belong to the [VLB96] centralized-credit baseline:
    credit requests/grants between sources and the credit manager, and the
    credit-gathering token that tours the group members.
    """

    UNICAST = "unicast"
    MULTICAST = "multicast"
    ACK = "ack"
    NACK = "nack"
    CREDIT_REQUEST = "credit_request"
    CREDIT_GRANT = "credit_grant"
    TOKEN = "token"


@dataclass
class Worm:
    """One worm in flight.

    Attributes
    ----------
    source, dest:
        The *current hop's* endpoints (host ids).  For host-adapter
        multicasting the worm is re-addressed at every member.
    origin:
        The host that originated the message (stable across hops).
    length:
        Total worm length in bytes, header included.
    kind:
        See :class:`WormKind`.
    group:
        Multicast group id (8-bit in the Myrinet implementation), or None.
    hop_count:
        Remaining retransmissions on a Hamiltonian circuit; decremented at
        each member, forwarding stops at zero (Section 5).
    wrapped:
        True once the worm has crossed the host-ID reversal (highest-ID to
        lowest-ID member); selects the second buffer class (Section 4).
    seqno:
        Total-ordering sequence number, when a serializer assigned one.
    created:
        Origination time of the *message* (preserved across hops so
        delivery latency spans the whole multicast).
    payload:
        Opaque application data (the adapter engine stores the shared
        message record here).
    phase:
        Tree-broadcast direction phase: "climb" (towards the root) or
        "descend"; selects the buffer class in that scheme.
    accepted:
        Set by the receiving adapter's implicit buffer reservation: True
        once buffered, False when dropped (NACK), None while undecided.
    """

    source: int
    dest: int
    length: int
    kind: WormKind = WormKind.UNICAST
    origin: Optional[int] = None
    group: Optional[int] = None
    hop_count: int = 0
    wrapped: bool = False
    seqno: Optional[int] = None
    created: float = 0.0
    payload: Any = None
    phase: Optional[str] = None
    accepted: Optional[bool] = None
    relay: bool = False
    wid: int = field(default_factory=lambda: next(_worm_ids))

    def __post_init__(self) -> None:
        if self.length <= 0:
            raise ValueError(f"worm length must be positive, got {self.length}")
        if self.length > MAX_WORM_BYTES:
            raise ValueError(
                f"worm length {self.length} exceeds Myrinet max {MAX_WORM_BYTES}"
            )
        if self.origin is None:
            self.origin = self.source

    def forwarded_to(self, next_dest: int, **overrides: Any) -> "Worm":
        """A copy of this worm re-addressed for the next hop of a multicast.

        The message identity fields (origin, group, seqno, created, payload,
        length) are preserved; per-hop fields may be overridden.
        """
        fields = dict(
            source=self.dest,
            dest=next_dest,
            length=self.length,
            kind=self.kind,
            origin=self.origin,
            group=self.group,
            hop_count=self.hop_count,
            wrapped=self.wrapped,
            seqno=self.seqno,
            created=self.created,
            payload=self.payload,
            phase=self.phase,
        )
        fields.update(overrides)
        return Worm(**fields)

    def retry_copy(self) -> "Worm":
        """A fresh copy for retransmission after a NACK: same addressing and
        message identity, reset admission state, new worm id."""
        fields = dict(
            source=self.source,
            dest=self.dest,
            length=self.length,
            kind=self.kind,
            origin=self.origin,
            group=self.group,
            hop_count=self.hop_count,
            wrapped=self.wrapped,
            seqno=self.seqno,
            created=self.created,
            payload=self.payload,
            phase=self.phase,
            relay=self.relay,
        )
        return Worm(**fields)

    @property
    def is_control(self) -> bool:
        return self.kind in (
            WormKind.ACK,
            WormKind.NACK,
            WormKind.CREDIT_REQUEST,
            WormKind.CREDIT_GRANT,
            WormKind.TOKEN,
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        tag = f" g{self.group}" if self.group is not None else ""
        return (
            f"<Worm #{self.wid} {self.kind.value}{tag} "
            f"{self.source}->{self.dest} len={self.length}>"
        )
