"""Tests for Resource, Store and Container."""

import pytest

from repro.sim import Container, Resource, Simulator, Store


def test_resource_grants_up_to_capacity():
    sim = Simulator()
    res = Resource(sim, capacity=2)
    r1 = res.request()
    r2 = res.request()
    r3 = res.request()
    sim.run()
    assert r1.triggered and r2.triggered
    assert not r3.triggered
    assert res.count == 2
    assert len(res.queue) == 1


def test_resource_release_grants_next_fifo():
    sim = Simulator()
    res = Resource(sim, capacity=1)
    order = []

    def user(tag, hold):
        req = res.request()
        yield req
        order.append((tag, sim.now))
        yield sim.timeout(hold)
        res.release(req)

    sim.process(user("a", 5))
    sim.process(user("b", 5))
    sim.process(user("c", 5))
    sim.run()
    assert order == [("a", 0.0), ("b", 5.0), ("c", 10.0)]


def test_resource_invalid_capacity():
    sim = Simulator()
    with pytest.raises(ValueError):
        Resource(sim, capacity=0)


def test_resource_release_unheld_raises():
    sim = Simulator()
    res = Resource(sim, capacity=1)
    req = res.request()
    sim.run()
    res.release(req)
    with pytest.raises(RuntimeError):
        res.release(req)


def test_resource_cancel_queued_request():
    sim = Simulator()
    res = Resource(sim, capacity=1)
    holder = res.request()
    waiting = res.request()
    sim.run()
    waiting.cancel()
    assert len(res.queue) == 0
    res.release(holder)
    assert res.count == 0  # cancelled request not granted


def test_resource_cancel_held_request_releases():
    sim = Simulator()
    res = Resource(sim, capacity=1)
    holder = res.request()
    waiter = res.request()
    sim.run()
    holder.cancel()
    assert waiter in res.users


def test_store_put_get_fifo():
    sim = Simulator()
    store = Store(sim)

    def producer():
        for i in range(3):
            yield store.put(i)

    def consumer():
        got = []
        for _ in range(3):
            item = yield store.get()
            got.append(item)
        return got

    sim.process(producer())
    c = sim.process(consumer())
    sim.run()
    assert c.value == [0, 1, 2]


def test_store_get_blocks_until_put():
    sim = Simulator()
    store = Store(sim)

    def consumer():
        item = yield store.get()
        return (item, sim.now)

    def producer():
        yield sim.timeout(8)
        yield store.put("late")

    c = sim.process(consumer())
    sim.process(producer())
    sim.run()
    assert c.value == ("late", 8.0)


def test_store_bounded_put_blocks():
    sim = Simulator()
    store = Store(sim, capacity=1)

    def producer():
        yield store.put("a")
        yield store.put("b")  # must wait for a get
        return sim.now

    def consumer():
        yield sim.timeout(6)
        yield store.get()

    p = sim.process(producer())
    sim.process(consumer())
    sim.run()
    assert p.value == 6.0


def test_store_filtered_get():
    sim = Simulator()
    store = Store(sim)

    def producer():
        yield store.put({"kind": "unicast"})
        yield store.put({"kind": "multicast"})

    def consumer():
        item = yield store.get(filter=lambda w: w["kind"] == "multicast")
        return item["kind"]

    sim.process(producer())
    c = sim.process(consumer())
    sim.run()
    assert c.value == "multicast"
    assert store.items[0]["kind"] == "unicast"


def test_store_invalid_capacity():
    sim = Simulator()
    with pytest.raises(ValueError):
        Store(sim, capacity=0)


def test_container_get_put_levels():
    sim = Simulator()
    pool = Container(sim, capacity=100)

    def proc():
        yield pool.get(60)
        assert pool.level == 40
        pool.put(10)
        assert pool.level == 50

    sim.run_process(proc())


def test_container_get_blocks_until_put():
    sim = Simulator()
    pool = Container(sim, capacity=100, init=10)

    def taker():
        yield pool.get(50)
        return sim.now

    def giver():
        yield sim.timeout(4)
        pool.put(90)

    t = sim.process(taker())
    sim.process(giver())
    sim.run()
    assert t.value == 4.0
    assert pool.level == 50


def test_container_fifo_no_small_bypass():
    # A small later request must not starve an earlier large one (FIFO
    # semantics prevent convoy reordering of buffer claims).
    sim = Simulator()
    pool = Container(sim, capacity=100, init=0)
    order = []

    def taker(tag, amount, delay):
        yield sim.timeout(delay)
        yield pool.get(amount)
        order.append(tag)

    def giver():
        yield sim.timeout(10)
        pool.put(30)   # not enough for 'big'
        yield sim.timeout(10)
        pool.put(70)   # now big fits, then small

    sim.process(taker("big", 80, 0))
    sim.process(taker("small", 10, 1))
    sim.process(giver())
    sim.run()
    assert order == ["big", "small"]


def test_container_try_get():
    sim = Simulator()
    pool = Container(sim, capacity=100)
    assert pool.try_get(40)
    assert pool.level == 60
    assert not pool.try_get(70)
    assert pool.level == 60


def test_container_try_get_respects_waiters():
    sim = Simulator()
    pool = Container(sim, capacity=100, init=0)

    def waiter():
        yield pool.get(50)

    sim.process(waiter())
    sim.run()
    pool.put(60)
    # waiter got 50, level is 10; try_get beyond level fails
    assert pool.level == 10
    assert not pool.try_get(20)
    assert pool.try_get(10)


def test_container_overfull_put_raises():
    sim = Simulator()
    pool = Container(sim, capacity=10)
    with pytest.raises(RuntimeError):
        pool.put(1)


def test_container_request_exceeding_capacity_rejected():
    sim = Simulator()
    pool = Container(sim, capacity=10)
    with pytest.raises(ValueError):
        pool.get(11)


def test_container_cancel_waiter():
    sim = Simulator()
    pool = Container(sim, capacity=10, init=0)
    get = pool.get(5)
    get.cancel()
    pool.put(10)
    assert pool.level == 10
    assert not get.triggered
