"""Parity suite: ``Simulator(engine="packed")`` vs the stock heap engine.

Mirrors the kernel trace tests and pins every ordering rule the packed
core's bucketed queue and inlined dispatch loop must preserve: FIFO within
a priority class, urgent preemption at the same instant (including
mid-drain), exception propagation leaving the queue resumable, interrupts,
composite conditions, and the batched ``schedule_many``/``pop_ready`` API.
"""

import pytest

from repro.sim import Resource, SimTrace, Simulator
from repro.sim.engine import EmptySchedule
from repro.sim.events import URGENT, Interrupt
from repro.sim.packed import PackedSimulator

ENGINES = ("heap", "packed")


# -- construction and dispatch -----------------------------------------------

def test_engine_flag_dispatches_to_packed():
    sim = Simulator(engine="packed")
    assert type(sim) is PackedSimulator
    assert sim.engine == "packed"
    assert Simulator().engine == "heap"


def test_unknown_engine_rejected():
    with pytest.raises(ValueError, match="unknown simulator engine"):
        Simulator(engine="vectorized")


def test_direct_construction_matches_flag():
    assert type(PackedSimulator()) is PackedSimulator
    assert PackedSimulator().engine == "packed"


# -- trace parity ------------------------------------------------------------

def _ticker_workload(sim):
    def ticker():
        for _ in range(5):
            yield sim.timeout(1)

    sim.process(ticker(), name="ticker")
    sim.run()


def test_trace_counts_match_heap_engine():
    counts = {}
    for engine in ENGINES:
        trace = SimTrace()
        sim = Simulator(trace=trace, engine=engine)
        _ticker_workload(sim)
        counts[engine] = (
            trace.events,
            trace.by_type.get("Timeout"),
            trace.wakeups["ticker"],
            trace.total_wakeups,
        )
    assert counts["packed"] == counts["heap"]
    # The packed process must report as "Process" in by_type, not leak its
    # implementation class name.
    assert counts["packed"][1] == 5
    assert counts["packed"][2] == 6  # initial start + 5 timeouts


def test_trace_does_not_change_results():
    def workload(sim):
        res = Resource(sim)
        log = []

        def proc(name):
            req = res.request()
            yield req
            log.append((name, sim.now))
            yield sim.timeout(2)
            res.release(req)

        sim.process(proc("a"), name="a")
        sim.process(proc("b"), name="b")
        sim.run()
        return log, sim.now

    plain = workload(Simulator(engine="packed"))
    traced = workload(Simulator(trace=SimTrace(), engine="packed"))
    heap = workload(Simulator())
    assert traced == plain == heap


# -- ordering rules ----------------------------------------------------------

def test_schedule_call_interleaves_fifo():
    sim = Simulator(engine="packed")
    order = []

    def proc():
        yield sim.timeout(1)
        order.append("proc")

    sim.process(proc(), name="p")
    sim.schedule_call(1.0, lambda: order.append("call"))
    sim.run()
    # FIFO within the t=1 bucket: the call was enqueued before the process
    # first resumed and pushed its timeout.
    assert order == ["call", "proc"]


def test_urgent_events_precede_normal_at_equal_time():
    for engine in ENGINES:
        sim = Simulator(engine=engine)
        order = []
        ev = sim.event()

        def succeeder():
            yield sim.timeout(1)
            ev.succeed(priority=URGENT)
            order.append("succeeder")

        def other():
            yield sim.timeout(1)
            order.append("other")

        def waiter():
            yield ev
            order.append("urgent-waiter")

        sim.process(succeeder(), name="s")
        sim.process(other(), name="o")
        sim.process(waiter(), name="w")
        sim.run()
        assert order == ["succeeder", "urgent-waiter", "other"], engine


def test_urgent_preempts_mid_drain():
    # Five normals sit in the t=1 bucket.  The first one triggers an URGENT
    # event at the same instant while the bucket is being drained; the
    # urgent waiter must run before the remaining normals.
    for engine in ENGINES:
        sim = Simulator(engine=engine)
        order = []
        ev = sim.event()

        def head():
            yield sim.timeout(1)
            order.append("head")
            ev.succeed(priority=URGENT)

        def tail(i):
            yield sim.timeout(1)
            order.append(f"tail{i}")

        def waiter():
            yield ev
            order.append("urgent")

        sim.process(waiter(), name="w")
        sim.process(head(), name="h")
        for i in range(3):
            sim.process(tail(i), name=f"t{i}")
        sim.run()
        assert order == ["head", "urgent", "tail0", "tail1", "tail2"], engine


def test_same_instant_spawning_matches_heap():
    # Events scheduled *while* their instant is being drained (timeout(0),
    # grant cascades) must run in the same order as on the heap engine.
    def workload(sim):
        log = []

        def spawner(depth):
            log.append(("spawn", depth, sim.now))
            if depth < 3:
                yield sim.timeout(0)
                sim.process(spawner(depth + 1), name=f"s{depth + 1}")
                yield sim.timeout(0)
                log.append(("after", depth, sim.now))
            else:
                yield sim.timeout(1)
                log.append(("leaf", depth, sim.now))

        sim.process(spawner(0), name="s0")

        def ticker():
            for _ in range(4):
                yield sim.timeout(0.5)
                log.append(("tick", sim.now))

        sim.process(ticker(), name="tick")
        sim.run()
        return log, sim.now

    assert workload(Simulator(engine="packed")) == workload(Simulator())


def test_run_until_parity():
    def workload(sim):
        seen = []

        def proc():
            while True:
                yield sim.timeout(1.5)
                seen.append(sim.now)

        sim.process(proc(), name="p")
        sim.run(until=10.0)
        return seen, sim.now

    assert workload(Simulator(engine="packed")) == workload(Simulator())
    sim = Simulator(engine="packed")
    sim.run(until=4.0)  # empty queue: clock still advances
    assert sim.now == 4.0


# -- resources, interrupts, conditions ---------------------------------------

def test_uncontended_request_leaves_queue_empty():
    sim = Simulator(engine="packed")
    res = Resource(sim)
    req = res.request()
    assert req.processed  # granted immediately, no scheduling round-trip
    assert req.ok
    assert sim.pending_count == 0


def test_contended_grant_cascade_parity():
    def workload(sim):
        res = Resource(sim, capacity=2)
        log = []

        def proc(name, hold):
            req = res.request()
            yield req
            log.append((name, "got", sim.now))
            yield sim.timeout(hold)
            res.release(req)
            log.append((name, "rel", sim.now))

        for i, hold in enumerate([3, 1, 2, 1, 4, 2]):
            sim.process(proc(f"p{i}", hold), name=f"p{i}")
        sim.run()
        return log, sim.now

    assert workload(Simulator(engine="packed")) == workload(Simulator())


def test_interrupt_parity():
    def workload(sim):
        log = []

        def sleeper():
            try:
                yield sim.timeout(100)
                log.append("slept")
            except Interrupt as exc:
                log.append(("interrupted", exc.cause, sim.now))

        def poker(victim):
            yield sim.timeout(2)
            victim.interrupt("wake up")
            log.append(("poked", sim.now))

        victim = sim.process(sleeper(), name="sleeper")
        sim.process(poker(victim), name="poker")
        sim.run()
        return log, sim.now

    assert workload(Simulator(engine="packed")) == workload(Simulator())


def test_conditions_parity():
    def workload(sim):
        log = []

        def proc():
            t1 = sim.timeout(1, value="a")
            t2 = sim.timeout(2, value="b")
            got = yield sim.any_of([t1, t2])
            log.append(("any", sorted(got.values()), sim.now))
            t3 = sim.timeout(1, value="c")
            got = yield sim.all_of([t2, t3])
            log.append(("all", sorted(got.values()), sim.now))

        sim.process(proc(), name="p")
        sim.run()
        return log, sim.now

    assert workload(Simulator(engine="packed")) == workload(Simulator())


# -- failure and resumability ------------------------------------------------

def test_unhandled_failure_raises_and_queue_resumes():
    for engine in ENGINES:
        sim = Simulator(engine=engine)
        seen = []

        def boomer():
            yield sim.timeout(1)
            raise RuntimeError("boom")

        def survivor():
            for _ in range(3):
                yield sim.timeout(1)
                seen.append(sim.now)

        sim.process(survivor(), name="ok")
        sim.process(boomer(), name="boom")
        with pytest.raises(RuntimeError, match="boom"):
            sim.run()
        # The failure propagated mid-drain; the queue must remain
        # consistent and the remaining events dispatchable.
        sim.run()
        assert seen == [1.0, 2.0, 3.0], engine


def test_run_process_starvation_names_the_process():
    sim = Simulator(engine="packed")

    def starved():
        yield sim.event()  # never triggered

    with pytest.raises(RuntimeError, match="'starved' starved"):
        sim.run_process(starved())


def test_run_process_normal_completion():
    sim = Simulator(engine="packed")

    def fine():
        yield sim.timeout(3)
        return 42

    assert sim.run_process(fine()) == 42


def test_step_and_peek_walk_the_queue():
    for engine in ENGINES:
        sim = Simulator(engine=engine)
        fired = []
        sim.schedule_call(1.0, lambda: fired.append(1))
        sim.schedule_call(1.0, lambda: fired.append(2))
        sim.schedule_call(3.0, lambda: fired.append(3))
        assert sim.peek() == 1.0
        sim.step()
        assert (sim.now, fired) == (1.0, [1]), engine
        assert sim.peek() == 1.0
        sim.step()
        assert fired == [1, 2]
        assert sim.peek() == 3.0
        sim.step()
        assert fired == [1, 2, 3]
        with pytest.raises(EmptySchedule):
            sim.step()


# -- batched API -------------------------------------------------------------

def test_schedule_many_pop_ready_parity():
    for engine in ENGINES:
        sim = Simulator(engine=engine)
        events = [sim.event() for _ in range(5)]
        sim.schedule_many(events[:3], delay=2.0, value="x")
        sim.schedule_many(events[3:], delay=1.0, value="y")
        assert sim.pending_count == 5
        ready = sim.pop_ready()
        assert sim.now == 1.0
        assert ready == events[3:], engine
        assert all(ev.value == "y" for ev in ready)
        ready = sim.pop_ready()
        assert sim.now == 2.0
        assert ready == events[:3], engine
        assert sim.pop_ready() == []


def test_schedule_many_rejects_triggered_events():
    for engine in ENGINES:
        sim = Simulator(engine=engine)
        ev = sim.event()
        ev.succeed()
        with pytest.raises(RuntimeError, match="already been triggered"):
            sim.schedule_many([ev])


def test_schedule_many_urgent_precedes_normal():
    for engine in ENGINES:
        sim = Simulator(engine=engine)
        order = []
        normal, urgent = sim.event(), sim.event()
        normal.callbacks.append(lambda ev: order.append("normal"))
        urgent.callbacks.append(lambda ev: order.append("urgent"))
        sim.schedule_many([normal], delay=1.0)
        sim.schedule_many([urgent], delay=1.0, priority=URGENT)
        sim.run()
        assert order == ["urgent", "normal"], engine


def test_pop_ready_mid_run_returns_current_instant():
    # pop_ready while events remain at the current instant must hand them
    # over before advancing the clock (both engines).
    for engine in ENGINES:
        sim = Simulator(engine=engine)
        a, b = sim.event(), sim.event()
        sim.schedule_many([a, b], delay=1.0)
        first = sim.pop_ready()
        assert (sim.now, first) == (1.0, [a, b]), engine


def test_timeout_rejects_negative_delay():
    sim = Simulator(engine="packed")
    with pytest.raises(ValueError, match="negative delay"):
        sim.timeout(-1)
    with pytest.raises(ValueError, match="negative delay"):
        sim.schedule_call(-1.0, lambda: None)
