"""Tests for the kernel's profiling trace, scheduled calls and hot paths."""

import pytest

from repro.sim import Resource, SimTrace, Simulator
from repro.sim.events import URGENT


# -- SimTrace ----------------------------------------------------------------

def test_trace_counts_events_and_wakeups():
    trace = SimTrace()
    sim = Simulator(trace=trace)

    def ticker():
        for _ in range(5):
            yield sim.timeout(1)

    sim.process(ticker(), name="ticker")
    sim.run()
    assert sim.trace is trace
    assert trace.events >= 5
    assert trace.by_type.get("Timeout") == 5
    assert trace.wakeups["ticker"] == 6  # initial start + 5 timeouts
    assert trace.total_wakeups == 6


def test_trace_summary_ranks_largest_first():
    trace = SimTrace()
    sim = Simulator(trace=trace)

    def busy():
        for _ in range(3):
            yield sim.timeout(1)

    def lazy():
        yield sim.timeout(10)

    sim.process(busy(), name="busy")
    sim.process(lazy(), name="lazy")
    sim.run()
    summary = trace.summary()
    wakeups = list(summary["wakeups"])
    assert wakeups[0] == "busy"
    assert summary["events"] == trace.events


def test_trace_reset():
    trace = SimTrace()
    sim = Simulator(trace=trace)
    sim.process((sim.timeout(1) for _ in range(1)), name="p")
    sim.run()
    trace.reset()
    assert trace.events == 0
    assert trace.by_type == {}
    assert trace.wakeups == {}


def test_trace_does_not_change_results():
    def workload(sim):
        res = Resource(sim)
        log = []

        def proc(name):
            req = res.request()
            yield req
            log.append((name, sim.now))
            yield sim.timeout(2)
            res.release(req)

        sim.process(proc("a"), name="a")
        sim.process(proc("b"), name="b")
        sim.run()
        return log, sim.now

    plain = workload(Simulator())
    traced = workload(Simulator(trace=SimTrace()))
    assert traced == plain


# -- run_process starvation --------------------------------------------------

def test_run_process_starvation_names_the_process():
    sim = Simulator()

    def starved():
        yield sim.event()  # never triggered

    with pytest.raises(RuntimeError, match="'starved' starved"):
        sim.run_process(starved())


def test_run_process_normal_completion_unaffected():
    sim = Simulator()

    def fine():
        yield sim.timeout(3)
        return 42

    assert sim.run_process(fine()) == 42


# -- schedule_call -----------------------------------------------------------

def test_schedule_call_fires_at_the_right_time():
    sim = Simulator()
    fired = []
    sim.schedule_call(5.0, lambda: fired.append(sim.now))
    sim.schedule_call(2.0, lambda: fired.append(sim.now))
    sim.run()
    assert fired == [2.0, 5.0]
    assert sim.now == 5.0


def test_schedule_call_rejects_negative_delay():
    sim = Simulator()
    with pytest.raises(ValueError, match="negative delay"):
        sim.schedule_call(-1.0, lambda: None)


def test_schedule_call_interleaves_with_processes():
    sim = Simulator()
    order = []

    def proc():
        yield sim.timeout(1)
        order.append("proc")

    sim.process(proc(), name="p")
    sim.schedule_call(1.0, lambda: order.append("call"))
    sim.run()
    # Both fire at t=1.  The call was enqueued before the process even
    # started (its timeout is only pushed once it first resumes at t=0),
    # so FIFO puts the call first.
    assert order == ["call", "proc"]


# -- uncontended grant fast path ---------------------------------------------

def test_uncontended_request_completes_without_heap_traffic():
    sim = Simulator()
    res = Resource(sim)
    req = res.request()
    assert req.processed  # granted immediately, no scheduling round-trip
    assert req.ok
    assert len(sim._queue) == 0


def test_contended_request_still_queues():
    sim = Simulator()
    res = Resource(sim)
    first = res.request()
    second = res.request()
    assert first.processed
    assert not second.processed
    res.release(first)
    sim.run()
    assert second.processed


def test_urgent_events_precede_normal_at_equal_time():
    # At t=1 the queue holds: succeeder's timeout, other's timeout (both
    # NORMAL, pushed at t=0 in that order).  Succeeder then succeeds ``ev``
    # with URGENT priority (t=1, highest eid).  Urgent ordering must resume
    # the waiter ahead of other's already-queued NORMAL timeout.
    sim = Simulator()
    order = []
    ev = sim.event()

    def succeeder():
        yield sim.timeout(1)
        ev.succeed(priority=URGENT)
        order.append("succeeder")

    def other():
        yield sim.timeout(1)
        order.append("other")

    def waiter():
        yield ev
        order.append("urgent-waiter")

    sim.process(succeeder(), name="s")
    sim.process(other(), name="o")
    sim.process(waiter(), name="w")
    sim.run()
    assert order == ["succeeder", "urgent-waiter", "other"]
