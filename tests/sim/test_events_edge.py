"""Edge-case tests for condition events and failure propagation."""

import pytest

from repro.sim import AllOf, AnyOf, Simulator
from repro.sim.events import Event


def test_all_of_failure_propagates():
    sim = Simulator()
    gate = sim.event()

    def waiter():
        try:
            yield sim.all_of([sim.timeout(5), gate])
        except ValueError as exc:
            return f"failed: {exc}"

    def failer():
        yield sim.timeout(2)
        gate.fail(ValueError("broken"))

    w = sim.process(waiter())
    sim.process(failer())
    sim.run()
    assert w.value == "failed: broken"


def test_any_of_failure_propagates():
    sim = Simulator()
    gate = sim.event()

    def waiter():
        try:
            yield sim.any_of([sim.timeout(50), gate])
        except KeyError:
            return "caught"

    def failer():
        yield sim.timeout(2)
        gate.fail(KeyError("x"))

    w = sim.process(waiter())
    sim.process(failer())
    sim.run()
    assert w.value == "caught"


def test_condition_rejects_foreign_events():
    sim_a, sim_b = Simulator(), Simulator()
    with pytest.raises(ValueError):
        AllOf(sim_a, [sim_a.event(), sim_b.event()])


def test_all_of_with_already_processed_event():
    sim = Simulator()
    early = sim.event()
    early.succeed("early")
    sim.run()  # process it

    def waiter():
        results = yield sim.all_of([early, sim.timeout(3, value="late")])
        return sorted(str(v) for v in results.values())

    w = sim.process(waiter())
    sim.run()
    assert w.value == ["early", "late"]


def test_any_of_returns_only_arrived_values():
    sim = Simulator()

    def waiter():
        fast = sim.timeout(1, value="fast")
        slow = sim.timeout(100, value="slow")
        results = yield sim.any_of([fast, slow])
        return list(results.values())

    w = sim.process(waiter())
    sim.run()
    assert w.value == ["fast"]


def test_event_fail_requires_exception():
    sim = Simulator()
    with pytest.raises(TypeError):
        sim.event().fail("not an exception")


def test_unwaited_failed_event_raises_at_processing():
    sim = Simulator()
    event = sim.event()
    event.fail(RuntimeError("nobody listening"))
    with pytest.raises(RuntimeError, match="nobody listening"):
        sim.run()


def test_trigger_chains_success_and_failure():
    sim = Simulator()
    source_ok = sim.event()
    chained_ok = sim.event()
    source_ok.succeed(42)
    chained_ok.trigger(source_ok)
    assert chained_ok.triggered and chained_ok.value == 42

    source_bad = Event(sim)
    chained_bad = sim.event()
    source_bad._ok = False
    source_bad._value = ValueError("nope")
    source_bad._state = 1  # triggered
    chained_bad.trigger(source_bad)
    assert not chained_bad.ok

    def waiter():
        try:
            yield chained_bad
        except ValueError:
            return "handled"

    w = sim.process(waiter())
    sim.run()
    assert w.value == "handled"


def test_interrupt_while_waiting_on_condition():
    from repro.sim import Interrupt

    sim = Simulator()

    def waiter():
        try:
            yield sim.all_of([sim.timeout(1000), sim.timeout(2000)])
        except Interrupt:
            return sim.now

    def interrupter(target):
        yield sim.timeout(7)
        target.interrupt()

    w = sim.process(waiter())
    sim.process(interrupter(w))
    sim.run()
    assert w.value == 7.0
