"""Tests for the DES engine and process model."""

import pytest

from repro.sim import Interrupt, Simulator


def test_clock_starts_at_zero():
    sim = Simulator()
    assert sim.now == 0.0


def test_clock_custom_start():
    sim = Simulator(start_time=42.0)
    assert sim.now == 42.0


def test_timeout_advances_clock():
    sim = Simulator()

    def proc():
        yield sim.timeout(5)

    sim.process(proc())
    sim.run()
    assert sim.now == 5.0


def test_process_return_value():
    sim = Simulator()

    def proc():
        yield sim.timeout(1)
        return "finished"

    p = sim.process(proc())
    sim.run()
    assert p.value == "finished"
    assert not p.is_alive


def test_run_until_stops_at_time():
    sim = Simulator()

    def proc():
        yield sim.timeout(100)

    sim.process(proc())
    sim.run(until=10)
    assert sim.now == 10.0


def test_run_until_past_raises():
    sim = Simulator(start_time=5)
    with pytest.raises(ValueError):
        sim.run(until=1)


def test_events_ordered_by_time():
    sim = Simulator()
    order = []

    def proc(delay, tag):
        yield sim.timeout(delay)
        order.append(tag)

    sim.process(proc(3, "c"))
    sim.process(proc(1, "a"))
    sim.process(proc(2, "b"))
    sim.run()
    assert order == ["a", "b", "c"]


def test_simultaneous_events_fifo():
    sim = Simulator()
    order = []

    def proc(tag):
        yield sim.timeout(1)
        order.append(tag)

    for tag in ("x", "y", "z"):
        sim.process(proc(tag))
    sim.run()
    assert order == ["x", "y", "z"]


def test_process_waits_for_process():
    sim = Simulator()

    def child():
        yield sim.timeout(7)
        return 99

    def parent():
        value = yield sim.process(child())
        return value

    p = sim.process(parent())
    sim.run()
    assert p.value == 99
    assert sim.now == 7.0


def test_zero_delay_timeout():
    sim = Simulator()

    def proc():
        yield sim.timeout(0)
        return sim.now

    p = sim.process(proc())
    sim.run()
    assert p.value == 0.0


def test_negative_delay_rejected():
    sim = Simulator()
    with pytest.raises(ValueError):
        sim.timeout(-1)


def test_nested_processes_chain():
    sim = Simulator()

    def level(n):
        if n == 0:
            yield sim.timeout(1)
            return 0
        value = yield sim.process(level(n - 1))
        return value + 1

    p = sim.process(level(10))
    sim.run()
    assert p.value == 10
    assert sim.now == 1.0


def test_process_exception_propagates_to_waiter():
    sim = Simulator()

    def bad():
        yield sim.timeout(1)
        raise ValueError("boom")

    def parent():
        try:
            yield sim.process(bad())
        except ValueError as exc:
            return f"caught {exc}"

    p = sim.process(parent())
    sim.run()
    assert p.value == "caught boom"


def test_unhandled_process_exception_raises_from_run():
    sim = Simulator()

    def bad():
        yield sim.timeout(1)
        raise RuntimeError("unhandled")

    sim.process(bad())
    with pytest.raises(RuntimeError, match="unhandled"):
        sim.run()


def test_interrupt_delivers_cause():
    sim = Simulator()

    def sleeper():
        try:
            yield sim.timeout(100)
        except Interrupt as interrupt:
            return ("interrupted", interrupt.cause, sim.now)

    def interrupter(target):
        yield sim.timeout(5)
        target.interrupt(cause="wakeup")

    victim = sim.process(sleeper())
    sim.process(interrupter(victim))
    sim.run()
    assert victim.value == ("interrupted", "wakeup", 5.0)


def test_interrupt_finished_process_raises():
    sim = Simulator()

    def quick():
        yield sim.timeout(1)

    p = sim.process(quick())
    sim.run()
    with pytest.raises(RuntimeError):
        p.interrupt()


def test_interrupted_process_can_continue():
    sim = Simulator()

    def sleeper():
        try:
            yield sim.timeout(100)
        except Interrupt:
            pass
        yield sim.timeout(10)
        return sim.now

    def interrupter(target):
        yield sim.timeout(5)
        target.interrupt()

    victim = sim.process(sleeper())
    sim.process(interrupter(victim))
    sim.run()
    assert victim.value == 15.0


def test_yield_non_event_fails_process():
    sim = Simulator()

    def bad():
        yield 42

    def parent():
        try:
            yield sim.process(bad())
        except RuntimeError:
            return "rejected"

    p = sim.process(parent())
    sim.run()
    assert p.value == "rejected"


def test_run_process_convenience():
    sim = Simulator()

    def proc():
        yield sim.timeout(3)
        return "ok"

    assert sim.run_process(proc()) == "ok"
    assert sim.now == 3.0


def test_peek_reports_next_event_time():
    sim = Simulator()

    def proc():
        yield sim.timeout(4)

    sim.process(proc())
    sim.step()  # bootstrap event at t=0
    assert sim.peek() == 4.0


def test_many_processes_complete():
    sim = Simulator()
    done = []

    def proc(i):
        yield sim.timeout(i % 17)
        done.append(i)

    for i in range(500):
        sim.process(proc(i))
    sim.run()
    assert len(done) == 500


def test_event_succeed_wakes_waiter():
    sim = Simulator()
    gate = sim.event()

    def waiter():
        value = yield gate
        return (value, sim.now)

    def opener():
        yield sim.timeout(9)
        gate.succeed("open")

    w = sim.process(waiter())
    sim.process(opener())
    sim.run()
    assert w.value == ("open", 9.0)


def test_event_double_trigger_rejected():
    sim = Simulator()
    event = sim.event()
    event.succeed(1)
    with pytest.raises(RuntimeError):
        event.succeed(2)


def test_event_fail_raises_in_waiter():
    sim = Simulator()
    gate = sim.event()

    def waiter():
        try:
            yield gate
        except KeyError:
            return "failed as expected"

    def failer():
        yield sim.timeout(1)
        gate.fail(KeyError("nope"))

    w = sim.process(waiter())
    sim.process(failer())
    sim.run()
    assert w.value == "failed as expected"


def test_yield_already_processed_event_continues_immediately():
    sim = Simulator()
    gate = sim.event()
    gate.succeed("early")

    def late_waiter():
        yield sim.timeout(5)
        value = yield gate  # processed long ago
        return (value, sim.now)

    w = sim.process(late_waiter())
    sim.run()
    assert w.value == ("early", 5.0)


def test_all_of_waits_for_all():
    sim = Simulator()

    def proc():
        t1 = sim.timeout(3, value="a")
        t2 = sim.timeout(7, value="b")
        results = yield sim.all_of([t1, t2])
        return (sorted(results.values()), sim.now)

    p = sim.process(proc())
    sim.run()
    assert p.value == (["a", "b"], 7.0)


def test_any_of_returns_on_first():
    sim = Simulator()

    def proc():
        t1 = sim.timeout(3, value="fast")
        t2 = sim.timeout(7, value="slow")
        results = yield sim.any_of([t1, t2])
        return (list(results.values()), sim.now)

    p = sim.process(proc())
    sim.run()
    assert p.value == (["fast"], 3.0)


def test_all_of_empty_is_immediate():
    sim = Simulator()

    def proc():
        results = yield sim.all_of([])
        return results

    p = sim.process(proc())
    sim.run()
    assert p.value == {}


def test_internal_schedule_rejects_negative_delay():
    # Timeout and schedule_call validate their own delays; the internal
    # _schedule must also refuse, so no code path can move an event into
    # the past and break clock monotonicity.
    sim = Simulator()
    with pytest.raises(ValueError, match="negative delay"):
        sim._schedule(sim.event(), -0.5, 1)
    with pytest.raises(ValueError, match="negative delay"):
        sim.timeout(-1)
    with pytest.raises(ValueError, match="negative delay"):
        sim.schedule_call(-2.0, lambda: None)
