"""Tests for statistics collectors."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.sim.monitor import (
    Histogram,
    RateMeter,
    TallyStat,
    TimeWeightedStat,
    batch_means_ci,
)


def test_tally_empty_is_nan():
    t = TallyStat()
    assert math.isnan(t.mean)
    assert t.count == 0


def test_tally_basic_moments():
    t = TallyStat()
    for v in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]:
        t.add(v)
    assert t.count == 8
    assert t.mean == pytest.approx(5.0)
    assert t.variance == pytest.approx(32.0 / 7.0)
    assert t.minimum == 2.0
    assert t.maximum == 9.0


@given(st.lists(st.floats(min_value=-1e6, max_value=1e6), min_size=2, max_size=200))
def test_tally_matches_direct_computation(values):
    t = TallyStat()
    for v in values:
        t.add(v)
    mean = sum(values) / len(values)
    var = sum((v - mean) ** 2 for v in values) / (len(values) - 1)
    assert t.mean == pytest.approx(mean, rel=1e-9, abs=1e-6)
    assert t.variance == pytest.approx(var, rel=1e-6, abs=1e-6)


@given(
    st.lists(st.floats(min_value=-1e6, max_value=1e6), min_size=1, max_size=50),
    st.lists(st.floats(min_value=-1e6, max_value=1e6), min_size=1, max_size=50),
)
def test_tally_merge_equals_combined(a, b):
    combined = TallyStat()
    for v in a + b:
        combined.add(v)
    ta, tb = TallyStat(), TallyStat()
    for v in a:
        ta.add(v)
    for v in b:
        tb.add(v)
    ta.merge(tb)
    assert ta.count == combined.count
    assert ta.mean == pytest.approx(combined.mean, rel=1e-9, abs=1e-6)
    if ta.count >= 2:
        assert ta.variance == pytest.approx(combined.variance, rel=1e-6, abs=1e-6)


def test_tally_merge_into_empty():
    a, b = TallyStat(), TallyStat()
    b.add(3.0)
    b.add(5.0)
    a.merge(b)
    assert a.count == 2
    assert a.mean == 4.0


def test_time_weighted_mean():
    tw = TimeWeightedStat(now=0.0, value=0.0)
    tw.update(10.0, 5.0)   # value 0 during [0,10)
    tw.update(20.0, 0.0)   # value 5 during [10,20)
    assert tw.mean(now=20.0) == pytest.approx(2.5)


def test_time_weighted_add_delta():
    tw = TimeWeightedStat(now=0.0, value=1.0)
    tw.add(5.0, +2.0)
    assert tw.value == 3.0
    assert tw.mean(now=10.0) == pytest.approx((1 * 5 + 3 * 5) / 10)


def test_time_weighted_backwards_time_raises():
    tw = TimeWeightedStat(now=5.0)
    with pytest.raises(ValueError):
        tw.update(4.0, 1.0)


def test_rate_meter():
    m = RateMeter(start=0.0)
    m.add(100)
    m.add(300)
    assert m.total == 400
    assert m.events == 2
    assert m.rate(now=8.0) == pytest.approx(50.0)


def test_rate_meter_reset_discards_warmup():
    m = RateMeter(start=0.0)
    m.add(1000)
    m.reset(now=10.0)
    m.add(50)
    assert m.rate(now=20.0) == pytest.approx(5.0)


def test_rate_meter_zero_window_nan():
    m = RateMeter(start=3.0)
    assert math.isnan(m.rate(now=3.0))


def test_histogram_binning():
    h = Histogram(0.0, 10.0, bins=10)
    for v in [0.5, 1.5, 1.6, 9.9]:
        h.add(v)
    h.add(-1.0)   # underflow
    h.add(10.0)   # overflow boundary
    assert h.counts[0] == 1
    assert h.counts[1] == 1
    assert h.counts[2] == 2
    assert h.counts[10] == 1
    assert h.counts[-1] == 1
    assert h.total == 6


def test_histogram_quantile_monotone():
    h = Histogram(0.0, 100.0, bins=100)
    for v in range(100):
        h.add(v + 0.5)
    q50 = h.quantile(0.5)
    q90 = h.quantile(0.9)
    assert 45 <= q50 <= 55
    assert 85 <= q90 <= 95
    assert q50 <= q90


def test_histogram_invalid_bounds():
    with pytest.raises(ValueError):
        Histogram(5.0, 5.0, bins=10)
    with pytest.raises(ValueError):
        Histogram(0.0, 1.0, bins=0)


def test_batch_means_ci_constant_series():
    result = batch_means_ci([5.0] * 100, batches=10)
    assert result["mean"] == 5.0
    assert result["half_width"] == pytest.approx(0.0)


def test_batch_means_ci_empty():
    result = batch_means_ci([])
    assert math.isnan(result["mean"])


def test_batch_means_ci_covers_true_mean():
    import random

    rng = random.Random(7)
    samples = [rng.gauss(10.0, 2.0) for _ in range(2000)]
    result = batch_means_ci(samples, batches=20)
    assert abs(result["mean"] - 10.0) < 3 * result["half_width"] + 0.5


def test_batch_means_ci_folds_remainder_into_last_batch():
    # 11 samples, 2 batches: size 5, remainder 1.  The tail sample (the
    # only non-zero one) must contribute -- dropping it would report 0.
    samples = [0.0] * 10 + [100.0]
    result = batch_means_ci(samples, batches=2)
    assert result["batches"] == 2
    # batch means: [0]*5 -> 0, [0]*5+[100] -> 100/6; grand mean 100/12
    assert result["mean"] == pytest.approx(100.0 / 12.0)


def test_batch_means_ci_uses_every_sample():
    samples = list(range(103))  # 103 % 10 == 3 remainder samples
    result = batch_means_ci(samples, batches=10)
    assert result["batches"] == 10
    # Remainder folds into the final batch: batches 0-8 are size 10, the
    # last is size 13, so the grand mean is the mean of those batch means.
    means = [sum(samples[b * 10 : b * 10 + 10]) / 10 for b in range(9)]
    means.append(sum(samples[90:]) / 13)
    assert result["mean"] == pytest.approx(sum(means) / 10)


def test_histogram_edge_rounding_stays_in_range():
    # (value - low) / width can round *up* to bins exactly at a bin edge:
    # nextafter(3.3, 0) / (3.3 / 3) computes to 3.0 in floats even though
    # the value is strictly below high.  It must land in the last real
    # bin, not the overflow tail.
    h = Histogram(0.0, 3.3, bins=3)
    v = math.nextafter(3.3, 0.0)
    assert v < h.high
    h.add(v)
    assert h.counts[-1] == 0, "in-range value misclassified as overflow"
    assert h.counts[h.bins] == 1
    assert h.total == 1


@given(
    st.floats(min_value=0.125, max_value=1000.0),
    st.integers(min_value=1, max_value=64),
    st.floats(min_value=0.0, max_value=1.0, exclude_max=True),
)
def test_histogram_in_range_never_overflows(high, bins, fraction):
    h = Histogram(0.0, high, bins=bins)
    value = min(fraction * high, math.nextafter(high, 0.0))
    h.add(value)
    assert h.counts[0] == 0
    assert h.counts[-1] == 0


def test_time_weighted_reset_discards_warmup_window():
    s = TimeWeightedStat(now=0.0, value=2.0)
    s.update(10.0, 4.0)  # warm-up: 2.0 over [0, 10)
    s.reset(now=10.0)
    # The signal value persists across the reset...
    assert s.value == 4.0
    # ...but the mean covers only the post-reset window.
    s.update(20.0, 0.0)
    assert s.mean(20.0) == pytest.approx(4.0)  # 4.0 over [10, 20)
    assert s.mean(30.0) == pytest.approx(2.0)  # + 0.0 over [20, 30)


def test_time_weighted_reset_rejects_time_travel():
    s = TimeWeightedStat(now=0.0, value=1.0)
    s.update(5.0, 2.0)
    with pytest.raises(ValueError):
        s.reset(now=4.0)


def test_time_weighted_mean_nan_immediately_after_reset():
    s = TimeWeightedStat(now=0.0, value=1.0)
    s.update(5.0, 3.0)
    s.reset(now=5.0)
    assert math.isnan(s.mean(5.0))
