"""Window-bounded kernel runs (``Simulator.run_window``)."""

import pytest

from repro.sim.engine import Simulator


def test_run_window_processes_due_events_and_lands_on_edge():
    sim = Simulator()
    fired = []
    for t in (1, 3, 5, 7):
        sim.schedule_call(t, lambda t=t: fired.append(t))
    assert sim.run_window(5) == 3
    assert fired == [1, 3, 5]
    assert sim.now == 5.0
    assert sim.run_window(10) == 1
    assert fired == [1, 3, 5, 7]
    assert sim.now == 10.0


def test_run_window_empty_window_still_advances_clock():
    sim = Simulator()
    assert sim.run_window(42) == 0
    assert sim.now == 42.0


def test_run_window_rejects_past_edge():
    sim = Simulator()
    sim.run_window(10)
    with pytest.raises(ValueError, match="past"):
        sim.run_window(5)


def test_run_window_inclusive_edge_matches_run():
    # An event exactly on the window edge belongs to the window -- the
    # same boundary convention as run(until).
    sim = Simulator()
    fired = []
    sim.schedule_call(5, lambda: fired.append("edge"))
    assert sim.run_window(5) == 1
    assert fired == ["edge"]


def test_run_window_on_packed_engine():
    sim = Simulator(engine="packed")
    fired = []
    for t in (2, 4, 9):
        sim.schedule_call(t, lambda t=t: fired.append(t))
    assert sim.run_window(4) == 2
    assert sim.now == 4.0
    assert sim.run_window(20) == 1
    assert fired == [2, 4, 9]


def test_run_window_counts_cascades():
    # Events scheduled inside the window by other events run in the same
    # window and are counted.
    sim = Simulator()
    fired = []

    def first():
        fired.append("first")
        sim.schedule_call(1, lambda: fired.append("second"))

    sim.schedule_call(1, first)
    assert sim.run_window(3) == 2
    assert fired == ["first", "second"]
