"""Tests for reproducible random streams."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.sim import RandomStreams


def test_same_seed_same_sequence():
    a = RandomStreams(seed=5).stream("traffic")
    b = RandomStreams(seed=5).stream("traffic")
    assert [a.random() for _ in range(20)] == [b.random() for _ in range(20)]


def test_different_names_independent():
    streams = RandomStreams(seed=5)
    a = streams.stream("traffic")
    b = streams.stream("lengths")
    assert [a.random() for _ in range(5)] != [b.random() for _ in range(5)]


def test_stream_cached():
    streams = RandomStreams(seed=1)
    assert streams.stream("x") is streams.stream("x")
    assert streams["x"] is streams.stream("x")


def test_different_seeds_differ():
    a = RandomStreams(seed=1).stream("s")
    b = RandomStreams(seed=2).stream("s")
    assert [a.random() for _ in range(5)] != [b.random() for _ in range(5)]


def test_exponential_mean():
    s = RandomStreams(seed=3).stream("exp")
    n = 20000
    mean = sum(s.exponential(400.0) for _ in range(n)) / n
    assert mean == pytest.approx(400.0, rel=0.05)


def test_exponential_invalid_mean():
    s = RandomStreams(seed=3).stream("exp")
    with pytest.raises(ValueError):
        s.exponential(0.0)


def test_geometric_mean_and_support():
    s = RandomStreams(seed=4).stream("geo")
    n = 20000
    values = [s.geometric(400.0, minimum=8) for _ in range(n)]
    assert min(values) >= 8
    assert sum(values) / n == pytest.approx(400.0, rel=0.05)


def test_geometric_invalid_mean():
    s = RandomStreams(seed=4).stream("geo")
    with pytest.raises(ValueError):
        s.geometric(5.0, minimum=5)


@given(st.floats(min_value=0.0, max_value=1.0))
def test_bernoulli_bounds(p):
    s = RandomStreams(seed=9).stream("b")
    assert s.bernoulli(p) in (True, False)


def test_bernoulli_invalid_p():
    s = RandomStreams(seed=9).stream("b")
    with pytest.raises(ValueError):
        s.bernoulli(1.5)


def test_bernoulli_frequency():
    s = RandomStreams(seed=10).stream("b")
    n = 20000
    hits = sum(1 for _ in range(n) if s.bernoulli(0.1))
    assert hits / n == pytest.approx(0.1, abs=0.01)


def test_sample_and_choice():
    s = RandomStreams(seed=11).stream("c")
    population = list(range(100))
    picked = s.sample(population, 10)
    assert len(set(picked)) == 10
    assert all(p in population for p in picked)
    assert s.choice(population) in population


def test_randint_inclusive():
    s = RandomStreams(seed=12).stream("r")
    values = {s.randint(3, 5) for _ in range(200)}
    assert values == {3, 4, 5}


def test_geometric_survives_unit_uniform_draw():
    """random() may return exactly 1.0 from a swapped-in generator; the
    clamp must keep geometric() finite instead of passing log(0.0)."""
    stream = RandomStreams(seed=1).stream("g")

    class UnitRandom:
        def random(self):
            return 1.0

    stream._rng = UnitRandom()
    value = stream.geometric(400.0, minimum=1)
    assert value >= 1
    assert value < 10**9  # finite, not math-domain-error territory


def test_geometric_clamp_does_not_alter_genuine_draws():
    a = RandomStreams(seed=8).stream("g")
    b = RandomStreams(seed=8).stream("g")
    assert [a.geometric(300.0) for _ in range(200)] == [
        b.geometric(300.0) for _ in range(200)
    ]
