"""End-to-end acceptance tests for the stress search driver.

These pin the headline guarantees from the stress subsystem:

* a bounded search finds the seeded detection-window violation;
* delta-debugging shrinks the discovery schedule to strictly fewer
  faults, and the minimal schedule replays byte-identically;
* the report is byte-identical across two runs of the same config;
* frontier-digest pruning explores strictly fewer schedules than naive
  enumeration while finding the same violations.
"""

import pytest

from repro.obs import Observability
from repro.stress import (
    StressConfig,
    canonical_json,
    counterexample_dict,
    replay,
    run_search,
    run_search_sharded,
)
from repro.sweep.points import execute_point


WORM_SMALL = dict(
    plan=[[0, 10.0]],
    horizon=4000.0,
    kinds=["node_fail", "node_repair"],
    node_targets=[10, 11],
)


def test_search_finds_and_shrinks_seeded_violation():
    config = StressConfig(scenario="worm_recovery", depth=2, budget=120)
    report = run_search(config)

    keys = {
        (e["violation"]["invariant"], e["violation"]["subject"])
        for e in report["violations"]
    }
    assert ("delivery", "message-0") in keys

    entry = next(
        e for e in report["violations"]
        if e["violation"]["subject"] == "message-0"
        and e["violation"]["invariant"] == "delivery"
    )
    # The discovery schedule carried more faults than needed; ddmin plus
    # backward time-narrowing must strictly shrink it.
    assert entry["schedule_events"] < entry["discovery_events"]
    assert entry["schedule_events"] == 1
    assert report["shrink_runs"] > 0


def test_minimal_counterexample_replays_byte_identically():
    config = StressConfig(scenario="worm_recovery", depth=2, budget=120)
    report = run_search(config)
    entry = next(
        e for e in report["violations"]
        if e["violation"]["invariant"] == "delivery"
    )
    cex = counterexample_dict(
        config.scenario, report["scenario_params"], entry
    )
    # Serialize/deserialize through canonical JSON (what the artifact on
    # disk goes through) before replaying.
    import json

    cex = json.loads(canonical_json(cex))
    ok, problems, outcome = replay(cex)
    assert ok, problems
    assert outcome.final_digest == entry["final_digest"]


def test_report_byte_identical_across_runs():
    config = StressConfig(
        scenario="worm_recovery", params=WORM_SMALL, depth=2, budget=60
    )
    first = run_search(config)
    second = run_search(config)
    assert canonical_json(first) == canonical_json(second)


def test_pruning_explores_fewer_states_than_naive():
    base = dict(
        scenario="worm_recovery",
        params=WORM_SMALL,
        depth=2,
        budget=100_000,
        shrink=False,
    )
    pruned = run_search(StressConfig(prune=True, **base))
    naive = run_search(StressConfig(prune=False, **base))

    assert not pruned["truncated"] and not naive["truncated"]
    assert pruned["explored"] < naive["explored"]
    assert pruned["pruned"] > 0

    def keys(report):
        return sorted(
            (e["violation"]["invariant"], e["violation"]["subject"])
            for e in report["violations"]
        )

    # Pruning is a state-equivalence heuristic: it must not lose any
    # violation class the naive enumeration finds.
    assert keys(pruned) == keys(naive)


def test_observability_counters_populated():
    obs = Observability()
    config = StressConfig(
        scenario="worm_recovery", params=WORM_SMALL, depth=2, budget=60
    )
    run_search(config, obs=obs)
    snapshot = obs.metrics.snapshot()
    by_name = {}
    for entry in snapshot["metrics"]:
        if entry["name"] in ("stress.states", "stress.violations"):
            by_name.setdefault(entry["name"], 0)
            by_name[entry["name"]] += entry["value"]
    assert by_name.get("stress.states", 0) > 0
    assert by_name.get("stress.violations", 0) > 0


def test_sharded_report_matches_single_shard_counters():
    single = run_search_sharded(
        StressConfig(
            scenario="worm_recovery", params=WORM_SMALL, depth=2, budget=60
        )
    )
    sharded = run_search_sharded(
        StressConfig(
            scenario="worm_recovery",
            params=WORM_SMALL,
            depth=2,
            budget=60,
            shard_count=2,
        )
    )
    assert sharded["shards"] == 2
    assert "shard_index" not in sharded["config"]

    def keys(report):
        return sorted(
            (e["violation"]["invariant"], e["violation"]["subject"])
            for e in report["violations"]
        )

    # Shards partition the root set; together they must cover at least
    # the single-shard violation classes found under the same budget.
    assert set(keys(single)) <= set(keys(sharded))


def test_stress_search_is_a_sweep_point_kind():
    params = dict(
        StressConfig(
            scenario="worm_recovery", params=WORM_SMALL, depth=1, budget=20
        ).to_dict(),
        seed=7,  # sweep-injected; must be ignored, not rejected
    )
    record = execute_point("stress_search", params)
    assert record["format"] == "repro.stress.report/v1"
    assert record["explored"] > 0


def test_config_validation():
    with pytest.raises(ValueError):
        StressConfig(scenario="worm_recovery", depth=0)
    with pytest.raises(ValueError):
        StressConfig(scenario="worm_recovery", order="random")
    with pytest.raises(ValueError):
        StressConfig(scenario="worm_recovery", shard_index=2, shard_count=2)
