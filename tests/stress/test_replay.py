"""Regression tests around the pinned counterexample artifact and the
replay verifier / CLI."""

import json
from pathlib import Path

import pytest

from repro.stress import (
    canonical_json,
    load_counterexample,
    replay,
    save_counterexample,
)
from repro.stress.cli import main

PINNED = Path(__file__).parent / "data" / "flit_delivery_message0.json"


def test_pinned_counterexample_replays():
    # The known-good artifact: a single scheme-3 mid-worm link kill that
    # partially delivers message 0.  If a simulator change breaks this,
    # the stored digest/violation stops reproducing and this test fails.
    counterexample = load_counterexample(str(PINNED))
    ok, problems, outcome = replay(counterexample)
    assert ok, problems
    assert outcome.final_digest == counterexample["final_digest"]


def test_pinned_artifact_is_canonical_bytes():
    counterexample = load_counterexample(str(PINNED))
    assert PINNED.read_text() == canonical_json(counterexample) + "\n"


def test_save_load_round_trip(tmp_path):
    counterexample = load_counterexample(str(PINNED))
    path = tmp_path / "copy.json"
    save_counterexample(str(path), counterexample)
    assert load_counterexample(str(path)) == counterexample
    assert path.read_text() == PINNED.read_text()


def test_replay_detects_digest_tamper():
    counterexample = load_counterexample(str(PINNED))
    counterexample["final_digest"] = "0" * 16
    ok, problems, _ = replay(counterexample)
    assert not ok
    assert any("digest" in p for p in problems)


def test_replay_detects_wrong_violation():
    counterexample = load_counterexample(str(PINNED))
    counterexample["violation"]["subject"] = "message-99"
    ok, problems, _ = replay(counterexample)
    assert not ok
    assert any("did not recur" in p for p in problems)


def test_load_rejects_foreign_format(tmp_path):
    path = tmp_path / "bad.json"
    path.write_text(json.dumps({"format": "something/else"}))
    with pytest.raises(ValueError, match="not a stress counterexample"):
        load_counterexample(str(path))


def test_cli_replay_exit_codes(tmp_path, capsys):
    assert main(["replay", str(PINNED), "--quiet"]) == 0
    out = capsys.readouterr().out
    assert "ok" in out

    tampered = load_counterexample(str(PINNED))
    tampered["final_digest"] = "0" * 16
    bad = tmp_path / "tampered.json"
    save_counterexample(str(bad), tampered)
    assert main(["replay", str(bad), "--quiet"]) == 1


def test_cli_scenarios_lists_both(capsys):
    assert main(["scenarios"]) == 0
    out = capsys.readouterr().out
    assert "flit_multicast" in out
    assert "worm_recovery" in out
