"""Scenario-layer tests: deterministic execution, clean baselines,
parameter validation, and the invariant oracles."""

import pytest

from repro.faults import FaultEvent, FaultSchedule
from repro.stress import build_scenario, canonical_json
from repro.stress.scenarios import SCENARIOS


@pytest.mark.parametrize("name", sorted(SCENARIOS))
def test_baseline_is_clean(name):
    scenario = build_scenario(name)
    probe = scenario.probe()
    assert not probe.baseline.violations
    assert probe.anchors, "scenario must derive at least one anchor"
    assert probe.candidates, "scenario must derive at least one candidate"


@pytest.mark.parametrize("name", sorted(SCENARIOS))
def test_execution_is_deterministic_across_instances(name):
    first = build_scenario(name)
    schedule = FaultSchedule(
        [FaultEvent(first.probe().anchors[0], first.params["kinds"][0],
                    first.probe().candidates[0].target)]
    )
    a = first.execute(schedule)
    second = build_scenario(name)
    b = second.execute(schedule)
    assert a.frontier_digest == b.frontier_digest
    assert a.final_digest == b.final_digest
    assert canonical_json([v.to_dict() for v in a.violations]) == \
        canonical_json([v.to_dict() for v in b.violations])
    assert a.trace == b.trace


def test_unknown_param_rejected():
    with pytest.raises(ValueError, match="unknown parameters"):
        build_scenario("flit_multicast", {"bogus_knob": 1})


def test_unsupported_kind_rejected():
    with pytest.raises(ValueError, match="does not support fault kind"):
        build_scenario("flit_multicast", {"kinds": ["node_fail"]})


def test_unknown_scenario_rejected():
    with pytest.raises(ValueError):
        build_scenario("no_such_scenario")


def test_worm_detection_window_fault_breaks_delivery():
    # The seeded vulnerability: killing a forwarding member inside the
    # detection window (before the recovery manager reconfigures) strands
    # every downstream member of the hamiltonian circuit.
    scenario = build_scenario("worm_recovery")
    outcome = scenario.execute(
        FaultSchedule([FaultEvent(11.0, "node_fail", 10)])
    )
    keys = {v.key() for v in outcome.violations}
    assert ("delivery", "message-0") in keys


def test_worm_sender_on_dead_host_is_skipped_not_charged():
    scenario = build_scenario("worm_recovery")
    plan = scenario.params["plan"]
    # Kill the second sender's host well before its send time; the
    # delivery oracle must record a skip, not a violation.
    sender_index, start = plan[1]
    host = scenario._build_topology().hosts[sender_index]
    outcome = scenario.execute(
        FaultSchedule([FaultEvent(start - 500.0, "node_fail", host)])
    )
    assert outcome.final_state["messages"][1]["skipped"]
    subjects = {v.subject for v in outcome.violations
                if v.invariant == "delivery"}
    assert "message-1" not in subjects


def test_flit_scheme3_mid_worm_link_kill_loses_tail():
    # Scheme 3's known exposure: a link dying under an in-flight worm
    # kills it instantly; hosts past the break never see the message.
    scenario = build_scenario("flit_multicast")
    outcome = scenario.execute(
        FaultSchedule([FaultEvent(10.0, "link_fail", 0)])
    )
    keys = {v.key() for v in outcome.violations}
    assert ("delivery", "message-0") in keys
    message = outcome.final_state["messages"][0]
    # Partial delivery: some hosts got the worm before the break, the
    # rest never will.
    assert message["sent"] and not message["unroutable"]
    assert 0 < len(message["delivered"]) < 2 or message["lost"]


def test_flit_repair_without_prior_fault_is_harmless():
    scenario = build_scenario("flit_multicast")
    outcome = scenario.execute(
        FaultSchedule([FaultEvent(10.0, "link_repair", 0)])
    )
    assert not outcome.violations
    assert outcome.final_digest == scenario.probe().baseline.final_digest


def test_frontier_digest_excludes_quiescent_tail():
    # The frontier digest is captured at the last event's instant, the
    # final digest after quiescence; a disruptive fault makes them differ
    # from the baseline's.
    scenario = build_scenario("worm_recovery")
    outcome = scenario.execute(
        FaultSchedule([FaultEvent(11.0, "node_fail", 10)])
    )
    baseline = scenario.probe().baseline
    assert outcome.frontier_digest != baseline.frontier_digest
    assert outcome.final_digest != baseline.final_digest
