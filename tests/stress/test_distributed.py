"""Distributed stress search: the serve pool as a model checker.

Acceptance property: the merged report from shards fanned across a
:mod:`repro.serve` worker pool is byte-identical to the same config run
sharded in process.
"""

import pytest

from repro.serve import ServeClient, ServeConfig, ServerThread
from repro.stress import StressConfig, canonical_json, run_search_sharded
from repro.stress.distributed import run_search_distributed

CONFIG = StressConfig(
    scenario="worm_recovery",
    params=dict(
        plan=[[0, 10.0]],
        horizon=4000.0,
        kinds=["node_fail", "node_repair"],
        node_targets=[10, 11, 12],
    ),
    depth=2,
    budget=40,
    shard_count=3,
)


@pytest.fixture(scope="module")
def server():
    with ServerThread(ServeConfig(workers=2, job_timeout=120.0)) as thread:
        yield thread


@pytest.fixture()
def client(server):
    c = ServeClient(server.host, server.port)
    yield c
    c.close()


def test_distributed_report_byte_identical_to_in_process(client):
    local = run_search_sharded(CONFIG)
    remote = run_search_distributed(CONFIG, client, timeout=120.0)
    assert canonical_json(remote) == canonical_json(local)
    assert remote["shards"] == 3
    assert remote["violations"], "seeded violation must survive sharding"
