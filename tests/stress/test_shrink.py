"""Unit tests for ddmin delta-debugging and backward time-narrowing."""

from repro.faults import FaultEvent
from repro.stress.shrink import ddmin, narrow_times


def _events(n, kind="link_fail"):
    return [FaultEvent(float(t + 1), kind, t) for t in range(n)]


def test_ddmin_isolates_single_culprit():
    events = _events(8)
    culprit = events[5]

    def reproduces(subset):
        return culprit in subset

    minimal, runs = ddmin(events, reproduces)
    assert minimal == [culprit]
    assert runs > 0


def test_ddmin_keeps_interacting_pair():
    events = _events(6)
    pair = {events[1], events[4]}

    def reproduces(subset):
        return pair <= set(subset)

    minimal, _ = ddmin(events, reproduces)
    assert set(minimal) == pair


def test_ddmin_result_is_one_minimal():
    events = _events(5)
    need = {events[0], events[2], events[3]}

    def reproduces(subset):
        return need <= set(subset)

    minimal, _ = ddmin(events, reproduces)
    # 1-minimality: removing any single event breaks reproduction.
    for event in minimal:
        rest = [e for e in minimal if e != event]
        assert not reproduces(rest)


def test_ddmin_is_deterministic():
    events = _events(7, kind="worm_drop")

    def reproduces(subset):
        return len(subset) >= 2 and subset[0].target == 0

    first, _ = ddmin(events, reproduces)
    second, _ = ddmin(events, reproduces)
    assert first == second


def test_narrow_times_moves_event_to_earliest_anchor():
    anchors = [5.0, 10.0, 20.0, 40.0]
    events = [FaultEvent(40.0, "node_fail", 3)]

    def reproduces(subset):
        # Reproduces whenever the fault lands at t >= 10.
        return all(ev.time >= 10.0 for ev in subset)

    narrowed, runs = narrow_times(events, anchors, reproduces)
    assert narrowed == [FaultEvent(10.0, "node_fail", 3)]
    assert runs > 0


def test_narrow_times_keeps_time_when_no_earlier_anchor_works():
    anchors = [5.0, 10.0]
    events = [FaultEvent(10.0, "node_fail", 3)]

    def reproduces(subset):
        return list(subset) == events

    narrowed, _ = narrow_times(events, anchors, reproduces)
    assert narrowed == events


def test_narrow_times_preserves_kind_target_param():
    anchors = [2.0, 30.0]
    events = [FaultEvent(30.0, "worm_drop", 4, param=3)]

    def reproduces(subset):
        return True

    narrowed, _ = narrow_times(events, anchors, reproduces)
    assert narrowed == [FaultEvent(2.0, "worm_drop", 4, param=3)]
