"""Tests for topology construction and the paper's test networks."""

import pytest

from repro.net import (
    Topology,
    bidirectional_shufflenet,
    line,
    mesh,
    myrinet_testbed,
    random_irregular,
    ring,
    star,
    torus,
)
from repro.net.topology import fig3_topology


def test_add_switch_and_host():
    topo = Topology()
    s = topo.add_switch()
    h = topo.add_host(s)
    assert topo.node(s).is_switch
    assert topo.node(h).is_host
    assert topo.host_switch(h) == s
    assert len(topo.links) == 1


def test_host_cannot_attach_to_host():
    topo = Topology()
    s = topo.add_switch()
    h = topo.add_host(s)
    with pytest.raises(ValueError):
        topo.add_host(h)


def test_link_joins_switches_only():
    topo = Topology()
    s = topo.add_switch()
    h = topo.add_host(s)
    s2 = topo.add_switch()
    with pytest.raises(ValueError):
        topo.add_link(s, h)
    with pytest.raises(ValueError):
        topo.add_link(s2, s2)


def test_link_other_endpoint():
    topo = Topology()
    a, b = topo.add_switch(), topo.add_switch()
    link = topo.add_link(a, b)
    assert link.other(a) == b
    assert link.other(b) == a
    with pytest.raises(ValueError):
        link.other(99)


def test_neighbors_and_adjacency():
    topo = Topology()
    a, b, c = (topo.add_switch() for _ in range(3))
    topo.add_link(a, b)
    topo.add_link(a, c)
    peers = {peer for peer, _ in topo.neighbors(a)}
    assert peers == {b, c}
    assert len(topo.adjacent(a)) == 2


def test_hosts_sorted_by_id():
    topo = Topology()
    s = topo.add_switch()
    ids = [topo.add_host(s) for _ in range(5)]
    assert topo.hosts == sorted(ids)


def test_host_switch_rejects_switch():
    topo = Topology()
    s = topo.add_switch()
    with pytest.raises(ValueError):
        topo.host_switch(s)


def test_unknown_node_raises():
    topo = Topology()
    with pytest.raises(KeyError):
        topo.node(0)


def test_torus_8x8_shape():
    topo = torus(8, 8)
    assert len(topo.switches) == 64
    assert len(topo.hosts) == 64
    # 2 * 64 switch links (wraparound torus has 2N links) + 64 host links
    switch_links = [
        l
        for l in topo.links
        if topo.node(l.a).is_switch and topo.node(l.b).is_switch
    ]
    assert len(switch_links) == 128
    assert topo.is_connected()


def test_torus_degree_four():
    topo = torus(4, 4)
    for s in topo.switches:
        switch_neighbors = [
            peer for peer, _ in topo.neighbors(s) if topo.node(peer).is_switch
        ]
        assert len(switch_neighbors) == 4


def test_torus_2x2_no_duplicate_link_crash():
    topo = torus(2, 2)
    assert topo.is_connected()


def test_torus_invalid_dims():
    with pytest.raises(ValueError):
        torus(1, 8)


def test_mesh_no_wraparound():
    topo = mesh(3, 3)
    corner = topo.switches[0]
    switch_neighbors = [
        peer for peer, _ in topo.neighbors(corner) if topo.node(peer).is_switch
    ]
    assert len(switch_neighbors) == 2


def test_shufflenet_24_nodes():
    topo = bidirectional_shufflenet(p=2, k=3)
    assert len(topo.switches) == 24
    assert len(topo.hosts) == 24
    assert topo.is_connected()


def test_shufflenet_propagation_delay():
    topo = bidirectional_shufflenet(p=2, k=3, prop_delay=1000.0)
    switch_links = [
        l
        for l in topo.links
        if topo.node(l.a).is_switch and topo.node(l.b).is_switch
    ]
    assert all(l.prop_delay == 1000.0 for l in switch_links)


def test_shufflenet_invalid_params():
    with pytest.raises(ValueError):
        bidirectional_shufflenet(p=1, k=3)


def test_line_ring_star():
    assert len(line(5).switches) == 5
    assert len(ring(6).links) == 6 + 6  # ring links + host links
    topo = star(4)
    assert len(topo.switches) == 5
    assert topo.is_connected()


def test_ring_too_small():
    with pytest.raises(ValueError):
        ring(2)


def test_myrinet_testbed_shape():
    topo = myrinet_testbed()
    assert len(topo.switches) == 4
    assert len(topo.hosts) == 8
    assert topo.is_connected()
    # hosts spread evenly: two per switch
    per_switch = {}
    for h in topo.hosts:
        per_switch[topo.host_switch(h)] = per_switch.get(topo.host_switch(h), 0) + 1
    assert all(count == 2 for count in per_switch.values())


def test_random_irregular_connected_and_sized():
    topo = random_irregular(10, extra_links=3, seed=42)
    assert topo.is_connected()
    switch_links = [
        l
        for l in topo.links
        if topo.node(l.a).is_switch and topo.node(l.b).is_switch
    ]
    assert len(switch_links) == 9 + 3


def test_random_irregular_deterministic():
    a = random_irregular(8, extra_links=2, seed=7)
    b = random_irregular(8, extra_links=2, seed=7)
    assert [l.ends for l in a.links] == [l.ends for l in b.links]


def test_fig3_topology_has_crosslink():
    topo = fig3_topology()
    assert len(topo.switches) == 5
    assert len(topo.hosts) == 5
    assert topo.is_connected()


def test_disconnected_graph_detected():
    topo = Topology()
    topo.add_switch()
    topo.add_switch()
    assert not topo.is_connected()
