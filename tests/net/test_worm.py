"""Tests for worm records."""

import pytest

from repro.net import Worm, WormKind
from repro.net.worm import MAX_WORM_BYTES


def test_worm_defaults():
    worm = Worm(source=1, dest=2, length=400)
    assert worm.kind == WormKind.UNICAST
    assert worm.origin == 1
    assert worm.group is None
    assert not worm.wrapped


def test_worm_ids_unique():
    a = Worm(source=1, dest=2, length=10)
    b = Worm(source=1, dest=2, length=10)
    assert a.wid != b.wid


def test_worm_length_validation():
    with pytest.raises(ValueError):
        Worm(source=1, dest=2, length=0)
    with pytest.raises(ValueError):
        Worm(source=1, dest=2, length=MAX_WORM_BYTES + 1)


def test_worm_max_length_allowed():
    Worm(source=1, dest=2, length=MAX_WORM_BYTES)


def test_forwarded_to_preserves_message_identity():
    worm = Worm(
        source=3,
        dest=5,
        length=400,
        kind=WormKind.MULTICAST,
        group=7,
        hop_count=4,
        seqno=12,
        created=100.0,
        payload="data",
    )
    nxt = worm.forwarded_to(9, hop_count=3)
    assert nxt.source == 5          # forwarding host
    assert nxt.dest == 9
    assert nxt.origin == 3
    assert nxt.group == 7
    assert nxt.hop_count == 3
    assert nxt.seqno == 12
    assert nxt.created == 100.0
    assert nxt.payload == "data"
    assert nxt.wid != worm.wid


def test_forwarded_to_wrapped_override():
    worm = Worm(source=3, dest=5, length=100, kind=WormKind.MULTICAST)
    assert not worm.wrapped
    nxt = worm.forwarded_to(1, wrapped=True)
    assert nxt.wrapped


def test_is_control():
    assert Worm(source=1, dest=2, length=8, kind=WormKind.ACK).is_control
    assert Worm(source=1, dest=2, length=8, kind=WormKind.NACK).is_control
    assert not Worm(source=1, dest=2, length=8).is_control
