"""Tests for the worm-level wormhole transfer engine."""

import pytest

from repro.net import Topology, UpDownRouting, Worm, WormholeNetwork, line, torus
from repro.sim import Simulator


def _small_net(prop_delay=0.0, switch_latency=1.0, n=3):
    sim = Simulator()
    topo = Topology()
    switches = [topo.add_switch() for _ in range(n)]
    for a, b in zip(switches, switches[1:]):
        topo.add_link(a, b, prop_delay)
    hosts = [topo.add_host(s) for s in switches]
    net = WormholeNetwork(sim, topo, switch_latency=switch_latency)
    return sim, topo, net, hosts


def test_unblocked_latency_formula():
    """Latency = hops * (switch latency + prop) + length on an idle net."""
    sim, topo, net, hosts = _small_net(prop_delay=2.0, switch_latency=1.0)
    worm = Worm(source=hosts[0], dest=hosts[2], length=100)
    transfer = net.send(worm)
    sim.run()
    # route: h0->s0->s1->s2->h2 = 4 hops; prop delay applies to the two
    # switch-to-switch links only (host links are local adapter ports).
    assert transfer.head_time == pytest.approx(4 * 1.0 + 2 * 2.0)
    assert transfer.finish_time == pytest.approx(8.0 + 100)
    assert transfer.latency == pytest.approx(108.0)
    assert transfer.blocked_time == 0.0


def test_self_send_rejected():
    sim, topo, net, hosts = _small_net()
    with pytest.raises(ValueError):
        net.send(Worm(source=hosts[0], dest=hosts[0], length=10))


def test_head_arrived_fires_before_completed():
    sim, topo, net, hosts = _small_net()
    times = {}
    worm = Worm(source=hosts[0], dest=hosts[1], length=50)
    transfer = net.send(worm)
    transfer.head_arrived.callbacks.append(lambda ev: times.setdefault("head", sim.now))
    transfer.completed.callbacks.append(lambda ev: times.setdefault("done", sim.now))
    sim.run()
    assert times["head"] < times["done"]
    assert times["done"] - times["head"] == pytest.approx(50.0)


def test_receiver_callback_invoked():
    sim, topo, net, hosts = _small_net()
    received = []
    net.set_receiver(hosts[2], lambda worm, transfer: received.append(worm))
    net.send(Worm(source=hosts[0], dest=hosts[2], length=20))
    sim.run()
    assert len(received) == 1
    assert received[0].dest == hosts[2]


def test_head_watcher_invoked_at_head_time():
    sim, topo, net, hosts = _small_net()
    seen = []
    net.set_head_watcher(hosts[2], lambda worm, transfer: seen.append(sim.now))
    transfer = net.send(Worm(source=hosts[0], dest=hosts[2], length=20))
    sim.run()
    assert seen == [transfer.head_time]


def test_second_worm_blocks_on_shared_channel():
    """Two worms sharing a channel serialize; the second records block time."""
    sim, topo, net, hosts = _small_net()
    w1 = Worm(source=hosts[0], dest=hosts[2], length=200)
    w2 = Worm(source=hosts[1], dest=hosts[2], length=200)
    t1 = net.send(w1)
    t2_holder = []

    def late_sender():
        yield sim.timeout(5)  # strictly after w1 holds the shared channel
        t2_holder.append(net.send(w2))

    sim.process(late_sender())
    sim.run()
    t2 = t2_holder[0]
    assert t1.finish_time < t2.finish_time
    assert t2.blocked_time > 0
    assert t2.blocked_hops >= 1


def test_blocked_worm_holds_acquired_path():
    """While blocked, a worm keeps the channels it holds (backpressure)."""
    sim, topo, net, hosts = _small_net(n=4)
    # Long worm from h1 occupies s1->s2->s3 region; worm from h0 must wait,
    # and while waiting it holds its own injection channel.
    w1 = Worm(source=hosts[1], dest=hosts[3], length=500)
    w2 = Worm(source=hosts[0], dest=hosts[3], length=100)
    net.send(w1)
    net.send(w2)

    def probe():
        yield sim.timeout(20)
        # w2's head is blocked inside the network; its injection channel must
        # still be busy.
        assert net.injection_channel(hosts[0]).busy

    sim.process(probe())
    sim.run()


def test_channels_released_after_transfer():
    sim, topo, net, hosts = _small_net()
    net.send(Worm(source=hosts[0], dest=hosts[2], length=50))
    sim.run()
    assert all(not ch.busy for ch in net.channels)


def test_progressive_release_short_worm_long_links():
    """With 1000-byte-time links and a 100-byte worm, upstream channels free
    long before the tail reaches the destination (Figure 11 regime)."""
    sim, topo, net, hosts = _small_net(prop_delay=1000.0, n=4)
    transfer = net.send(Worm(source=hosts[0], dest=hosts[3], length=100))
    release_times = {}

    def watch():
        injection = net.injection_channel(hosts[0])
        while injection.busy or sim.now == 0:
            yield sim.timeout(10)
        release_times["injection"] = sim.now

    sim.process(watch())
    sim.run()
    # Head: 5 hops * 1 switch latency + 3 switch links * 1000 prop = 3005;
    # completion at 3105.  The injection channel frees when the tail passes
    # it (~101), far earlier than completion.
    assert transfer.finish_time == pytest.approx(5 * 1.0 + 3 * 1000.0 + 100)
    assert release_times["injection"] < 1500


def test_utilization_accounting():
    sim, topo, net, hosts = _small_net()
    net.send(Worm(source=hosts[0], dest=hosts[2], length=100))
    sim.run()
    channel = net.channel(topo.switches[0], topo.switches[1])
    assert channel.acquisitions == 1
    assert channel.busy_time > 0
    assert 0 < channel.utilization(sim.now) <= 1.0


def test_reset_stats_clears_counters():
    sim, topo, net, hosts = _small_net()
    net.send(Worm(source=hosts[0], dest=hosts[2], length=100))
    sim.run()
    net.reset_stats()
    assert net.delivered_worms == 0
    assert net.hop_latency.count == 0
    channel = net.channel(topo.switches[0], topo.switches[1])
    assert channel.busy_time == 0.0


def test_delivery_statistics():
    sim, topo, net, hosts = _small_net()
    for _ in range(3):
        net.send(Worm(source=hosts[0], dest=hosts[2], length=100))
    sim.run()
    assert net.delivered_worms == 3
    assert net.delivered_bytes == 300
    assert net.hop_latency.count == 3


def test_fifo_service_on_contended_channel():
    """Blocked worms are served in arrival order (the paper's fairness)."""
    sim, topo, net, hosts = _small_net()
    finish_order = []

    def sender(delay, tag, src):
        yield sim.timeout(delay)
        transfer = net.send(Worm(source=src, dest=hosts[2], length=100))
        yield transfer.completed
        finish_order.append(tag)

    sim.process(sender(0, "first", hosts[0]))
    sim.process(sender(5, "second", hosts[1]))
    sim.process(sender(10, "third", hosts[0]))
    sim.run()
    assert finish_order == ["first", "second", "third"]


def test_restricted_network_uses_tree_routes():
    from repro.net.topology import fig3_topology

    sim = Simulator()
    topo = fig3_topology()
    routing = UpDownRouting(topo, root=0)
    net = WormholeNetwork(sim, topo, routing=routing, restrict_to_tree=True)
    host_b = [h for h in topo.hosts if topo.node(h).name == "host_b"][0]
    host_c = [h for h in topo.hosts if topo.node(h).name == "host_c"][0]
    channels = net.route_channels(host_b, host_c)
    for channel in channels:
        assert not routing.is_crosslink(channel.link)


def test_mismatched_routing_rejected():
    sim = Simulator()
    topo_a = line(2)
    topo_b = line(2)
    routing_b = UpDownRouting(topo_b)
    with pytest.raises(ValueError):
        WormholeNetwork(sim, topo_a, routing=routing_b)


def test_torus_many_transfers_complete():
    sim = Simulator()
    topo = torus(4, 4)
    net = WormholeNetwork(sim, topo)
    hosts = topo.hosts
    transfers = []
    for i in range(50):
        src = hosts[i % len(hosts)]
        dst = hosts[(i * 7 + 3) % len(hosts)]
        if src == dst:
            continue
        transfers.append(net.send(Worm(source=src, dest=dst, length=100 + i)))
    sim.run()
    assert all(t.finish_time is not None for t in transfers)
    assert all(not ch.busy for ch in net.channels)
