"""Tests for the hypercube and complete-graph topologies."""

import pytest

from repro.core import MulticastEngine, Scheme
from repro.net import (
    UpDownRouting,
    WormholeNetwork,
    check_deadlock_free,
    complete_switches,
    hypercube,
)
from repro.sim import Simulator


def test_hypercube_shape():
    for dim in (1, 2, 3, 4):
        topo = hypercube(dim)
        assert len(topo.switches) == 2**dim
        switch_links = [
            l for l in topo.links
            if topo.node(l.a).is_switch and topo.node(l.b).is_switch
        ]
        assert len(switch_links) == dim * 2 ** (dim - 1)
        assert topo.is_connected()


def test_hypercube_degree():
    dim = 4
    topo = hypercube(dim)
    for s in topo.switches:
        neighbors = [p for p, _ in topo.neighbors(s) if topo.node(p).is_switch]
        assert len(neighbors) == dim


def test_hypercube_invalid_dimension():
    with pytest.raises(ValueError):
        hypercube(0)


def test_hypercube_updown_deadlock_free():
    topo = hypercube(4)
    assert check_deadlock_free(UpDownRouting(topo))


def test_complete_switches_shape():
    topo = complete_switches(6)
    switch_links = [
        l for l in topo.links
        if topo.node(l.a).is_switch and topo.node(l.b).is_switch
    ]
    assert len(switch_links) == 15
    assert topo.is_connected()


def test_complete_switches_invalid():
    with pytest.raises(ValueError):
        complete_switches(1)


def test_complete_graph_crosslink_fraction():
    """On the complete graph, up/down's spanning tree leaves almost all
    links as crosslinks -- the worst case for the Section 3 S1 scheme."""
    topo = complete_switches(8)
    routing = UpDownRouting(topo)
    switch_links = [
        l for l in topo.links
        if topo.node(l.a).is_switch and topo.node(l.b).is_switch
    ]
    crosslinks = [l for l in switch_links if routing.is_crosslink(l)]
    assert len(crosslinks) == len(switch_links) - 7  # 28 - (n-1)


def test_multicast_on_hypercube():
    sim = Simulator()
    topo = hypercube(3)
    net = WormholeNetwork(sim, topo)
    engine = MulticastEngine(sim, net)
    members = topo.hosts[:6]
    engine.create_group(1, members, Scheme.TREE_BROADCAST)
    message = engine.multicast(origin=members[2], gid=1, length=300)
    sim.run()
    assert message.complete


def test_hypercube_diameter_logarithmic():
    """Hypercube routes stay short: up/down hop count between any two
    hosts is bounded by a small multiple of the dimension."""
    topo = hypercube(4)
    routing = UpDownRouting(topo)
    hosts = topo.hosts
    worst = max(
        routing.hop_count(hosts[0], h) for h in hosts[1:]
    )
    # 2 host hops + at most ~2*dim switch hops under up/down inflation
    assert worst <= 2 + 2 * 4
