"""Multistage interconnect builders: Clos, Benes, butterfly.

Structural invariants (stage/row naming, connectivity, expected counts),
deadlock-free up/down routing, stage-cut partitionability, the
1000+-switch scale points the VC experiments run on, and the degenerate
size / scale-limit guards (satellite regression tests: the builders must
*raise*, not silently wrap route-byte port numbers).
"""

import pytest

from repro.net import (
    UpDownRouting,
    benes,
    bidirectional_shufflenet,
    butterfly,
    check_deadlock_free,
    clos,
    torus,
)
from repro.net.topology import (
    MAX_SWITCHES,
    ROUTE_PORT_LIMIT,
    partition_shufflenet_stages,
    partition_topology,
)


def _stage_of(topo, sid):
    return int(topo.node(sid).name[1:].split(",")[0])


# -- structure ---------------------------------------------------------------


def test_clos_structure():
    topo = clos(spines=4, leaves=8, hosts_per_leaf=2)
    assert topo.name == "clos-4x8"
    assert len(topo.switches) == 12
    assert len(topo.hosts) == 16
    # Full bipartite fabric: every leaf reaches every spine.
    fabric = [
        l for l in topo.links
        if topo.node(l.a).is_switch and topo.node(l.b).is_switch
    ]
    assert len(fabric) == 4 * 8
    assert topo.is_connected()


def test_butterfly_structure():
    k, n = 2, 3
    topo = butterfly(k=k, n=n)
    rows = k ** (n - 1)
    assert topo.name == "butterfly-2ary3"
    assert len(topo.switches) == n * rows
    # Hosts on terminal stages only.
    assert len(topo.hosts) == 2 * rows
    fabric = [
        l for l in topo.links
        if topo.node(l.a).is_switch and topo.node(l.b).is_switch
    ]
    assert len(fabric) == (n - 1) * rows * k
    assert topo.is_connected()
    # Destination-tag wiring: stage-s links only touch stages s and s+1.
    for link in fabric:
        sa, sb = _stage_of(topo, link.a), _stage_of(topo, link.b)
        assert abs(sa - sb) == 1


def test_benes_structure():
    topo = benes(terminals=8)
    # m=3 -> 5 stages of 4 rows.
    assert topo.name == "benes-8"
    assert len(topo.switches) == 20
    assert len(topo.hosts) == 8
    assert topo.is_connected()
    # Every boundary carries one straight + one crossed link per row.
    fabric = [
        l for l in topo.links
        if topo.node(l.a).is_switch and topo.node(l.b).is_switch
    ]
    assert len(fabric) == 4 * 4 * 2


@pytest.mark.parametrize(
    "build",
    [
        lambda: clos(spines=4, leaves=8, hosts_per_leaf=2),
        lambda: butterfly(k=2, n=4),
        lambda: benes(terminals=16),
    ],
)
def test_multistage_updown_deadlock_free(build):
    topo = build()
    routing = UpDownRouting(topo)
    assert check_deadlock_free(routing)


# -- stage-cut partitioning --------------------------------------------------


@pytest.mark.parametrize(
    "build, k",
    [
        (lambda: clos(spines=2, leaves=4), 2),
        (lambda: butterfly(k=2, n=4), 2),
        (lambda: butterfly(k=2, n=4), 4),
        (lambda: benes(terminals=16), 5),
    ],
)
def test_stage_cuts_partition_by_stage(build, k):
    topo = build()
    part = partition_topology(topo, k)  # auto scheme picks stage cuts
    assert len(part.shards) == k
    covered = set()
    for shard in part.shards:
        stages = {_stage_of(topo, sid) for sid in shard}
        # A shard is a contiguous band of whole stages.
        assert stages == set(range(min(stages), max(stages) + 1))
        covered |= set(shard)
    assert covered == set(topo.switches)
    # Cut links cross shard boundaries only.
    shard_of = {
        sid: i for i, shard in enumerate(part.shards) for sid in shard
    }
    for lid in part.cut_links:
        link = topo.links[lid]
        assert shard_of[link.a] != shard_of[link.b]


def test_stage_cuts_reject_too_many_bands():
    topo = clos(spines=2, leaves=4)
    with pytest.raises(ValueError):
        partition_shufflenet_stages(topo, 3)  # only two stages exist


# -- 1000+-switch scale ------------------------------------------------------


def test_butterfly_scales_past_1000_switches():
    topo = butterfly(k=4, n=6)
    assert len(topo.switches) == 6 * 4**5  # 6144
    assert topo.is_connected()


def test_benes_scales_past_1000_switches():
    topo = benes(terminals=256)
    assert len(topo.switches) == 15 * 128  # 1920
    assert topo.is_connected()


def test_shufflenet_scales_past_1000_switches():
    topo = bidirectional_shufflenet(2, 8)
    assert len(topo.switches) == 8 * 256  # 2048
    assert topo.is_connected()


# -- degenerate sizes and scale limits ---------------------------------------


@pytest.mark.parametrize(
    "build",
    [
        lambda: clos(spines=0, leaves=8),
        lambda: clos(spines=4, leaves=1),
        lambda: clos(spines=4, leaves=8, hosts_per_leaf=0),
        lambda: butterfly(k=1, n=3),
        lambda: butterfly(k=2, n=1),
        lambda: butterfly(k=2, n=3, hosts_per_switch=0),
        lambda: benes(terminals=6),  # not a power of two
        lambda: benes(terminals=2),
        lambda: benes(terminals=8, hosts_per_switch=0),
        lambda: bidirectional_shufflenet(1, 3),
        lambda: torus(1, 5),
    ],
)
def test_degenerate_sizes_raise(build):
    with pytest.raises(ValueError):
        build()


def test_port_limit_guard_raises_before_route_bytes_overflow():
    # A 300-leaf Clos would give spines degree 300 > 254: port numbers
    # would collide with the route-byte sentinels (0xFE/0xFF).
    with pytest.raises(ValueError, match="port limit"):
        clos(spines=4, leaves=ROUTE_PORT_LIMIT + 1)
    with pytest.raises(ValueError, match="port limit"):
        bidirectional_shufflenet(p=128, k=2)
    with pytest.raises(ValueError, match="port limit"):
        butterfly(k=130, n=2)


def test_switch_count_guard_raises():
    with pytest.raises(ValueError, match="MAX_SWITCHES"):
        torus(2000, 2000)
    with pytest.raises(ValueError, match="MAX_SWITCHES"):
        bidirectional_shufflenet(2, 20)
    assert MAX_SWITCHES >= 1_000_000
