"""Tests for single-BFS multicast route computation (multi_route)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net import UpDownRouting, random_irregular, torus
from repro.net.topology import fig3_topology


def test_multi_route_reaches_each_destination():
    topo = torus(4, 4)
    routing = UpDownRouting(topo)
    hosts = topo.hosts
    dests = [hosts[5], hosts[9], hosts[14]]
    routes = routing.multi_route(hosts[0], dests)
    assert set(routes) == set(dests)
    for dst, hops in routes.items():
        assert hops[0][0] == hosts[0]
        assert hops[-1][1] == dst


def test_multi_route_matches_single_route_lengths():
    """multi_route paths are shortest legal paths, like route()."""
    topo = torus(4, 4)
    routing = UpDownRouting(topo)
    hosts = topo.hosts
    dests = hosts[1:8]
    routes = routing.multi_route(hosts[0], dests)
    for dst in dests:
        assert len(routes[dst]) == routing.hop_count(hosts[0], dst)


def test_multi_route_rejects_source_in_destinations():
    topo = torus(3, 3)
    routing = UpDownRouting(topo)
    hosts = topo.hosts
    with pytest.raises(ValueError):
        routing.multi_route(hosts[0], [hosts[0], hosts[1]])


def test_multi_route_restricted_to_tree():
    topo = fig3_topology()
    routing = UpDownRouting(topo, root=0)
    hosts = topo.hosts
    routes = routing.multi_route(hosts[0], hosts[1:3], restrict_to_tree=True)
    for hops in routes.values():
        assert all(not routing.is_crosslink(link) for _, _, link in hops)


@settings(max_examples=30, deadline=None)
@given(
    n=st.integers(min_value=3, max_value=10),
    extra=st.integers(min_value=0, max_value=6),
    seed=st.integers(min_value=0, max_value=500),
    k=st.integers(min_value=1, max_value=4),
)
def test_property_multi_route_legal_and_treeable(n, extra, seed, k):
    """multi_route outputs legal up/down paths whose union is encodable as
    a source-route tree (no destination lies on another's path)."""
    from repro.core.route_encoding import route_tree_from_paths

    topo = random_irregular(n, extra_links=extra, seed=seed)
    routing = UpDownRouting(topo)
    hosts = topo.hosts
    src = hosts[0]
    dests = hosts[1 : 1 + min(k, len(hosts) - 1)]
    routes = routing.multi_route(src, dests)
    for dst, hops in routes.items():
        nodes = [hops[0][0]] + [b for _, b, _ in hops]
        assert routing.is_legal(nodes)
        assert nodes[-1] == dst
    # The per-switch port paths merge into a valid route tree.
    port_paths = []
    for dst in dests:
        hops = routes[dst]
        ports = []
        for a, _b, link in hops[1:]:
            ports.append(topo.adjacent(a).index(link))
        port_paths.append(ports)
    tree = route_tree_from_paths(port_paths)
    assert tree.leaf_count() == len(set(map(tuple, port_paths)))


@settings(max_examples=20, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=200),
    k=st.integers(min_value=2, max_value=6),
)
def test_property_multi_route_consistent_with_torus_routes(seed, k):
    """On the torus, multi_route legs are never longer than 2x the direct
    route (they come from the same layered BFS)."""
    topo = torus(4, 4)
    routing = UpDownRouting(topo)
    hosts = topo.hosts
    import random

    rng = random.Random(seed)
    src = rng.choice(hosts)
    dests = rng.sample([h for h in hosts if h != src], k)
    routes = routing.multi_route(src, dests)
    for dst in dests:
        assert len(routes[dst]) == routing.hop_count(src, dst)
