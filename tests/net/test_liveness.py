"""Topology liveness API and lazy stale-cache invalidation.

The satellite guarantee: mutating a topology (failing a link or node)
invalidates every memoized route and channel view *lazily* -- the next
lookup sees fresh state, with no explicit rebuild call required.
"""

import pytest

from repro.net import Topology, UpDownRouting, Worm, WormholeNetwork, torus
from repro.sim import Simulator


def _fabric_link(topo):
    return next(
        l
        for l in topo.links
        if topo.node(l.a).is_switch and topo.node(l.b).is_switch
    )


# -- topology liveness --------------------------------------------------------


def test_fail_and_repair_link_bump_version_and_notify():
    topo = torus(2, 2)
    changes = []
    topo.add_listener(lambda t, change: changes.append(change))
    link = _fabric_link(topo)
    v0 = topo.version
    topo.fail_link(link.id)
    assert topo.version > v0
    assert not topo.link_alive(link.id)
    assert not topo.fully_alive
    topo.repair_link(link.id)
    assert topo.link_alive(link.id)
    assert topo.fully_alive
    assert [(c.kind, c.target) for c in changes] == [
        ("link_fail", link.id),
        ("link_repair", link.id),
    ]


def test_failing_twice_is_idempotent():
    topo = torus(2, 2)
    changes = []
    topo.add_listener(lambda t, change: changes.append(change))
    link = _fabric_link(topo)
    v0 = topo.version
    topo.fail_link(link.id)
    v1 = topo.version
    topo.fail_link(link.id)  # already dead: no version bump, no event
    assert topo.version == v1 > v0
    assert len(changes) == 1


def test_node_death_hides_host_and_neighbors():
    topo = torus(2, 2)
    host = topo.hosts[0]
    switch = topo.host_switch(host)
    topo.fail_node(host)
    assert not topo.node_alive(host)
    assert host not in topo.live_hosts()
    assert host not in [peer for peer, _ in topo.live_neighbors(switch)]
    topo.repair_node(host)
    assert host in topo.live_hosts()


def test_dead_access_link_hides_host():
    topo = torus(2, 2)
    host = topo.hosts[0]
    access = next(l for l in topo.adjacent(host))
    topo.fail_link(access.id)
    assert topo.node_alive(host)  # the host itself is fine...
    assert host not in topo.live_hosts()  # ...but unreachable


def test_is_connected_live_only():
    topo = Topology()
    s0, s1 = topo.add_switch(), topo.add_switch()
    bridge = topo.add_link(s0, s1)
    topo.add_host(s0), topo.add_host(s1)
    assert topo.is_connected(live_only=True)
    topo.fail_link(bridge.id)
    assert topo.is_connected()  # structurally still one graph
    assert not topo.is_connected(live_only=True)


# -- up/down routing stale-cache ---------------------------------------------


def test_routes_avoid_dead_link_without_explicit_rebuild():
    topo = torus(3, 3)
    routing = UpDownRouting(topo)
    pairs = [(a, b) for a in topo.hosts for b in topo.hosts if a != b]
    used = set()
    for src, dst in pairs:
        route = routing.route_shared(src, dst)
        used.update(link.id for _, _, link in route)
    victim = next(l for l in _iter_fabric(topo) if l.id in used)
    topo.fail_link(victim.id)
    # No rebuild() call: the memoized caches must invalidate themselves.
    for src, dst in pairs:
        for _, _, link in routing.route_shared(src, dst):
            assert link.id != victim.id


def _iter_fabric(topo):
    return (
        l
        for l in topo.links
        if topo.node(l.a).is_switch and topo.node(l.b).is_switch
    )


def test_route_to_hidden_host_raises_until_repair():
    topo = torus(2, 2)
    routing = UpDownRouting(topo)
    src, dst = topo.hosts[0], topo.hosts[1]
    routing.route_shared(src, dst)  # warm the cache
    topo.fail_node(dst)
    with pytest.raises(ValueError):
        routing.route_shared(src, dst)
    topo.repair_node(dst)
    assert routing.route_shared(src, dst)


# -- wormhole network stale-cache ---------------------------------------------


def test_channel_failed_flags_track_liveness():
    sim = Simulator()
    topo = torus(2, 2)
    net = WormholeNetwork(sim, topo)
    link = _fabric_link(topo)
    ab = net.channel(link.a, link.b)
    ba = net.channel(link.b, link.a)
    assert not ab.failed and not ba.failed
    topo.fail_link(link.id)
    _ = net.channels  # lazy refresh happens on the next read
    assert ab.failed and ba.failed
    topo.repair_link(link.id)
    _ = net.channels
    assert not ab.failed and not ba.failed


def test_worm_sent_after_fault_avoids_dead_link():
    sim = Simulator()
    topo = torus(3, 3)
    net = WormholeNetwork(sim, topo)
    src, dst = topo.hosts[0], topo.hosts[4]
    baseline = net.route_channels(src, dst)
    victim = baseline[1].link  # a fabric hop on the cached route
    topo.fail_link(victim.id)
    transfer = net.send(Worm(source=src, dest=dst, length=60))
    sim.run()
    assert not transfer.dropped  # rerouted, not orphaned
    refreshed = net.route_channels(src, dst)
    assert victim.id not in [ch.link.id for ch in refreshed]


def test_new_link_gets_channels_on_refresh():
    sim = Simulator()
    topo = torus(2, 2)
    net = WormholeNetwork(sim, topo)
    link = topo.add_link(topo.switches[0], topo.switches[-1])
    _ = net.channels
    assert net.channel(link.a, link.b) is not None
    assert net.channel(link.b, link.a) is not None
