"""Tests for up/down routing: legality, determinism, deadlock freedom."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net import (
    UpDownRouting,
    bidirectional_shufflenet,
    check_deadlock_free,
    line,
    mesh,
    random_irregular,
    ring,
    torus,
)
from repro.net.topology import Topology, fig3_topology


def _routing(topo, root=None):
    return UpDownRouting(topo, root=root)


def test_levels_from_root():
    topo = line(3)
    routing = _routing(topo, root=topo.switches[0])
    s0, s1, s2 = topo.switches
    assert routing.level[s0] == 0
    assert routing.level[s1] == 1
    assert routing.level[s2] == 2


def test_hosts_are_leaves():
    topo = line(3)
    routing = _routing(topo)
    for host in topo.hosts:
        assert routing.level[host] == routing.level[topo.host_switch(host)] + 1


def test_is_up_by_level_and_id():
    topo = ring(4)
    routing = _routing(topo, root=topo.switches[0])
    s = topo.switches
    # level tie between s[1] and s[3] (both distance 1): lower id is 'up'.
    assert routing.level[s[1]] == routing.level[s[3]] == 1
    assert routing.is_up(s[3], s[1])
    assert not routing.is_up(s[1], s[3])
    # towards the root is up
    assert routing.is_up(s[1], s[0])


def test_route_same_node_empty():
    topo = line(2)
    routing = _routing(topo)
    host = topo.hosts[0]
    assert routing.route(host, host) == []


def test_route_endpoints_and_connectivity():
    topo = torus(4, 4)
    routing = _routing(topo)
    hosts = topo.hosts
    hops = routing.route(hosts[0], hosts[5])
    assert hops[0][0] == hosts[0]
    assert hops[-1][1] == hosts[5]
    for (_, b, _), (a2, _, _) in zip(hops, hops[1:]):
        assert b == a2  # consecutive hops share a node


def test_route_nodes_contiguous():
    topo = torus(4, 4)
    routing = _routing(topo)
    hosts = topo.hosts
    nodes = routing.route_nodes(hosts[0], hosts[9])
    assert nodes[0] == hosts[0]
    assert nodes[-1] == hosts[9]
    for a, b in zip(nodes, nodes[1:]):
        assert any(peer == b for peer, _ in topo.neighbors(a))


def test_routes_obey_up_down_rule():
    topo = torus(4, 4)
    routing = _routing(topo)
    hosts = topo.hosts
    for src in hosts[:6]:
        for dst in hosts[:6]:
            if src == dst:
                continue
            assert routing.is_legal(routing.route_nodes(src, dst))


def test_route_deterministic():
    topo = torus(4, 4)
    a = _routing(topo)
    b = _routing(topo)
    hosts = topo.hosts
    for src, dst in [(hosts[0], hosts[7]), (hosts[3], hosts[12])]:
        assert a.route_nodes(src, dst) == b.route_nodes(src, dst)


def test_route_cached_copy_isolated():
    topo = line(3)
    routing = _routing(topo)
    hosts = topo.hosts
    first = routing.route(hosts[0], hosts[2])
    first.append("garbage")
    second = routing.route(hosts[0], hosts[2])
    assert second[-1] != "garbage"


def test_restrict_to_tree_avoids_crosslinks():
    topo = fig3_topology()
    routing = _routing(topo, root=0)  # A is the root
    crosslinks = [l for l in topo.links if routing.is_crosslink(l)]
    assert crosslinks, "fig3 must have a crosslink"
    hosts = topo.hosts
    for src in hosts:
        for dst in hosts:
            if src == dst:
                continue
            hops = routing.route(src, dst, restrict_to_tree=True)
            assert all(not routing.is_crosslink(link) for _, _, link in hops)


def test_unrestricted_uses_crosslink_when_shorter():
    topo = fig3_topology()
    routing = _routing(topo, root=0)
    # host_b (on E) to host_c (on D): direct via crosslink E-D if legal,
    # at minimum the unrestricted route is no longer than the restricted one.
    host_b = [h for h in topo.hosts if topo.node(h).name == "host_b"][0]
    host_c = [h for h in topo.hosts if topo.node(h).name == "host_c"][0]
    free = routing.route(host_b, host_c)
    tree = routing.route(host_b, host_c, restrict_to_tree=True)
    assert len(free) <= len(tree)


def test_spanning_tree_size():
    topo = torus(4, 4)
    routing = _routing(topo)
    # spanning tree over all nodes (switches + hosts): n-1 links
    assert len(routing.tree_links) == len(topo.nodes) - 1


def test_down_links_cover_tree_children():
    topo = line(3)
    routing = _routing(topo, root=topo.switches[0])
    root_down = routing.down_links(topo.switches[0])
    # the root's down links: towards s1 and towards its host
    assert len(root_down) == 2


def test_root_must_be_switch():
    topo = line(2)
    with pytest.raises(ValueError):
        UpDownRouting(topo, root=topo.hosts[0])


def test_disconnected_topology_rejected():
    topo = Topology()
    topo.add_switch()
    topo.add_switch()
    with pytest.raises(ValueError):
        UpDownRouting(topo)


def test_deadlock_free_torus():
    topo = torus(4, 4)
    routing = _routing(topo)
    assert check_deadlock_free(routing)


def test_deadlock_free_shufflenet():
    topo = bidirectional_shufflenet(2, 2)
    routing = _routing(topo)
    assert check_deadlock_free(routing)


def test_deadlock_free_with_all_roots():
    topo = mesh(3, 3)
    for root in topo.switches:
        routing = _routing(topo, root=root)
        assert check_deadlock_free(routing)


@settings(max_examples=25, deadline=None)
@given(
    n=st.integers(min_value=2, max_value=12),
    extra=st.integers(min_value=0, max_value=8),
    seed=st.integers(min_value=0, max_value=1000),
)
def test_property_random_topologies_deadlock_free(n, extra, seed):
    """Up/down routing yields an acyclic channel dependency graph on any
    connected topology -- the paper's core deadlock-freedom claim."""
    topo = random_irregular(n, extra_links=extra, seed=seed)
    routing = _routing(topo)
    assert check_deadlock_free(routing)


@settings(max_examples=25, deadline=None)
@given(
    n=st.integers(min_value=2, max_value=10),
    extra=st.integers(min_value=0, max_value=6),
    seed=st.integers(min_value=0, max_value=1000),
)
def test_property_routes_legal_and_reach(n, extra, seed):
    topo = random_irregular(n, extra_links=extra, seed=seed)
    routing = _routing(topo)
    hosts = topo.hosts
    for src in hosts[:4]:
        for dst in hosts[:4]:
            if src == dst:
                continue
            nodes = routing.route_nodes(src, dst)
            assert nodes[0] == src and nodes[-1] == dst
            assert routing.is_legal(nodes)


def test_hop_count_symmetric_length_on_line():
    topo = line(4)
    routing = _routing(topo)
    hosts = topo.hosts
    assert routing.hop_count(hosts[0], hosts[3]) == routing.hop_count(
        hosts[3], hosts[0]
    )


def test_up_down_longer_than_shortest_possible():
    """Up/down may inflate path length; it must never beat the true shortest
    path (sanity check of the search)."""
    import networkx as nx

    topo = torus(4, 4)
    routing = _routing(topo)
    graph = nx.Graph()
    for link in topo.links:
        graph.add_edge(link.a, link.b)
    hosts = topo.hosts
    for src in hosts[:5]:
        lengths = nx.single_source_shortest_path_length(graph, src)
        for dst in hosts[:5]:
            if src == dst:
                continue
            assert routing.hop_count(src, dst) >= lengths[dst]
