"""Cross-validation between the worm-level and flit-level network models.

The two substrates model the same physics at different granularity; on
uncontended scenarios their timings must agree closely, and their relative
orderings must agree everywhere.
"""

import pytest

from repro.net import Topology, Worm, WormholeNetwork, line, torus
from repro.net.flitlevel import FlitNetwork
from repro.sim import Simulator


def _wormlevel_unicast_latency(topo, src, dst, length):
    sim = Simulator()
    net = WormholeNetwork(sim, topo, switch_latency=1.0)
    transfer = net.send(Worm(source=src, dest=dst, length=length))
    sim.run()
    return transfer.latency


def _flitlevel_unicast_latency(topo, src, dst, length):
    net = FlitNetwork(topo, wire_delay=1)
    wid = net.send_unicast(src, dst, payload_bytes=length)
    assert net.run(max_ticks=200_000) == "delivered"
    record = net.records[wid]
    return record.delivered_at[dst] - record.injected_at


def test_idle_unicast_latency_agrees():
    """On an idle line, both models give latency = path setup + length.

    The flit-level model transmits the route bytes and pays one tick of
    pipeline per stage, so it runs a small *constant* number of ticks
    behind the worm-level formula -- the gap must not scale with length.
    """
    topo = line(4)
    hosts = topo.hosts
    gaps = []
    for length in (50, 200, 800):
        worm = _wormlevel_unicast_latency(topo, hosts[0], hosts[3], length)
        flit = _flitlevel_unicast_latency(topo, hosts[0], hosts[3], length)
        gaps.append(flit - worm)
        assert 0 <= flit - worm <= 20, length
    assert max(gaps) - min(gaps) <= 2  # constant offset, not length-scaled


def test_latency_scales_with_length_identically():
    """d latency / d length must be ~1 byte-time per byte in both models
    (link-rate streaming)."""
    topo = line(3)
    hosts = topo.hosts
    for model in (_wormlevel_unicast_latency, _flitlevel_unicast_latency):
        l1 = model(topo, hosts[0], hosts[2], 100)
        l2 = model(topo, hosts[0], hosts[2], 600)
        assert (l2 - l1) == pytest.approx(500, rel=0.05)


def test_contention_serializes_in_both_models():
    """Two worms into the same sink serialize: the second finishes about a
    worm-length later in both models."""
    topo = line(3)
    hosts = topo.hosts
    length = 300

    # worm level
    sim = Simulator()
    wnet = WormholeNetwork(sim, topo)
    t1 = wnet.send(Worm(source=hosts[0], dest=hosts[2], length=length))
    holder = []

    def late():
        yield sim.timeout(10)
        holder.append(wnet.send(Worm(source=hosts[1], dest=hosts[2], length=length)))

    sim.process(late())
    sim.run()
    gap_worm = holder[0].finish_time - t1.finish_time

    # flit level
    fnet = FlitNetwork(topo)
    w1 = fnet.send_unicast(hosts[0], hosts[2], payload_bytes=length)
    w2 = fnet.send_unicast(hosts[1], hosts[2], payload_bytes=length, start_delay=10)
    assert fnet.run(max_ticks=100_000) == "delivered"
    gap_flit = (
        fnet.records[w2].delivered_at[hosts[2]]
        - fnet.records[w1].delivered_at[hosts[2]]
    )

    assert gap_worm == pytest.approx(length, rel=0.2)
    assert gap_flit == pytest.approx(length, rel=0.2)


def test_torus_routes_identical_across_models():
    """Both models use the same UpDownRouting, so every worm traverses the
    same switches."""
    from repro.net import UpDownRouting

    topo = torus(4, 4)
    routing = UpDownRouting(topo)
    hosts = topo.hosts
    fnet = FlitNetwork(topo, routing=routing)
    sim = Simulator()
    wnet = WormholeNetwork(sim, topo, routing=routing)
    for src, dst in [(hosts[0], hosts[9]), (hosts[3], hosts[14])]:
        worm_path = [ch.dst for ch in wnet.route_channels(src, dst)]
        flit_hops = routing.route(src, dst)
        assert worm_path == [b for _, b, _ in flit_hops]
