"""Crosscheck: host-adapter Hamiltonian multicast, worm-level vs flit-level.

The Figure 10/11 sweeps run on the fast worm-level engine; the paper's own
simulator was byte-level.  Here the same protocol (Hamiltonian circuit,
store-and-forward) runs on both substrates and the per-destination
delivery latencies must agree up to the flit model's constant per-hop
pipeline/header overhead.
"""

import pytest

from repro.core import AdapterConfig, MulticastEngine, Scheme
from repro.net import UpDownRouting, WormholeNetwork, torus
from repro.net.flitlevel import FlitNetwork
from repro.sim import Simulator


def _worm_level_deliveries(topo, routing, members, origin, length):
    sim = Simulator()
    net = WormholeNetwork(sim, topo, routing=routing)
    engine = MulticastEngine(sim, net, AdapterConfig(cut_through=False))
    engine.create_group(1, members, Scheme.HAMILTONIAN)
    message = engine.multicast(origin=origin, gid=1, length=length)
    sim.run()
    assert message.complete
    return {h: t - message.created for h, t in message.deliveries.items()}


def _flit_level_deliveries(topo, routing, members, origin, length):
    net = FlitNetwork(topo, routing=routing)
    net.create_host_group(1, members)
    mid = net.send_host_multicast(origin, 1, payload_bytes=length)
    assert net.run(max_ticks=500_000) == "delivered"
    message = net.messages[mid]
    return {h: t - message.created for h, t in message.deliveries.items()}


@pytest.mark.parametrize("length", [100, 400])
def test_idle_network_latencies_agree(length):
    topo = torus(3, 3)
    routing = UpDownRouting(topo)
    members = topo.hosts[:5]
    origin = members[2]
    worm = _worm_level_deliveries(topo, routing, members, origin, length)
    flit = _flit_level_deliveries(topo, routing, members, origin, length)
    assert set(worm) == set(flit)
    # Same circuit -> same delivery order.
    worm_order = sorted(worm, key=worm.get)
    flit_order = sorted(flit, key=flit.get)
    assert worm_order == flit_order
    # Latency agreement: the flit model pays a small constant per S&F hop
    # (route bytes on the wire + pipeline ticks), nothing length-dependent.
    for index, host in enumerate(worm_order, start=1):
        gap = flit[host] - worm[host]
        assert 0 <= gap <= 12 * index, (host, worm[host], flit[host])


def test_gap_is_constant_in_length():
    """The worm/flit gap must not scale with worm length -- that would
    indicate a modelling error in streaming rates."""
    topo = torus(3, 3)
    routing = UpDownRouting(topo)
    members = topo.hosts[:4]
    origin = members[0]
    gaps = {}
    for length in (100, 800):
        worm = _worm_level_deliveries(topo, routing, members, origin, length)
        flit = _flit_level_deliveries(topo, routing, members, origin, length)
        last = max(worm, key=worm.get)
        gaps[length] = flit[last] - worm[last]
    assert abs(gaps[800] - gaps[100]) <= 4


def test_contended_circuit_same_winner():
    """Two concurrent multicasts on overlapping circuits: both models
    deliver everything (the serialization they resolve may differ by a
    tick, so only completeness is compared)."""
    topo = torus(3, 3)
    routing = UpDownRouting(topo)
    members = topo.hosts[:5]

    # worm level
    sim = Simulator()
    wnet = WormholeNetwork(sim, topo, routing=routing)
    engine = MulticastEngine(sim, wnet, AdapterConfig())
    engine.create_group(1, members, Scheme.HAMILTONIAN)
    m1 = engine.multicast(origin=members[0], gid=1, length=200)
    m2 = engine.multicast(origin=members[2], gid=1, length=200)
    sim.run()
    assert m1.complete and m2.complete

    # flit level
    fnet = FlitNetwork(topo, routing=routing)
    fnet.create_host_group(1, members)
    f1 = fnet.send_host_multicast(members[0], 1, payload_bytes=200)
    f2 = fnet.send_host_multicast(members[2], 1, payload_bytes=200)
    assert fnet.run(max_ticks=500_000) == "delivered"
    assert fnet.messages[f1].complete and fnet.messages[f2].complete


def test_host_group_validation():
    topo = torus(3, 3)
    net = FlitNetwork(topo)
    hosts = topo.hosts
    with pytest.raises(ValueError):
        net.create_host_group(1, [hosts[0]])
    with pytest.raises(ValueError):
        net.create_host_group(1, [hosts[0], topo.switches[0]])
    net.create_host_group(1, hosts[:3])
    with pytest.raises(ValueError):
        net.create_host_group(1, hosts[:3])
    with pytest.raises(KeyError):
        net.send_host_multicast(hosts[0], 9, 10)
    with pytest.raises(ValueError):
        net.send_host_multicast(hosts[8], 1, 10)
